//! RAScad reproduction — umbrella crate.
//!
//! Re-exports the whole workspace under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`spec`] — the engineering language (diagram/block models, DSL).
//! * [`core`] — the Model Generator: spec → Markov/RBD hierarchy →
//!   measures.
//! * [`markov`] — CTMC / semi-Markov solvers.
//! * [`rbd`] — reliability block diagrams.
//! * [`gmb`] — the Graphical Model Builder equivalent.
//! * [`sim`] — Monte-Carlo simulation and synthetic field data.
//! * [`fielddata`] — outage-log analysis.
//! * [`lint`] — the static analyzer: Tier A spec diagnostics, Tier B
//!   model diagnostics, the `RASxxx` catalog.
//! * [`library`] — ready-made models (the paper's Figures 1–2 data
//!   center, an E10000-class server, a two-node cluster).
//!
//! # Quick start
//!
//! ```
//! use rascad::core::solve_spec;
//! use rascad::library::datacenter::data_center;
//!
//! # fn main() -> Result<(), rascad::core::CoreError> {
//! let solution = solve_spec(&data_center())?;
//! println!("yearly downtime: {:.1} min", solution.system.yearly_downtime_minutes);
//! # Ok(())
//! # }
//! ```

pub use rascad_core as core;
pub use rascad_fielddata as fielddata;
pub use rascad_gmb as gmb;
pub use rascad_library as library;
pub use rascad_lint as lint;
pub use rascad_markov as markov;
pub use rascad_rbd as rbd;
pub use rascad_sim as sim;
pub use rascad_spec as spec;
