//! Offline placeholder for `serde_json`.
//!
//! Compiles to an empty library so `cargo test` can build the crates
//! that list it as a dev-dependency; every test that actually uses
//! serde_json is gated behind the (offline-unbuildable) `serde`
//! feature. Replace with the real crate when a registry is reachable —
//! see vendor/README.md.
