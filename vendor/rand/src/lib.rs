//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace cannot reach crates.io, so
//! this vendored crate provides exactly the surface the workspace uses
//! — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for
//! `f64`/`u64`/`bool` — with the same module paths, backed by
//! xoshiro256++ seeded through SplitMix64. It is *not* a drop-in
//! replacement for the full crate: swap it for the real `rand` (and
//! delete this directory) once a registry is reachable. Streams differ
//! from upstream `StdRng` (ChaCha12), so seeded simulation outputs are
//! reproducible against this crate only.

/// A source of random 64-bit words; the base trait every generator
/// implements.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the
/// stand-in for `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample of `T` (e.g. `rng.gen::<f64>()` for a
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically strong and fast; *not* the cryptographic ChaCha12
    /// generator upstream `StdRng` wraps, and not stream-compatible
    /// with it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro256++ requires a nonzero state; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
