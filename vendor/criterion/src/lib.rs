//! Offline placeholder for `criterion`.
//!
//! Compiles to an empty library so the dependency graph resolves
//! without network access; the benchmark targets that use it carry
//! `required-features = ["criterion-bench"]`, which requires the real
//! crate. Replace with the real crate when a registry is reachable —
//! see vendor/README.md.
