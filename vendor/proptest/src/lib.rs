//! Offline placeholder for `proptest`.
//!
//! Compiles to an empty library so `cargo test` can build the crates
//! that list it as a dev-dependency; the property-test files that use
//! it are gated behind each crate's `proptest-tests` feature, which
//! requires the real crate. Replace with the real crate when a
//! registry is reachable — see vendor/README.md.
