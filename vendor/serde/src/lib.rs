//! Offline placeholder for `serde`.
//!
//! This crate exists so the dependency graph resolves without network
//! access. It is only compiled when a workspace crate enables its
//! `serde` feature, at which point this error explains the situation.
compile_error!(
    "the workspace `serde` feature needs the real serde crate: replace the \
     vendored placeholder by restoring the crates.io entries in \
     [workspace.dependencies] (see vendor/README.md)"
);
