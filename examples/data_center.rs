//! The paper's Figures 1–2 model: the two-level "Data Center System"
//! (Server Box with a 19-block subdiagram, RAID-1 boot drives, two
//! RAID-5 arrays), solved hierarchically, with the Markov chain of one
//! block exported as Graphviz DOT.
//!
//! Run with: `cargo run --example data_center`

use rascad::core::{generator::generate_block, report, solve_spec};
use rascad::library::datacenter::data_center;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = data_center();
    println!(
        "Model: \"{}\" — {} blocks over {} levels (paper Figures 1-2)\n",
        spec.root.name,
        spec.root.total_blocks(),
        spec.root.depth()
    );

    let solution = solve_spec(&spec)?;
    print!("{}", report::system_report(&spec.root.name, &solution));

    // Which blocks dominate the downtime budget?
    let mut ranked: Vec<_> = solution.blocks.iter().collect();
    ranked.sort_by(|a, b| {
        b.measures.yearly_downtime_minutes.total_cmp(&a.measures.yearly_downtime_minutes)
    });
    println!("\nTop downtime contributors:");
    for b in ranked.iter().take(5) {
        println!("  {:<55} {:>10.3} min/yr", b.path, b.measures.yearly_downtime_minutes);
    }

    // Export one generated chain for graphical inspection (the paper's
    // Figure 4 equivalent for this model).
    let boards = spec.root.find("Server Box/System Board").expect("block exists");
    let model = generate_block(&boards.params, &spec.globals)?;
    println!(
        "\nGraphviz DOT of the System Board chain (Type {}, {} states):\n",
        model.model_type,
        model.state_count()
    );
    print!("{}", report::chain_dot(&model));
    Ok(())
}
