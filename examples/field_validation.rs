//! The paper's field-data validation loop, end to end: simulate 15
//! months of operation of two E10000-class servers, estimate
//! availability from the resulting outage logs, and compare with the
//! Model Generator's prediction.
//!
//! Run with: `cargo run --example field_validation`

use rascad::core::solve_spec;
use rascad::fielddata::{analyze, compare, OutageLog};
use rascad::library::e10000::e10000;
use rascad::sim::fieldgen::{generate_field_data, FieldDataOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = e10000();
    let predicted = solve_spec(&spec)?;
    println!(
        "MG prediction for the E10000: availability {:.6}, {:.1} downtime min/yr\n",
        predicted.system.availability, predicted.system.yearly_downtime_minutes
    );

    // "Field data collected from two large operational E10000 servers
    // for 15 months" — synthesized by discrete-event simulation with
    // deterministic repair durations.
    let records = generate_field_data(
        &spec,
        &FieldDataOptions { months: 15.0, servers: 2, seed: 2002, deterministic_repairs: true },
    )?;
    let logs: Vec<OutageLog> = records
        .iter()
        .map(|r| {
            let events: Vec<(f64, bool)> =
                r.log.events.iter().map(|e| (e.time_hours, e.up)).collect();
            OutageLog::from_events(r.log.horizon_hours, &events)
        })
        .collect();

    for (record, log) in records.iter().zip(&logs) {
        println!(
            "server {}: {} outages, {:.2} h down, availability {:.6}",
            record.server,
            log.outages().len(),
            log.downtime_hours(),
            log.availability()
        );
        for o in log.outages() {
            println!(
                "    outage at t={:>8.1} h lasting {:>6.2} h",
                o.start_hours, o.duration_hours
            );
        }
    }

    let field = analyze(&logs);
    println!(
        "\npooled field estimate: MTBF {:.0} h, MTTR {:.2} h, availability {:.6}",
        field.mtbf_hours, field.mttr_hours, field.availability
    );
    println!("\n{}", compare(predicted.system.availability, &field));
    println!(
        "\n(A single 15-month window on two machines is a small sample —\n\
         rerun with a different seed or more servers to see the spread,\n\
         or see bench_fielddata for the 20-seed version.)"
    );
    Ok(())
}
