//! A RAS-architecture trade study on a two-node cluster, using the
//! parametric-analysis capability: how much does failover speed matter
//! versus failover *reliability*?
//!
//! Run with: `cargo run --example cluster_tradeoff`

use rascad::core::solve_spec;
use rascad::core::sweep::{lin_space, sweep};
use rascad::library::cluster::{two_node_cluster, ClusterConfig};
use rascad::spec::units::Minutes;
use rascad::spec::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = two_node_cluster(ClusterConfig::default());
    let baseline = solve_spec(&base)?;
    println!(
        "baseline cluster: availability {:.9} ({:.2} downtime min/yr)\n",
        baseline.system.availability, baseline.system.yearly_downtime_minutes
    );

    // Sweep 1: failover interruption length (Tfo).
    println!("downtime vs failover time:");
    println!("{:>14} {:>18}", "failover min", "downtime min/yr");
    for point in sweep(&base, &lin_space(0.5, 30.0, 7)?, |spec, v| {
        let node = spec.root.find_mut("Cluster Node").expect("block exists");
        node.params.redundancy.as_mut().expect("redundant").failover_time = Minutes(v);
    })? {
        println!("{:>14.1} {:>18.3}", point.value, point.solution.system.yearly_downtime_minutes);
    }

    // Sweep 2: probability the failover itself fails (Pspf).
    println!("\ndowntime vs failover failure probability:");
    println!("{:>14} {:>18}", "P(spf)", "downtime min/yr");
    for point in sweep(&base, &lin_space(0.0, 0.2, 9)?, |spec, v| {
        let node = spec.root.find_mut("Cluster Node").expect("block exists");
        node.params.redundancy.as_mut().expect("redundant").p_spf = v;
    })? {
        println!("{:>14.3} {:>18.3}", point.value, point.solution.system.yearly_downtime_minutes);
    }

    // Sweep 3: what if the failover were fully transparent (e.g. an
    // active-active design)?
    let mut transparent = base.clone();
    let node = transparent.root.find_mut("Cluster Node").expect("block exists");
    node.params.redundancy.as_mut().expect("redundant").recovery = Scenario::Transparent;
    let t = solve_spec(&transparent)?;
    println!(
        "\nactive-active (transparent recovery): {:.2} downtime min/yr ({:.1}% of baseline)",
        t.system.yearly_downtime_minutes,
        100.0 * t.system.yearly_downtime_minutes / baseline.system.yearly_downtime_minutes
    );
    Ok(())
}
