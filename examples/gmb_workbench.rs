//! The GMB workbench for RAS experts: hand-built Markov, semi-Markov,
//! and hierarchical RBD models with named parameters and a parametric
//! sweep — the workflow the paper describes for "RAS engineers who
//! understand underlying mathematical models".
//!
//! Run with: `cargo run --example gmb_workbench`

use rascad::gmb::parametric::sweep_parameter;
use rascad::gmb::report::registry_report;
use rascad::gmb::{MarkovSpec, ModelRegistry, RbdSpec, SemiMarkovSpec, Value};
use rascad::markov::SojournDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut reg = ModelRegistry::new();
    reg.set_parameter("lambda_node", 1.0 / 6_000.0);
    reg.set_parameter("mu_repair", 1.0 / 5.0);

    // A Markov model of one node, with parameterized rates.
    let mut node = MarkovSpec::new();
    let up = node.state("up", 1.0);
    let down = node.state("down", 0.0);
    node.transition(up, down, Value::param("lambda_node"));
    node.transition(down, up, Value::param("mu_repair"));
    reg.add_markov("node", node)?;

    // A semi-Markov model of the shared storage: deterministic
    // 2-hour repair rather than exponential.
    let mut storage = SemiMarkovSpec::new();
    let s_up = storage.state("up", 1.0, SojournDistribution::Exponential { rate: 1.0 / 50_000.0 });
    let s_down = storage.state("down", 0.0, SojournDistribution::Deterministic { value: 2.0 });
    storage.jump(s_up, s_down, 1.0);
    storage.jump(s_down, s_up, 1.0);
    reg.add_semi_markov("storage", storage)?;

    // The site: two nodes in parallel, in series with the storage —
    // a hierarchical RBD whose leaves are the models above.
    reg.add_rbd(
        "site",
        RbdSpec::series(vec![
            RbdSpec::parallel(vec![
                RbdSpec::leaf(Value::model("node")),
                RbdSpec::leaf(Value::model("node")),
            ]),
            RbdSpec::leaf(Value::model("storage")),
        ]),
    )?;

    print!("{}", registry_report(&reg)?);

    // Parametric analysis: how does site downtime respond to node MTBF?
    println!("\nsite downtime vs node failure rate:");
    println!("{:>14} {:>18}", "lambda_node", "downtime min/yr");
    let values: Vec<f64> = (0..6).map(|i| 1.0 / (2_000.0 * 2f64.powi(i))).collect();
    for point in sweep_parameter(&mut reg, "site", "lambda_node", &values)? {
        println!("{:>14.2e} {:>18.3}", point.value, point.yearly_downtime_minutes);
    }

    // Export the RBD structure for graphical inspection.
    println!("\nGraphviz DOT of the site RBD:");
    let rbd = RbdSpec::series(vec![
        RbdSpec::parallel(vec![
            RbdSpec::leaf(Value::model("node")),
            RbdSpec::leaf(Value::model("node")),
        ]),
        RbdSpec::leaf(Value::model("storage")),
    ]);
    print!("{}", rascad::gmb::dot::rbd_dot("site", &rbd));
    Ok(())
}
