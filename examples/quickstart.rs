//! Quickstart: describe a system in the engineering language, let the
//! Model Generator build and solve the availability models, and print
//! the report.
//!
//! Run with: `cargo run --example quickstart`

use rascad::core::{report, solve_spec};
use rascad::spec::units::{Fit, Hours, Minutes};
use rascad::spec::{BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small database server: one motherboard, a mirrored disk pair,
    // and an N+1 power supply trio. No Markov modeling knowledge
    // needed — just MTBFs, repair times, and redundancy scenarios.
    let mut diagram = Diagram::new("Database Server");

    diagram.push(
        BlockParams::new("Motherboard", 1, 1)
            .with_mtbf(Hours(150_000.0))
            .with_transient_fit(Fit(800.0))
            .with_mttr_parts(Minutes(30.0), Minutes(45.0), Minutes(20.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.98),
    );

    diagram.push(
        BlockParams::new("Mirrored Disks", 2, 1)
            .with_mtbf(Hours(300_000.0))
            .with_mttr_parts(Minutes(15.0), Minutes(20.0), Minutes(30.0))
            .with_service_response(Hours(4.0))
            .with_redundancy(RedundancyParams {
                p_latent_fault: 0.02,
                mttdlf: Hours(24.0),
                recovery: Scenario::Transparent, // the mirror absorbs it
                failover_time: Minutes(0.0),
                p_spf: 0.005,
                spf_recovery_time: Minutes(20.0),
                repair: Scenario::Transparent, // hot-plug rebuild
                reintegration_time: Minutes(0.0),
            }),
    );

    diagram.push(
        BlockParams::new("Power Supplies", 3, 2)
            .with_mtbf(Hours(250_000.0))
            .with_mttr_parts(Minutes(10.0), Minutes(15.0), Minutes(5.0))
            .with_service_response(Hours(4.0)),
    );

    let spec = SystemSpec::new(diagram, GlobalParams::default());

    // The DSL form can be saved and shared.
    println!("--- specification (DSL) ---\n{}", spec.to_dsl());

    // Generate the Markov models and solve.
    let solution = solve_spec(&spec)?;
    println!("--- availability report ---");
    print!("{}", report::system_report("Database Server", &solution));

    // Individual block models are inspectable.
    let disks = solution.block("Database Server/Mirrored Disks").expect("block exists");
    println!(
        "\nThe disk pair generated a Type {} Markov model with {} states.",
        disks.model.model_type,
        disks.model.state_count()
    );
    Ok(())
}
