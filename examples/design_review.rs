//! A full RAS design review, the workflow RAScad was built for:
//! compare two candidate architectures, attribute first-failure modes,
//! inspect the per-state dwell budget, quantify what each RAS mechanism
//! contributes (ablations), and check delivered capacity
//! (performability).
//!
//! Run with: `cargo run --example design_review`

use rascad::core::{
    ablate, compare_architectures, generator::generate_block, performability, report, solve_spec,
};
use rascad::library::{e10000, workgroup};
use rascad::markov::SteadyStateMethod;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let high_end = e10000::e10000();
    let low_end = workgroup::workgroup();

    // 1. Head-to-head comparison.
    let cmp = compare_architectures("workgroup", &low_end, "e10000", &high_end)?;
    println!("{cmp}\n");

    // 2. Where does the high-end machine's remaining downtime come
    //    from? First-failure attribution of its weakest block.
    let sol = solve_spec(&high_end)?;
    let mut worst = sol.blocks.clone();
    worst.sort_by(|a, b| {
        b.measures.yearly_downtime_minutes.total_cmp(&a.measures.yearly_downtime_minutes)
    });
    let weakest = &worst[0];
    println!(
        "weakest block: {} ({:.2} downtime min/yr)",
        weakest.path, weakest.measures.yearly_downtime_minutes
    );
    for (mode, p) in rascad::core::measures::failure_mode_attribution(&weakest.model)? {
        println!("  first failure via {mode:<16} {:>6.2}%", p * 100.0);
    }

    // 3. The dwell budget of the cluster-style system boards.
    let boards = high_end.root.find("System Board").expect("block exists");
    let model = generate_block(&boards.params, &high_end.globals)?;
    println!("\n{}", report::block_dwell_report(&model)?);

    // 4. Mechanism ablations: what does each RAS feature buy?
    let base_dt = sol.system.yearly_downtime_minutes;
    println!("mechanism ablations on the e10000:");
    for (name, variant) in [
        ("perfect diagnosis", ablate::perfect_diagnosis(&high_end)),
        ("no latent faults", ablate::no_latent_faults(&high_end)),
        ("no transients", ablate::no_transients(&high_end)),
        ("perfect recovery", ablate::perfect_recovery(&high_end)),
        ("instant logistics", ablate::instant_logistics(&high_end)),
        ("redundancy stripped", ablate::strip_redundancy(&high_end)),
    ] {
        let dt = solve_spec(&variant)?.system.yearly_downtime_minutes;
        println!("  {name:<22} {dt:>10.2} min/yr ({:>6.1}% of baseline)", 100.0 * dt / base_dt);
    }

    // 5. Performability: availability counts a degraded domain as up;
    //    capacity-weighting shows the delivered-compute picture.
    let cpus = high_end.root.find("CPU Module").expect("block exists");
    let cpu_model = generate_block(&cpus.params, &high_end.globals)?;
    let perf = performability(&cpu_model, SteadyStateMethod::Gth)?;
    println!(
        "\nCPU complex: availability {:.9}, delivered capacity {:.9} ({:.2e} lost to degraded levels)",
        perf.availability, perf.steady_state_capacity, perf.degradation_loss
    );
    Ok(())
}
