//! End-to-end integration: DSL text → parsed spec → generated models →
//! solved measures → report, across crate boundaries.

// Cross-boundary equivalence is asserted bit-exactly: the same spec
// must produce the same measures whichever crate surface solves it.
#![allow(clippy::float_cmp)]

use rascad::core::{report, solve_spec};
use rascad::library::datacenter::data_center;
use rascad::spec::SystemSpec;

const HAND_WRITTEN: &str = r#"
# A small web service: one app server pair and a database.
global {
    reboot_time = 6 min
    mttm = 24 h
    mttrfid = 6 h
    mission_time = 8760 h
}

diagram "Web Service" {
    block "App Server" {
        quantity = 2
        min_quantity = 1
        mtbf = 8000 h
        transient_fit = 20000
        mttr_diagnosis = 30 min
        mttr_corrective = 45 min
        mttr_verification = 15 min
        service_response = 4 h
        p_correct_diagnosis = 0.97
        redundancy {
            p_latent = 0.02
            mttdlf = 12 h
            recovery = nontransparent
            failover_time = 2 min
            p_spf = 0.01
            spf_recovery_time = 20 min
            repair = transparent
            reintegration_time = 0 min
        }
    }
    block "Database" {
        quantity = 1
        min_quantity = 1
        mtbf = 15000 h
        mttr_diagnosis = 45 min
        mttr_corrective = 60 min
        mttr_verification = 30 min
        service_response = 2 h
        p_correct_diagnosis = 0.98
    }
}
"#;

#[test]
fn hand_written_dsl_solves_end_to_end() {
    let spec = SystemSpec::from_dsl(HAND_WRITTEN).expect("parses");
    spec.validate().expect("validates");
    let sol = solve_spec(&spec).expect("solves");
    // The app pair is Type 3; the database Type 0.
    let app = sol.block("Web Service/App Server").expect("present");
    assert_eq!(app.model.model_type, 3);
    let db = sol.block("Web Service/Database").expect("present");
    assert_eq!(db.model.model_type, 0);
    // The redundant pair should be far more available than the single DB.
    assert!(app.measures.availability > db.measures.availability);
    // System availability is the product.
    let expect = app.measures.availability * db.measures.availability;
    assert!((sol.system.availability - expect).abs() < 1e-12);
}

#[test]
fn dsl_roundtrip_preserves_solution() {
    let spec = SystemSpec::from_dsl(HAND_WRITTEN).unwrap();
    let text = spec.to_dsl();
    let again = SystemSpec::from_dsl(&text).unwrap();
    let a = solve_spec(&spec).unwrap().system.yearly_downtime_minutes;
    let b = solve_spec(&again).unwrap().system.yearly_downtime_minutes;
    assert_eq!(a, b);
}

#[test]
fn json_roundtrip_preserves_solution() {
    let spec = SystemSpec::from_dsl(HAND_WRITTEN).unwrap();
    let json = spec.to_json().unwrap();
    let again = SystemSpec::from_json(&json).unwrap();
    assert_eq!(spec, again);
}

#[test]
fn data_center_report_names_every_block() {
    let spec = data_center();
    let sol = solve_spec(&spec).unwrap();
    let text = report::system_report(&spec.root.name, &sol);
    let mut count = 0;
    spec.root.walk(&mut |_, path, _| {
        assert!(text.contains(path), "report missing {path}");
        count += 1;
    });
    assert_eq!(count, 23);
}

#[test]
fn generated_dot_for_every_block_is_well_formed() {
    let spec = data_center();
    spec.root.walk(&mut |_, path, block| {
        let model =
            rascad::core::generator::generate_block(&block.params, &spec.globals).expect(path);
        let dot = report::chain_dot(&model);
        assert!(dot.starts_with("digraph"), "{path}");
        assert_eq!(dot.matches(" -> ").count(), model.transition_count(), "{path}");
    });
}

#[test]
fn mission_measures_scale_with_horizon() {
    // Shorter missions have higher reliability and interval
    // availability closer to 1.
    let mut spec = SystemSpec::from_dsl(HAND_WRITTEN).unwrap();
    spec.globals.mission_time = rascad::spec::units::Hours(720.0);
    let short = solve_spec(&spec).unwrap().system;
    spec.globals.mission_time = rascad::spec::units::Hours(87_600.0);
    let long = solve_spec(&spec).unwrap().system;
    assert!(short.reliability_at_mission > long.reliability_at_mission);
    assert!(short.interval_availability >= long.interval_availability - 1e-12);
}
