//! Every `.rascad` file shipped under `specs/` must parse, validate,
//! solve, and round-trip.

use rascad::core::solve_spec;
use rascad::spec::SystemSpec;

fn sample_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("specs/ directory exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension().is_some_and(|x| x == "rascad")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no sample specs found in {}", dir.display());
    files
}

#[test]
fn all_sample_specs_solve() {
    for path in sample_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            SystemSpec::from_dsl(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let sol = solve_spec(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            sol.system.availability > 0.9 && sol.system.availability < 1.0,
            "{}: availability {}",
            path.display(),
            sol.system.availability
        );
    }
}

#[test]
fn all_sample_specs_roundtrip() {
    for path in sample_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = SystemSpec::from_dsl(&text).unwrap();
        let again = SystemSpec::from_dsl(&spec.to_dsl()).unwrap();
        assert_eq!(spec, again, "{}", path.display());
        let via_json = SystemSpec::from_json(&spec.to_json().unwrap()).unwrap();
        assert_eq!(spec, via_json, "{}", path.display());
    }
}

#[test]
fn web_service_structure() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/web_service.rascad"),
    )
    .unwrap();
    let spec = SystemSpec::from_dsl(&text).unwrap();
    assert_eq!(spec.root.len(), 3);
    assert_eq!(spec.root.depth(), 2);
    let sol = solve_spec(&spec).unwrap();
    // The database tier (with its engine) dominates the downtime.
    let db = sol.block("Web Service/Database").unwrap();
    let lb = sol.block("Web Service/Load Balancer").unwrap();
    assert!(db.combined_availability < lb.combined_availability);
}
