//! The paper's checkable claims, one test per claim — the executable
//! ledger behind EXPERIMENTS.md.

use rascad::core::generator::generate_block;
use rascad::core::hierarchy::solve_spec_with;
use rascad::core::solve_spec;
use rascad::library::datacenter::data_center;
use rascad::markov::SteadyStateMethod;
use rascad::spec::units::{Fit, Hours, Minutes};
use rascad::spec::{BlockParams, GlobalParams, RedundancyParams, Scenario};

fn redundant(n: u32, k: u32, recovery: Scenario, repair: Scenario) -> BlockParams {
    BlockParams::new("X", n, k)
        .with_mtbf(Hours(20_000.0))
        .with_transient_fit(Fit(5_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(0.95)
        .with_redundancy(RedundancyParams {
            p_latent_fault: 0.05,
            mttdlf: Hours(24.0),
            recovery,
            failover_time: Minutes(6.0),
            p_spf: 0.02,
            spf_recovery_time: Minutes(12.0),
            repair,
            reintegration_time: Minutes(10.0),
        })
}

/// §4: "The four Markov model types are determined by the four
/// combinations of the parameters Automatic Recovery Scenario and
/// Repair Scenario."
#[test]
fn claim_four_types_from_scenario_combinations() {
    let g = GlobalParams::default();
    let mut seen = std::collections::HashSet::new();
    for (rec, rep) in [
        (Scenario::Transparent, Scenario::Transparent),
        (Scenario::Transparent, Scenario::Nontransparent),
        (Scenario::Nontransparent, Scenario::Transparent),
        (Scenario::Nontransparent, Scenario::Nontransparent),
    ] {
        let m = generate_block(&redundant(2, 1, rec, rep), &g).unwrap();
        assert!((1..=4).contains(&m.model_type));
        seen.insert(m.model_type);
    }
    assert_eq!(seen.len(), 4);
}

/// §4 / Figure 4: the Type 3 state set for N = 2, K = 1 is exactly the
/// nine states the paper names.
#[test]
fn claim_figure4_state_set() {
    let g = GlobalParams::default();
    let m = generate_block(&redundant(2, 1, Scenario::Nontransparent, Scenario::Transparent), &g)
        .unwrap();
    let mut ours: Vec<_> = m.chain.states().iter().map(|s| s.label.as_str()).collect();
    ours.sort_unstable();
    let mut paper = vec!["Ok", "TF1", "AR1", "SPF", "Latent1", "PF1", "TF2", "PF2", "ServiceError"];
    paper.sort_unstable();
    assert_eq!(ours, paper);
}

/// §4: "the complexity of the model increases from type 1 to type 4".
#[test]
fn claim_complexity_ordering() {
    let g = GlobalParams::default();
    let states: Vec<usize> = [
        (Scenario::Transparent, Scenario::Transparent),
        (Scenario::Transparent, Scenario::Nontransparent),
        (Scenario::Nontransparent, Scenario::Transparent),
        (Scenario::Nontransparent, Scenario::Nontransparent),
    ]
    .iter()
    .map(|&(rec, rep)| generate_block(&redundant(3, 1, rec, rep), &g).unwrap().state_count())
    .collect();
    assert!(states[0] <= states[1] && states[1] <= states[3]);
    assert!(states[0] <= states[2] && states[2] <= states[3]);
    assert!(states[0] < states[3]);
}

/// §4: "if N − K > 1, states TF1, AR1, PF1 and Latent1 will be repeated
/// in the model" — and they are generated automatically for larger N/K.
#[test]
fn claim_states_replicate_with_margin() {
    let g = GlobalParams::default();
    let m = generate_block(&redundant(5, 2, Scenario::Nontransparent, Scenario::Transparent), &g)
        .unwrap();
    for level in 1..=3 {
        for prefix in ["TF", "AR", "PF", "Latent"] {
            let label = format!("{prefix}{level}");
            assert!(m.chain.state_by_label(&label).is_some(), "missing {label}");
        }
    }
}

/// §4: "The system availability of an MG diagram containing n blocks is
/// the product of individual block availability."
#[test]
fn claim_diagram_availability_is_product() {
    let sol = solve_spec(&data_center()).unwrap();
    let product: f64 =
        sol.blocks.iter().filter(|b| b.level == 1).map(|b| b.combined_availability).product();
    assert!((sol.system.availability - product).abs() < 1e-12);
}

/// §5: "the relative errors in yearly downtime are all less than 0.2%"
/// across independent solvers, for the data-center example model.
#[test]
fn claim_cross_solver_error_below_02_percent() {
    let spec = data_center();
    let gth = solve_spec_with(&spec, SteadyStateMethod::Gth).unwrap();
    let lu = solve_spec_with(&spec, SteadyStateMethod::Lu).unwrap();
    let rel = (gth.system.yearly_downtime_minutes - lu.system.yearly_downtime_minutes).abs()
        / gth.system.yearly_downtime_minutes;
    assert!(rel < 0.002, "relative error {rel}");
}

/// §2: the level of detail is the FRU — quantity scales the failure
/// rate linearly for non-redundant blocks.
#[test]
fn claim_fru_quantity_scales_rates() {
    let g = GlobalParams::default();
    let one = BlockParams::new("X", 1, 1).with_mtbf(Hours(50_000.0));
    let four = BlockParams::new("X", 4, 4).with_mtbf(Hours(50_000.0));
    let (m1, b1) = rascad::core::solve_block(&one, &g).unwrap();
    let (m4, b4) = rascad::core::solve_block(&four, &g).unwrap();
    assert_eq!(m1.state_count(), m4.state_count());
    let ratio = b4.unavailability / b1.unavailability;
    assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
}

/// §3: redundancy parameters "are relevant only if Quantity is greater
/// than Minimum Quantity Required" — enforced by validation.
#[test]
fn claim_redundancy_relevance_rule() {
    use rascad::spec::{Diagram, SystemSpec};
    let mut p = BlockParams::new("X", 1, 1);
    p.redundancy = Some(RedundancyParams::default());
    let mut d = Diagram::new("Sys");
    d.push(p);
    let spec = SystemSpec::new(d, GlobalParams::default());
    assert!(spec.validate().is_err());
}
