//! Cross-validation integration tests — the paper's Section 5 claims as
//! executable assertions.
//!
//! Three independent solution paths must agree on every reference
//! model:
//!
//! 1. MG pipeline + GTH,
//! 2. MG pipeline + dense LU (independent numerics),
//! 3. hand-built GMB models / Monte-Carlo simulation (independent
//!    modeling paths).

use rascad::core::hierarchy::solve_spec_with;
use rascad::core::{solve_block, solve_spec};
use rascad::gmb::{MarkovSpec, ModelRegistry, RbdSpec, Value};
use rascad::library::{cluster, datacenter, e10000};
use rascad::markov::SteadyStateMethod;
use rascad::sim::system_sim::{simulate_system, SystemSimOptions};
use rascad::spec::units::{Hours, Minutes};
use rascad::spec::{BlockParams, Diagram, GlobalParams, SystemSpec};

/// The paper's validation bar: relative error in yearly downtime below
/// 0.2 %.
const PAPER_BAR: f64 = 0.002;

fn reference_specs() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("cluster", cluster::two_node_cluster(cluster::ClusterConfig::default())),
        ("datacenter", datacenter::data_center()),
        ("e10000", e10000::e10000()),
    ]
}

#[test]
fn gth_and_lu_agree_within_paper_bar_on_all_reference_models() {
    for (name, spec) in reference_specs() {
        let gth = solve_spec_with(&spec, SteadyStateMethod::Gth).unwrap();
        let lu = solve_spec_with(&spec, SteadyStateMethod::Lu).unwrap();
        let rel = (gth.system.yearly_downtime_minutes - lu.system.yearly_downtime_minutes).abs()
            / gth.system.yearly_downtime_minutes;
        assert!(rel < PAPER_BAR, "{name}: relative error {rel}");
    }
}

#[test]
fn three_numeric_methods_agree_on_the_cluster_chain() {
    // GTH (direct, subtraction-free), LU (direct, pivoted), and power
    // iteration (iterative on the uniformized DTMC) are three fully
    // independent numerical paths; on a well-conditioned chain they
    // must agree far below the paper's bar.
    let spec = cluster::two_node_cluster(cluster::ClusterConfig::default());
    let node = spec.root.find("Cluster Node").unwrap();
    let model = rascad::core::generator::generate_block(&node.params, &spec.globals).unwrap();
    let mut values = Vec::new();
    for method in [SteadyStateMethod::Gth, SteadyStateMethod::Lu, SteadyStateMethod::Power] {
        let pi = model.chain.steady_state(method).unwrap();
        values.push(model.chain.expected_reward(&pi));
    }
    for v in &values[1..] {
        let rel = (v - values[0]).abs() / (1.0 - values[0]);
        assert!(rel < PAPER_BAR, "methods disagree: {values:?}");
    }
}

#[test]
fn simulation_confirms_analytic_availability() {
    for (name, spec) in reference_specs() {
        let analytic = solve_spec(&spec).unwrap().system.availability;
        let sim = simulate_system(
            &spec,
            &SystemSimOptions {
                horizon_hours: 30_000.0,
                replications: 24,
                seed: 0xda7a,
                deterministic_repairs: false,
            },
        )
        .unwrap();
        let est = sim.availability;
        assert!(
            (est.mean - analytic).abs() <= 4.0 * est.ci_half_width.max(1e-6),
            "{name}: sim {} ± {} vs analytic {analytic}",
            est.mean,
            est.ci_half_width
        );
    }
}

/// Builds an MG model through the Model Generator and the *same*
/// mathematical model by hand through GMB; both must give the same
/// availability to solver precision.
#[test]
fn mg_and_hand_built_gmb_model_agree_exactly() {
    // MG path: a non-redundant block with perfect diagnosis and no
    // transients (an alternating renewal process).
    let params = BlockParams::new("Box", 1, 1)
        .with_mtbf(Hours(12_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(60.0), Minutes(30.0))
        .with_service_response(Hours(6.0))
        .with_p_correct_diagnosis(1.0);
    let (_, mg) = solve_block(&params, &GlobalParams::default()).unwrap();

    // GMB path: the analyst draws Ok -> Waiting -> Repair -> Ok by hand.
    let mut reg = ModelRegistry::new();
    let mut m = MarkovSpec::new();
    let ok = m.state("Ok", 1.0);
    let waiting = m.state("Waiting", 0.0);
    let repair = m.state("Repair", 0.0);
    m.transition(ok, waiting, Value::constant(1.0 / 12_000.0));
    m.transition(waiting, repair, Value::constant(1.0 / 6.0));
    m.transition(repair, ok, Value::constant(1.0 / 2.0));
    reg.add_markov("box", m).unwrap();
    let gmb = reg.availability("box").unwrap();

    assert!((mg.availability - gmb).abs() < 1e-12, "{} vs {gmb}", mg.availability);
}

/// A redundant MG block cross-checked against a GMB RBD-over-Markov
/// hierarchy approximating it as independent units. The structures
/// differ (MG models shared repair paths), so this is a sanity bound,
/// not an equality: the RBD view must be at least as optimistic.
#[test]
fn mg_redundant_block_bounded_by_independent_rbd() {
    let mut params = BlockParams::new("Pair", 2, 1)
        .with_mtbf(Hours(5_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(60.0), Minutes(30.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(1.0);
    // Simplest scenario: everything transparent, no latent/SPF effects.
    params.redundancy = Some(rascad::spec::RedundancyParams {
        p_latent_fault: 0.0,
        p_spf: 0.0,
        ..Default::default()
    });
    let g = GlobalParams::default();
    let (_, mg) = solve_block(&params, &g).unwrap();

    // GMB: two independent units, each an alternating renewal with the
    // *scheduled* repair cycle, 1-of-2.
    let unit_up = 5_000.0;
    let unit_down = g.mttm.0 + 4.0 + 2.0; // MTTM + Tresp + MTTR
    let a_unit = unit_up / (unit_up + unit_down);
    let mut reg = ModelRegistry::new();
    reg.add_rbd(
        "pair",
        RbdSpec::parallel(vec![
            RbdSpec::leaf(Value::constant(a_unit)),
            RbdSpec::leaf(Value::constant(a_unit)),
        ]),
    )
    .unwrap();
    let rbd = reg.availability("pair").unwrap();

    // The two views differ in both directions: MG serializes repairs
    // (pessimistic) but places an *immediate* service call once the
    // system is down (optimistic), whereas the independent-RBD view
    // repairs both units on the slow scheduled cycle. MG therefore comes
    // out more available here, and the unavailabilities must agree
    // within an order of magnitude.
    let u_mg = 1.0 - mg.availability;
    let u_rbd = 1.0 - rbd;
    assert!(u_mg < u_rbd, "immediate down-state service should win: {u_mg} vs {u_rbd}");
    assert!(u_rbd / u_mg < 30.0, "u_mg {u_mg} vs u_rbd {u_rbd}");
}

#[test]
fn simulated_outage_frequency_matches_analytic_failure_rate() {
    // The serial-composition failure rate f_sys = Σ f_i Π_{j≠i} A_j is
    // checked against the outage count of long simulations.
    let spec = cluster::two_node_cluster(cluster::ClusterConfig::default());
    let analytic = solve_spec(&spec).unwrap().system.failure_rate;
    let mut rates = Vec::new();
    for seed in 0..12u64 {
        let sim = simulate_system(
            &spec,
            &SystemSimOptions {
                horizon_hours: 50_000.0,
                replications: 1,
                seed: 1000 + seed,
                deterministic_repairs: false,
            },
        )
        .unwrap();
        #[allow(clippy::cast_precision_loss)] // outage counts stay far below 2^52
        rates.push(sim.example_log.outage_count() as f64 / 50_000.0);
    }
    let est = rascad::sim::Estimate::from_samples(&rates);
    assert!(
        (est.mean - analytic).abs() <= 4.0 * est.ci_half_width.max(analytic * 0.02),
        "simulated outage rate {} ± {} vs analytic {analytic}",
        est.mean,
        est.ci_half_width
    );
}

#[test]
fn deterministic_repair_field_data_matches_exponential_model() {
    // Availability is insensitive to the repair-time distribution
    // (means only): deterministic-repair simulation must agree with the
    // exponential analytic model.
    let spec = cluster::two_node_cluster(cluster::ClusterConfig::default());
    let analytic = solve_spec(&spec).unwrap().system.availability;
    let sim = simulate_system(
        &spec,
        &SystemSimOptions {
            horizon_hours: 60_000.0,
            replications: 24,
            seed: 31,
            deterministic_repairs: true,
        },
    )
    .unwrap();
    let est = sim.availability;
    assert!(
        (est.mean - analytic).abs() <= 4.0 * est.ci_half_width.max(1e-6),
        "sim {} ± {} vs analytic {analytic}",
        est.mean,
        est.ci_half_width
    );
}

#[test]
fn hierarchy_equals_flat_model() {
    // A hierarchical spec (blocks behind a perfect enclosure) must give
    // the same result as the flattened spec.
    let mk_block = |name: &str| {
        BlockParams::new(name, 1, 1)
            .with_mtbf(Hours(20_000.0))
            .with_mttr_parts(Minutes(60.0), Minutes(0.0), Minutes(0.0))
            .with_service_response(Hours(0.0))
    };
    let mut flat = Diagram::new("Flat");
    flat.push(mk_block("A"));
    flat.push(mk_block("B"));
    let flat_spec = SystemSpec::new(flat, GlobalParams::default());

    let mut inner = Diagram::new("Inner");
    inner.push(mk_block("A"));
    inner.push(mk_block("B"));
    let mut nested = Diagram::new("Nested");
    nested.push_block(rascad::spec::Block::with_subdiagram(
        BlockParams::new("Enclosure", 1, 1).with_mtbf(Hours(1e15)),
        inner,
    ));
    let nested_spec = SystemSpec::new(nested, GlobalParams::default());

    let a_flat = solve_spec(&flat_spec).unwrap().system.availability;
    let a_nested = solve_spec(&nested_spec).unwrap().system.availability;
    // The enclosure contributes ~1e-15 unavailability; equality to 1e-9
    // is the point.
    assert!((a_flat - a_nested).abs() < 1e-9, "{a_flat} vs {a_nested}");
}
