//! Integration test of the paper's field-data validation loop
//! (Section 5): synthetic E10000 field data → empirical estimates →
//! model comparison.

use rascad::core::solve_spec;
use rascad::fielddata::{analyze, compare, OutageLog};
use rascad::library::e10000::e10000;
use rascad::sim::fieldgen::{generate_field_data, FieldDataOptions, HOURS_PER_MONTH};

fn logs(months: f64, servers: usize, seed: u64) -> Vec<OutageLog> {
    let records = generate_field_data(
        &e10000(),
        &FieldDataOptions { months, servers, seed, deterministic_repairs: true },
    )
    .expect("generates");
    records
        .iter()
        .map(|r| {
            let events: Vec<(f64, bool)> =
                r.log.events.iter().map(|e| (e.time_hours, e.up)).collect();
            OutageLog::from_events(r.log.horizon_hours, &events)
        })
        .collect()
}

#[test]
fn fifteen_month_windows_have_realistic_shape() {
    let logs = logs(15.0, 2, 777);
    assert_eq!(logs.len(), 2);
    for log in &logs {
        assert!((log.observation_hours() - 15.0 * HOURS_PER_MONTH).abs() < 1e-9);
        // An E10000-class machine: high availability, a handful of
        // outages in 15 months at most.
        assert!(log.availability() > 0.98, "{}", log.availability());
        assert!(log.outages().len() < 60);
    }
}

#[test]
fn long_observation_converges_to_model_prediction() {
    // With enough observation time the empirical availability converges
    // on the analytic prediction (the validation loop closed).
    let spec = e10000();
    let predicted = solve_spec(&spec).unwrap().system.availability;
    // 40 servers x 10 years pooled.
    let logs = logs(120.0, 40, 4242);
    let field = analyze(&logs);
    let cmp = compare(predicted, &field);
    assert!(
        cmp.downtime_relative_error.abs() < 0.25,
        "relative error {} (predicted {predicted}, measured {})",
        cmp.downtime_relative_error,
        field.availability
    );
}

#[test]
fn comparison_detects_a_wrong_model() {
    // Feed the comparison a model that is off by 10x; it must not pass.
    let spec = e10000();
    let predicted = solve_spec(&spec).unwrap().system.availability;
    let wrong = 1.0 - (1.0 - predicted) * 10.0;
    let logs = logs(120.0, 40, 4242);
    let field = analyze(&logs);
    let cmp = compare(wrong, &field);
    assert!(cmp.downtime_relative_error.abs() > 1.0);
}

#[test]
fn pooled_estimates_beat_single_server() {
    // Pooling servers narrows the CI on the outage rate.
    let one = analyze(&logs(15.0, 1, 99));
    let many = analyze(&logs(15.0, 8, 99));
    if one.outages > 0 && many.outages > 0 {
        assert!(many.rate_ci_half_width < one.rate_ci_half_width);
    }
    assert!(many.observation_hours > one.observation_hours);
}
