#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full offline test suite.
#
# Runs entirely offline — no network, no crates.io. The vendored
# stand-in crates under vendor/ satisfy every external dependency, so
# `--offline` is passed to each cargo invocation.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

echo "ci: all gates passed"
