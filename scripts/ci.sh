#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full offline test suite.
#
# Runs entirely offline — no network, no crates.io. The vendored
# stand-in crates under vendor/ satisfy every external dependency, so
# `--offline` is passed to each cargo invocation.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets (deny warnings + promoted pedantic lints)"
# The three most frequent lints from the pedantic report below are
# promoted to hard errors; the rest stay report-only.
cargo clippy --workspace --all-targets --offline -- -D warnings \
    -D clippy::must-use-candidate \
    -D clippy::float-cmp \
    -D clippy::cast-precision-loss

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

# Every bundled spec and library model must lint clean through Tier C:
# errors and warnings block (exit 7); info-level notes (including the
# expected RAS2xx structural findings) are allowed.
echo "==> rascad lint --tier-c (bundled specs and library models, deny warnings)"
for spec in specs/*.rascad; do
    cargo run --offline -q -p rascad-cli -- lint "$spec" --tier-c --deny warnings > /dev/null
done
for model in datacenter e10000 cluster workgroup; do
    cargo run --offline -q -p rascad-cli -- library "$model" |
        cargo run --offline -q -p rascad-cli -- lint - --tier-c --deny warnings > /dev/null
done

# Tier C golden check: a seeded spec with a known single point of
# failure must yield RAS201 at the declaring line:column ("Database"
# is declared on line 7, name token at column 11).
echo "==> tier C SPOF golden check (RAS201 at expected line:column)"
cat > target/ci_spof.rascad <<'SPEC'
diagram "Shop" {
    block "Web" {
        quantity = 2
        min_quantity = 1
        mtbf = 50000 h
    }
    block "Database" {
        quantity = 1
        min_quantity = 1
        mtbf = 80000 h
    }
}
SPEC
cargo run --offline -q -p rascad-cli -- lint target/ci_spof.rascad \
    --tier-c --format json > target/ci_spof.jsonl
grep '"code":"RAS201"' target/ci_spof.jsonl |
    grep '"path":"Shop/Database"' |
    grep '"line":7' | grep -q '"column":11'

# Non-blocking performance report: run the quick benchmark suite and
# check that the emitted document is parseable and schema-valid. No
# baseline comparison here — absolute timings vary too much across CI
# hosts to gate on; compare against a checked-in BENCH_*.json locally
# with `rascad bench --compare` (exit 6 flags a regression).
echo "==> bench smoke (rascad bench --quick, report only)"
cargo run --offline -q -p rascad-cli -- bench --quick --label ci-smoke \
    --out target/bench_smoke.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_smoke.json

# Convergence-document golden check: a traced solve must write a
# schema-valid rascad-convergence/v1 document (the CLI runs it through
# trace::validate before writing, so a clean exit means the validator
# passed) with at least one per-iteration series, and --explain must
# append the certificate table to the report.
echo "==> convergence trace golden check (solve --convergence-out / --explain)"
cargo run --offline -q -p rascad-cli -- library datacenter > target/ci_conv_dc.rascad
cargo run --offline -q -p rascad-cli -- solve target/ci_conv_dc.rascad \
    --convergence-out target/ci_conv.json > /dev/null
grep -q '"schema": "rascad-convergence/v1"' target/ci_conv.json
grep -q '"method": "gth"' target/ci_conv.json
grep -q '"metric": "pivot"' target/ci_conv.json
cargo run --offline -q -p rascad-cli -- solve target/ci_conv_dc.rascad --explain \
    > target/ci_explain.txt
grep -q "Convergence traces" target/ci_explain.txt
grep -q "Solution certificates" target/ci_explain.txt
grep -q " ok " target/ci_explain.txt

# Accuracy-gate smoke: record a quick baseline, shrink every stage
# certificate residual a million-fold (so the fresh run looks 1e6x
# worse), and compare with the cross-machine noise floor disabled.
# The doctored residual ratio must trip the accuracy gate: exit 6.
echo "==> bench accuracy-gate smoke (doctored baseline, expect exit 6)"
cargo run --offline -q -p rascad-cli -- bench --quick --label ci-acc \
    --out target/bench_acc_base.json > /dev/null
python3 - <<'PY'
import json
with open("target/bench_acc_base.json") as f:
    doc = json.load(f)
doctored = 0
for stage in doc["stages"]:
    cert = stage.get("certificate")
    if cert and isinstance(cert.get("residual"), float) and cert["residual"] > 0:
        cert["residual"] /= 1e6
        doctored += 1
assert doctored > 0, "no certificates found to doctor"
with open("target/bench_acc_base.json", "w") as f:
    json.dump(doc, f)
PY
set +e
RASCAD_FLIGHT_PATH=target/ci_acc_flight.jsonl \
cargo run --offline -q -p rascad-cli -- bench --quick --label ci-acc \
    --compare target/bench_acc_base.json --residual-floor 0 \
    > target/bench_acc_report.txt 2>&1
acc_code=$?
set -e
if [ "$acc_code" -ne 6 ]; then
    echo "accuracy-gate smoke: expected exit 6, got $acc_code"
    cat target/bench_acc_report.txt
    exit 1
fi
grep -q "residual:" target/bench_acc_report.txt
grep -q "FAIL" target/bench_acc_report.txt

# Sweep-scaling smoke: run the cached/parallel sweep workload at one
# thread and at the machine's parallelism. Validation rejects the
# document outright if the engine's results were not bit-identical to
# the sequential reference. Timing ratios are recorded, not gated —
# refresh the committed baseline with `rascad bench --sweep --full`.
echo "==> bench sweep scaling (1 and N threads, report only)"
RASCAD_THREADS=1 cargo run --offline -q -p rascad-cli -- bench --sweep --quick \
    --label sweep-t1 --out target/bench_sweep_t1.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_sweep_t1.json
cargo run --offline -q -p rascad-cli -- bench --sweep --quick \
    --label sweep-tn --out target/bench_sweep_tn.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_sweep_tn.json

# Large-state-space smoke: a fresh quick run must solve the 10^4-state
# chain on the sparse rung with a certified ok residual, and the
# committed 10^5-state baseline must stay structurally valid. The
# validator gates the machine-independent claims outright (sparse-rung
# certificate < 1e-9, occupancy lump to n+1 states, lump proof within
# 1e-9, bit-identical repeats); timings are never gated across hosts.
echo "==> bench large state space (quick smoke + committed baseline)"
cargo run --offline -q -p rascad-cli -- bench --large --quick \
    --label large-smoke --out target/bench_large_smoke.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_large_smoke.json
cargo run --offline -q -p rascad-cli -- bench --validate BENCH_large.json

# Serve smoke: boot the daemon on an ephemeral port, drive the
# store -> solve -> metrics path over real TCP, then SIGTERM it and
# require a clean drain (exit 0). A 50 ms deadline on a 10^5-state
# chain must come back as a typed 504 without taking the service down.
echo "==> serve smoke (store, solve, deadline 504, metrics, SIGTERM drain)"
cargo build --offline -q -p rascad-cli
rm -f target/ci_serve_out.txt target/ci_serve_err.txt target/ci_serve_final.prom
target/debug/rascad serve --addr 127.0.0.1:0 \
    --metrics-final target/ci_serve_final.prom \
    > target/ci_serve_out.txt 2> target/ci_serve_err.txt &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" target/ci_serve_err.txt 2>/dev/null && break
    sleep 0.1
done
serve_addr=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' target/ci_serve_err.txt)
test -n "$serve_addr"
SERVE_ADDR="$serve_addr" python3 - <<'PY'
import http.client, json, os

host, port = os.environ["SERVE_ADDR"].rsplit(":", 1)

def req(method, path, body=None):
    conn = http.client.HTTPConnection(host, int(port), timeout=60)
    conn.request(method, path, body=body)
    resp = conn.getresponse()
    data = resp.read().decode()
    conn.close()
    return resp.status, data

spec = ('diagram "CiServe" { block "A" { quantity = 2\n'
        ' min_quantity = 1\n mtbf = 10000 h } }')
status, body = req("POST", "/v1/specs",
                   json.dumps({"tenant": "ci", "name": "smoke", "spec": spec}))
assert status == 201, (status, body)
status, body = req("POST", "/v1/solve", json.dumps({"tenant": "ci", "spec_name": "smoke"}))
assert status == 200, (status, body)
doc = json.loads(body)
assert 0.0 < doc["system"]["availability"] <= 1.0, doc

big = ('diagram "CiBig" { block "A" { quantity = 100000\n'
       ' min_quantity = 1\n mtbf = 10000 h } }')
status, body = req("POST", "/v1/solve",
                   json.dumps({"tenant": "ci", "spec": big, "deadline_ms": 50}))
assert status == 504, (status, body)
assert json.loads(body)["error"]["kind"] == "deadline", body

# The deadline miss must not have taken the service down.
status, _ = req("GET", "/healthz")
assert status == 200
status, page = req("GET", "/metrics")
assert status == 200 and "rascad_serve_requests" in page, page[:400]
PY
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "drain clean" target/ci_serve_out.txt
test -s target/ci_serve_final.prom
grep -q '^rascad_serve_requests{route="solve",status="200"} ' target/ci_serve_final.prom
grep -q '^rascad_serve_requests{route="solve",status="504"} ' target/ci_serve_final.prom

# Serve load smoke: a fresh `bench --serve` run must sustain >= 1000
# solves through the daemon, shed under the admission burst, answer the
# 50 ms deadline probe with a typed error, scrape a validator-clean
# metrics page, and drain cleanly — the validator gates all of those
# structural claims outright. The committed baseline must stay valid
# too; latency numbers are recorded, never gated across hosts.
echo "==> bench serve load (fresh run + committed baseline)"
cargo run --offline -q -p rascad-cli -- bench --serve --quick \
    --label serve-smoke --out target/bench_serve_smoke.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_serve_smoke.json
cargo run --offline -q -p rascad-cli -- bench --validate BENCH_serve.json

# Determinism gate: the same sweep run at 1 thread and at 8 threads
# must produce byte-identical reports.
echo "==> sweep determinism (1 vs 8 threads, byte-identical output)"
cargo run --offline -q -p rascad-cli -- library datacenter > target/ci_dc.rascad
cargo run --offline -q -p rascad-cli -- --threads 1 \
    sweep target/ci_dc.rascad "Server Box/System Board" tresp 0.5 24 9 \
    > target/ci_sweep_t1.txt
cargo run --offline -q -p rascad-cli -- --threads 8 \
    sweep target/ci_dc.rascad "Server Box/System Board" tresp 0.5 24 9 \
    > target/ci_sweep_t8.txt
cmp target/ci_sweep_t1.txt target/ci_sweep_t8.txt

# Chaos suites: the fault-injection tests are feature-gated
# (`required-features = ["fault-inject"]`), so the workspace run above
# skips them. Run them explicitly, plus the always-on parser no-panic
# corpus by name so the robustness gates are visible in the log.
echo "==> chaos suites (fault-inject) + parser no-panic corpus"
cargo test --offline -q -p rascad-core --features fault-inject --test chaos
cargo test --offline -q -p rascad-cli --features fault-inject --test chaos
cargo test --offline -q -p rascad-spec --test no_panic

# Fault-injection smoke against the compiled binary: force one
# sub-block panic under --best-effort and check the partial-result
# contract end to end — exit code 8, the PARTIAL RESULT banner, the
# typed failure row, and every uninjected block's report row
# byte-identical to a clean run.
echo "==> fault-injection smoke (forced panic, --best-effort, exit 8)"
cargo run --offline -q -p rascad-cli --features fault-inject -- \
    solve target/ci_dc.rascad > target/ci_chaos_clean.txt
cat > target/ci_chaos_plan.toml <<'PLAN'
[[inject]]
block = "Server Box/CPU Module"
kind = "panic"
PLAN
rm -f target/ci_flight.jsonl
set +e
RASCAD_FLIGHT_PATH=target/ci_flight.jsonl \
cargo run --offline -q -p rascad-cli --features fault-inject -- \
    solve target/ci_dc.rascad --best-effort --inject target/ci_chaos_plan.toml \
    > target/ci_chaos_partial.txt 2> target/ci_chaos_stderr.txt
chaos_code=$?
set -e
if [ "$chaos_code" -ne 8 ]; then
    echo "fault-injection smoke: expected exit 8, got $chaos_code"
    cat target/ci_chaos_stderr.txt
    exit 1
fi
grep -q "PARTIAL RESULT" target/ci_chaos_partial.txt
grep -q "worker panicked while solving block" target/ci_chaos_partial.txt
grep '^ *Data Center System/' target/ci_chaos_clean.txt |
    grep -v "Server Box/CPU Module" > target/ci_chaos_rows_clean.txt
grep '^ *Data Center System/' target/ci_chaos_partial.txt |
    grep -v "Server Box/CPU Module" > target/ci_chaos_rows_partial.txt
cmp target/ci_chaos_rows_clean.txt target/ci_chaos_rows_partial.txt

# Flight-recorder smoke: the degraded run above must have left its
# post-mortem at $RASCAD_FLIGHT_PATH — a JSONL header naming the
# incident plus the failing block's span in the ring.
echo "==> flight recorder smoke (degraded solve leaves a post-mortem)"
grep -q "flight recorder:" target/ci_chaos_stderr.txt
test -s target/ci_flight.jsonl
head -1 target/ci_flight.jsonl | grep -q '"flight_recorder":"rascad"'
head -1 target/ci_flight.jsonl | grep -q 'Server Box/CPU Module'
grep -q '"kind":"incident","name":"degraded_solve"' target/ci_flight.jsonl
grep '"kind":"span_end"' target/ci_flight.jsonl | grep -q 'Server Box/CPU Module'

# Prometheus golden check: `stats --prometheus` runs every page it
# emits through the hand-rolled exposition-format validator before
# printing (a validation failure is an internal error, exit != 0), so
# a clean exit means the validator passed. Grep pins the golden
# families: HELP/TYPE headers, labeled counters, native histogram
# series, and a catalogued counter that must be zero-filled.
echo "==> prometheus exposition golden check (stats --prometheus)"
cargo run --offline -q -p rascad-cli -- stats target/ci_dc.rascad --prometheus \
    > target/ci_stats.prom
grep -q '^# TYPE rascad_core_specs_solved counter$' target/ci_stats.prom
grep -q '^# HELP rascad_markov_solves ' target/ci_stats.prom
grep -q '^rascad_markov_solves{method="gth"} ' target/ci_stats.prom
grep -q '^rascad_core_cache_misses{kind="steady"} ' target/ci_stats.prom
grep -q '^rascad_markov_gth_states_bucket{le="+Inf"} ' target/ci_stats.prom
grep -q '^rascad_markov_gth_states_count ' target/ci_stats.prom
grep -q '^rascad_engine_worker_panics 0$' target/ci_stats.prom
# The exit-time scrape (--metrics-out) must produce the same shape.
cargo run --offline -q -p rascad-cli -- --metrics-out target/ci_exit.prom \
    solve target/ci_dc.rascad > /dev/null
grep -q '^rascad_core_blocks_generated ' target/ci_exit.prom

# Chrome-trace smoke: --trace-out must emit a Perfetto-loadable
# traceEvents document covering the pipeline's top-level spans. The
# JSON-level validator runs in crates/cli/tests/binary.rs; here we
# check the envelope and the expected span coverage.
echo "==> chrome trace smoke (--trace-out, expected top-level spans)"
cargo run --offline -q -p rascad-cli -- --trace-out target/ci_trace.json \
    solve target/ci_dc.rascad > /dev/null
head -c 16 target/ci_trace.json | grep -q '{"traceEvents":\['
tail -c 4 target/ci_trace.json | grep -q ']}'
for span in spec.parse_dsl core.generate_block core.solve_spec markov.gth; do
    grep -q "\"name\":\"$span\"" target/ci_trace.json
done

# Non-blocking pedantic report: surfaces candidate cleanups without
# gating the build on them (the hard clippy gate above already denies
# default-level warnings). Mirrors the bench-smoke pattern.
echo "==> cargo clippy pedantic (report only)"
cargo clippy --workspace --all-targets --offline -- -W clippy::pedantic 2>&1 |
    grep -E "^warning" | sort | uniq -c | sort -rn | head -20 || true

echo "ci: all gates passed"
