#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full offline test suite.
#
# Runs entirely offline — no network, no crates.io. The vendored
# stand-in crates under vendor/ satisfy every external dependency, so
# `--offline` is passed to each cargo invocation.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --offline -q

# Every bundled spec and library model must lint clean: errors and
# warnings block (exit 7); info-level notes are allowed.
echo "==> rascad lint (bundled specs and library models, deny warnings)"
for spec in specs/*.rascad; do
    cargo run --offline -q -p rascad-cli -- lint "$spec" --deny warnings > /dev/null
done
for model in datacenter e10000 cluster workgroup; do
    cargo run --offline -q -p rascad-cli -- library "$model" |
        cargo run --offline -q -p rascad-cli -- lint - --deny warnings > /dev/null
done

# Non-blocking performance report: run the quick benchmark suite and
# check that the emitted document is parseable and schema-valid. No
# baseline comparison here — absolute timings vary too much across CI
# hosts to gate on; compare against a checked-in BENCH_*.json locally
# with `rascad bench --compare` (exit 6 flags a regression).
echo "==> bench smoke (rascad bench --quick, report only)"
cargo run --offline -q -p rascad-cli -- bench --quick --label ci-smoke \
    --out target/bench_smoke.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_smoke.json

# Sweep-scaling smoke: run the cached/parallel sweep workload at one
# thread and at the machine's parallelism. Validation rejects the
# document outright if the engine's results were not bit-identical to
# the sequential reference. Timing ratios are recorded, not gated —
# refresh the committed baseline with `rascad bench --sweep --full`.
echo "==> bench sweep scaling (1 and N threads, report only)"
RASCAD_THREADS=1 cargo run --offline -q -p rascad-cli -- bench --sweep --quick \
    --label sweep-t1 --out target/bench_sweep_t1.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_sweep_t1.json
cargo run --offline -q -p rascad-cli -- bench --sweep --quick \
    --label sweep-tn --out target/bench_sweep_tn.json > /dev/null
cargo run --offline -q -p rascad-cli -- bench --validate target/bench_sweep_tn.json

# Determinism gate: the same sweep run at 1 thread and at 8 threads
# must produce byte-identical reports.
echo "==> sweep determinism (1 vs 8 threads, byte-identical output)"
cargo run --offline -q -p rascad-cli -- library datacenter > target/ci_dc.rascad
cargo run --offline -q -p rascad-cli -- --threads 1 \
    sweep target/ci_dc.rascad "Server Box/System Board" tresp 0.5 24 9 \
    > target/ci_sweep_t1.txt
cargo run --offline -q -p rascad-cli -- --threads 8 \
    sweep target/ci_dc.rascad "Server Box/System Board" tresp 0.5 24 9 \
    > target/ci_sweep_t8.txt
cmp target/ci_sweep_t1.txt target/ci_sweep_t8.txt

# Non-blocking pedantic report: surfaces candidate cleanups without
# gating the build on them (the hard clippy gate above already denies
# default-level warnings). Mirrors the bench-smoke pattern.
echo "==> cargo clippy pedantic (report only)"
cargo clippy --workspace --all-targets --offline -- -W clippy::pedantic 2>&1 |
    grep -E "^warning" | sort | uniq -c | sort -rn | head -20 || true

echo "ci: all gates passed"
