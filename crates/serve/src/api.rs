//! Request/response bodies for the `/v1` API.
//!
//! Every handler is a pure function from a parsed JSON body (plus the
//! shared engine/store) to an [`ApiResponse`], so the whole API is
//! unit-testable without a socket. Error responses all share one typed
//! shape: `{"error": {"kind": "...", "message": "..."}}`, with the
//! `kind` string stable for scripting (`bad-request`, `spec`,
//! `not-found`, `shed`, `deadline`, `panic`, `solver`).

use std::time::{Duration, Instant};

use rascad_core::{CoreError, Engine, EngineError, SystemSolution};
use rascad_markov::{CancelToken, MarkovError, SolveOptions, SteadyStateMethod};
use rascad_obs::json::{self, Value};
use rascad_spec::SystemSpec;

use crate::store::{SpecStore, StoreError};

/// A fully-determined HTTP answer from a handler.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (already a [`Value`]; serialized at write time).
    pub body: Value,
    /// Extra headers, e.g. `Retry-After` on sheds.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl ApiResponse {
    /// A 200 with the given body.
    #[must_use]
    pub fn ok(body: Value) -> ApiResponse {
        ApiResponse { status: 200, body, extra_headers: Vec::new() }
    }

    /// A typed error response.
    #[must_use]
    pub fn error(status: u16, kind: &str, message: impl Into<String>) -> ApiResponse {
        ApiResponse {
            status,
            body: obj(vec![(
                "error",
                obj(vec![
                    ("kind", Value::Str(kind.to_string())),
                    ("message", Value::Str(message.into())),
                ]),
            )]),
            extra_headers: Vec::new(),
        }
    }

    /// A 429 shed with its `Retry-After` hint.
    #[must_use]
    pub fn shed(reason: &str, retry_after_secs: u64) -> ApiResponse {
        let mut r = ApiResponse::error(
            429,
            "shed",
            format!("request shed ({reason}); retry after {retry_after_secs}s"),
        );
        r.extra_headers.push(("Retry-After", retry_after_secs.to_string()));
        r
    }
}

/// Builds an object value from `(key, value)` pairs.
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses a request body as a JSON object.
///
/// # Errors
///
/// A 400 `bad-request` response when the body is not a JSON object.
pub fn parse_body(body: &str) -> Result<Value, ApiResponse> {
    let v = json::parse(body)
        .map_err(|e| ApiResponse::error(400, "bad-request", format!("body is not JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(ApiResponse::error(400, "bad-request", "body must be a JSON object"));
    }
    Ok(v)
}

/// The tenant a request belongs to (`"anonymous"` when unnamed).
#[must_use]
pub fn tenant_of(body: &Value) -> String {
    body.get("tenant").and_then(Value::as_str).unwrap_or("anonymous").to_string()
}

/// Parses the inline `spec` field (DSL unless `format` is `"json"`).
fn parse_inline_spec(body: &Value) -> Result<SystemSpec, ApiResponse> {
    let text = body
        .get("spec")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiResponse::error(400, "bad-request", "missing `spec` string field"))?;
    let format = body.get("format").and_then(Value::as_str).unwrap_or("dsl");
    let spec = match format {
        "dsl" => SystemSpec::from_dsl(text),
        "json" => SystemSpec::from_json(text),
        other => {
            return Err(ApiResponse::error(
                400,
                "bad-request",
                format!("unknown spec format `{other}` (dsl, json)"),
            ));
        }
    };
    spec.map_err(|e| ApiResponse::error(400, "spec", e.to_string()))
}

/// Resolves the spec a solve/sweep request targets: inline `spec`
/// first, else `spec_name` against the tenant's store shelf.
fn resolve_spec(body: &Value, tenant: &str, store: &SpecStore) -> Result<SystemSpec, ApiResponse> {
    if body.get("spec").is_some() {
        return parse_inline_spec(body);
    }
    let name = body.get("spec_name").and_then(Value::as_str).ok_or_else(|| {
        ApiResponse::error(400, "bad-request", "need either `spec` or `spec_name`")
    })?;
    store.get(tenant, name).ok_or_else(|| {
        ApiResponse::error(404, "not-found", format!("tenant `{tenant}` has no spec `{name}`"))
    })
}

/// Builds the per-request [`SolveOptions`]: a `deadline_ms` field turns
/// into both a wall-clock budget and a cancellation token pinned to the
/// absolute deadline, so a stuck rung and a long ladder alike abort
/// within the client's patience.
fn solve_options(body: &Value) -> Result<SolveOptions, ApiResponse> {
    let mut options = SolveOptions::default();
    if let Some(v) = body.get("deadline_ms") {
        let ms = v.as_i64().filter(|&ms| ms > 0).ok_or_else(|| {
            ApiResponse::error(400, "bad-request", "`deadline_ms` must be a positive integer")
        })?;
        #[allow(clippy::cast_sign_loss)]
        let budget = Duration::from_millis(ms as u64);
        options.wall_clock = Some(budget);
        options.cancel = Some(CancelToken::with_deadline(Instant::now() + budget));
    }
    Ok(options)
}

fn method_of(body: &Value) -> Result<SteadyStateMethod, ApiResponse> {
    match body.get("method").and_then(Value::as_str) {
        None | Some("gth") => Ok(SteadyStateMethod::Gth),
        Some("power") => Ok(SteadyStateMethod::Power),
        Some("lu") => Ok(SteadyStateMethod::Lu),
        Some(other) => Err(ApiResponse::error(
            400,
            "bad-request",
            format!("unknown method `{other}` (gth, power, lu)"),
        )),
    }
}

/// Maps a solve failure onto the typed HTTP error vocabulary.
#[must_use]
pub fn error_response(e: &CoreError) -> ApiResponse {
    match e {
        CoreError::Spec(e) => ApiResponse::error(400, "spec", e.to_string()),
        CoreError::Markov { block, source } => match deadline_kind(source) {
            Some(kind) => ApiResponse::error(
                504,
                "deadline",
                format!("block `{block}`: solve {kind} before the request deadline"),
            ),
            None => ApiResponse::error(500, "solver", format!("block `{block}` failed: {source}")),
        },
        CoreError::Engine(EngineError::WorkerPanicked { path, .. }) => {
            ApiResponse::error(500, "panic", format!("worker panicked solving `{path}`"))
        }
        other => ApiResponse::error(500, "solver", other.to_string()),
    }
}

/// Whether the error is a tripped per-request budget (wall clock or
/// cancellation token) rather than a numerical failure. A ladder that
/// exhausted with every rung timed out or cancelled counts too.
fn deadline_kind(e: &MarkovError) -> Option<&'static str> {
    match e {
        MarkovError::Timeout { .. } => Some("timed out"),
        MarkovError::Cancelled { .. } => Some("cancelled"),
        MarkovError::FallbackExhausted { attempts } => attempts
            .iter()
            .all(|a| {
                matches!(*a.error, MarkovError::Timeout { .. } | MarkovError::Cancelled { .. })
            })
            .then_some("timed out"),
        _ => None,
    }
}

/// `POST /v1/specs` — parse, validate, and store a spec for a tenant.
#[must_use]
pub fn put_spec(body: &Value, store: &SpecStore) -> ApiResponse {
    let tenant = tenant_of(body);
    let Some(name) = body.get("name").and_then(Value::as_str) else {
        return ApiResponse::error(400, "bad-request", "missing `name` string field");
    };
    let spec = match parse_inline_spec(body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    if let Err(e) = spec.validate() {
        return ApiResponse::error(400, "spec", e.to_string());
    }
    let report = rascad_lint::lint_spec(&spec);
    if report.has_errors() {
        return ApiResponse::error(400, "spec", "spec has blocking lint errors");
    }
    let blocks = spec.root.total_blocks();
    let depth = spec.root.depth();
    match store.put(&tenant, name, spec) {
        Ok(()) => ApiResponse {
            status: 201,
            body: obj(vec![
                ("tenant", Value::Str(tenant)),
                ("name", Value::Str(name.to_string())),
                ("blocks", int(blocks)),
                ("depth", int(depth)),
            ]),
            extra_headers: Vec::new(),
        },
        Err(e @ StoreError::QuotaExhausted { .. }) => {
            ApiResponse::error(400, "quota", e.to_string())
        }
    }
}

#[allow(clippy::cast_possible_wrap)]
fn int(n: usize) -> Value {
    Value::Int(n as i64)
}

/// `POST /v1/solve` — solve a stored or inline spec under the
/// request's deadline; `best_effort` degrades instead of failing.
#[must_use]
pub fn solve(body: &Value, engine: &Engine, store: &SpecStore) -> ApiResponse {
    let tenant = tenant_of(body);
    let spec = match resolve_spec(body, &tenant, store) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let options = match solve_options(body) {
        Ok(o) => o,
        Err(r) => return r,
    };
    let method = match method_of(body) {
        Ok(m) => m,
        Err(r) => return r,
    };
    let best_effort = body.get("best_effort").and_then(Value::as_bool).unwrap_or(false);
    let result = if best_effort {
        engine.solve_spec_best_effort_with_options(&spec, method, &options)
    } else {
        engine.solve_spec_with_options(&spec, method, &options)
    };
    match result {
        Ok(sol) => ApiResponse::ok(solution_json(&sol)),
        Err(e) => error_response(&e),
    }
}

/// `POST /v1/sweep` — parametric sweep over a stored or inline spec.
#[must_use]
pub fn sweep(body: &Value, engine: &Engine, store: &SpecStore) -> ApiResponse {
    let tenant = tenant_of(body);
    let spec = match resolve_spec(body, &tenant, store) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let Some(block) = body.get("block").and_then(Value::as_str) else {
        return ApiResponse::error(400, "bad-request", "missing `block` path field");
    };
    let Some(param) = body.get("param").and_then(Value::as_str) else {
        return ApiResponse::error(400, "bad-request", "missing `param` field (mtbf, tresp, pcd)");
    };
    let (from, to) =
        match (body.get("from").and_then(Value::as_f64), body.get("to").and_then(Value::as_f64)) {
            (Some(a), Some(b)) => (a, b),
            _ => return ApiResponse::error(400, "bad-request", "missing numeric `from`/`to`"),
        };
    let points = match body.get("points").and_then(Value::as_i64) {
        Some(n) if (2..=101).contains(&n) => usize::try_from(n).expect("bounded above"),
        _ => return ApiResponse::error(400, "bad-request", "`points` must be in 2..=101"),
    };
    if spec.root.find(block).is_none() {
        return ApiResponse::error(404, "not-found", format!("no block at path `{block}`"));
    }
    #[allow(clippy::cast_precision_loss)]
    let values: Vec<f64> =
        (0..points).map(|i| from + (to - from) * (i as f64) / ((points - 1) as f64)).collect();
    let block_path = block.to_string();
    let param = param.to_string();
    let mut apply_err = None;
    let swept = engine.sweep(&spec, &values, |s, v| {
        if apply_err.is_some() {
            return;
        }
        if let Err(e) = apply_param(s, &block_path, &param, v) {
            apply_err = Some(e);
        }
    });
    if let Some(r) = apply_err {
        return r;
    }
    match swept {
        Ok(points) => ApiResponse::ok(obj(vec![
            ("param", Value::Str(param)),
            ("block", Value::Str(block_path)),
            (
                "points",
                Value::Arr(
                    points
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("value", Value::Num(p.value)),
                                ("availability", Value::Num(p.solution.system.availability)),
                                (
                                    "yearly_downtime_minutes",
                                    Value::Num(p.solution.system.yearly_downtime_minutes),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])),
        Err(e) => error_response(&e),
    }
}

/// Applies one sweep parameter to the targeted block.
fn apply_param(
    spec: &mut SystemSpec,
    block: &str,
    param: &str,
    value: f64,
) -> Result<(), ApiResponse> {
    let Some(b) = spec.root.find_mut(block) else {
        return Err(ApiResponse::error(404, "not-found", format!("no block at path `{block}`")));
    };
    match param {
        "mtbf" => b.params.mtbf = rascad_spec::units::Hours(value),
        "tresp" => b.params.service_response = rascad_spec::units::Hours(value),
        "pcd" => b.params.p_correct_diagnosis = value,
        other => {
            return Err(ApiResponse::error(
                400,
                "bad-request",
                format!("unknown sweep param `{other}` (mtbf, tresp, pcd)"),
            ));
        }
    }
    Ok(())
}

/// `POST /v1/lint` — static analysis of an inline spec, findings as
/// the JSON-lines-equivalent array the CLI renders.
#[must_use]
pub fn lint(body: &Value) -> ApiResponse {
    let spec = match parse_inline_spec(body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let report = rascad_lint::lint_spec(&spec);
    let rendered = rascad_lint::render::render_json(&report);
    let findings: Vec<Value> = rendered
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::parse(l).ok())
        .collect();
    let (errors, warnings, notes) = report.counts();
    ApiResponse::ok(obj(vec![
        ("errors", int(errors)),
        ("warnings", int(warnings)),
        ("notes", int(notes)),
        ("blocking", Value::Bool(report.has_errors())),
        ("findings", Value::Arr(findings)),
    ]))
}

/// Serializes a solution: system measures, per-block summary with the
/// certificate verdict, and — for degraded runs — the failed blocks
/// plus the availability bounds bracketing the truth.
#[must_use]
pub fn solution_json(sol: &SystemSolution) -> Value {
    let s = &sol.system;
    let mut fields = vec![
        (
            "system",
            obj(vec![
                ("availability", Value::Num(s.availability)),
                ("unavailability", Value::Num(s.unavailability)),
                ("yearly_downtime_minutes", Value::Num(s.yearly_downtime_minutes)),
                ("failure_rate", Value::Num(s.failure_rate)),
                ("mtbf_hours", Value::Num(s.mtbf_hours)),
                ("interval_availability", Value::Num(s.interval_availability)),
                ("reliability_at_mission", Value::Num(s.reliability_at_mission)),
                ("mttf_hours", Value::Num(s.mttf_hours)),
                ("mission_hours", Value::Num(s.mission_hours)),
            ]),
        ),
        (
            "blocks",
            Value::Arr(
                sol.blocks
                    .iter()
                    .map(|b| {
                        obj(vec![
                            ("path", Value::Str(b.path.clone())),
                            ("availability", Value::Num(b.measures.availability)),
                            ("states", int(b.model.state_count())),
                            (
                                "certificate",
                                obj(vec![
                                    ("verdict", Value::Str(b.certificate.verdict.to_string())),
                                    ("method", Value::Str(b.certificate.method.clone())),
                                    ("residual_inf", Value::Num(b.certificate.residual_inf)),
                                    ("prob_mass_error", Value::Num(b.certificate.prob_mass_error)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("degraded", Value::Bool(sol.is_degraded())),
    ];
    if sol.is_degraded() {
        let (lo, hi) = sol.availability_bounds();
        fields.push(("availability_bounds", Value::Arr(vec![Value::Num(lo), Value::Num(hi)])));
        fields.push((
            "failed",
            Value::Arr(
                sol.failed
                    .iter()
                    .map(|f| {
                        obj(vec![
                            ("path", Value::Str(f.path.clone())),
                            ("error", Value::Str(f.error.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn dsl() -> String {
        let mut root = Diagram::new("Api");
        root.push(BlockParams::new("A", 2, 1).with_mtbf(Hours(10_000.0)));
        SystemSpec::new(root, GlobalParams::default()).to_dsl()
    }

    fn body(json_text: &str) -> Value {
        json::parse(json_text).unwrap()
    }

    #[test]
    fn put_then_solve_by_name() {
        let store = SpecStore::default();
        let engine = Engine::new();
        let text = dsl().replace('"', "\\\"").replace('\n', "\\n");
        let r = put_spec(&body(&format!(r#"{{"tenant":"t","name":"s","spec":"{text}"}}"#)), &store);
        assert_eq!(r.status, 201, "{:?}", r.body);
        let r = solve(&body(r#"{"tenant":"t","spec_name":"s"}"#), &engine, &store);
        assert_eq!(r.status, 200, "{:?}", r.body);
        let a = r.body.get("system").unwrap().get("availability").unwrap().as_f64().unwrap();
        assert!(a > 0.999 && a <= 1.0);
        assert_eq!(r.body.get("degraded").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unknown_spec_name_is_404_and_tenants_do_not_leak() {
        let store = SpecStore::default();
        let engine = Engine::new();
        let text = dsl().replace('"', "\\\"").replace('\n', "\\n");
        let stored =
            put_spec(&body(&format!(r#"{{"tenant":"t1","name":"s","spec":"{text}"}}"#)), &store);
        assert_eq!(stored.status, 201);
        // Same name, different tenant: not found.
        let r = solve(&body(r#"{"tenant":"t2","spec_name":"s"}"#), &engine, &store);
        assert_eq!(r.status, 404);
        assert_eq!(r.body.get("error").unwrap().get("kind").unwrap().as_str(), Some("not-found"));
    }

    #[test]
    fn malformed_bodies_are_400_typed() {
        let store = SpecStore::default();
        let engine = Engine::new();
        assert_eq!(parse_body("not json").unwrap_err().status, 400);
        assert_eq!(parse_body("[1,2]").unwrap_err().status, 400);
        let r = solve(&body(r#"{"tenant":"t"}"#), &engine, &store);
        assert_eq!(r.status, 400);
        let r = solve(&body(r#"{"spec":"diagram"}"#), &engine, &store);
        assert_eq!(r.status, 400);
        assert_eq!(r.body.get("error").unwrap().get("kind").unwrap().as_str(), Some("spec"));
        let r = solve(&body(r#"{"spec":"x","deadline_ms":-5}"#), &engine, &store);
        assert_eq!(r.status, 400);
    }

    #[test]
    fn pre_expired_deadline_is_a_504() {
        let store = SpecStore::default();
        let text = dsl().replace('"', "\\\"").replace('\n', "\\n");
        // deadline_ms: 1 — the token expires before (or during) the
        // first solver clock check on any non-trivially-cached chain.
        // Use an uncached engine-fresh spec so the solve actually runs.
        let mut r;
        let mut attempts = 0;
        loop {
            r = solve(
                &body(&format!(r#"{{"spec":"{text}","deadline_ms":1}}"#)),
                &Engine::new(),
                &store,
            );
            attempts += 1;
            if r.status != 200 || attempts > 3 {
                break;
            }
        }
        // A tiny chain can legitimately finish within 1 ms; accept
        // either a clean 200 or the typed 504 — never anything else.
        assert!(
            r.status == 200 || r.status == 504,
            "expected 200 or typed deadline 504, got {} {:?}",
            r.status,
            r.body
        );
        if r.status == 504 {
            assert_eq!(
                r.body.get("error").unwrap().get("kind").unwrap().as_str(),
                Some("deadline")
            );
        }
    }

    #[test]
    fn sweep_returns_monotone_availability_over_mtbf() {
        let store = SpecStore::default();
        let engine = Engine::new();
        let text = dsl().replace('"', "\\\"").replace('\n', "\\n");
        let r = sweep(
            &body(&format!(
                r#"{{"spec":"{text}","block":"A","param":"mtbf","from":1000,"to":50000,"points":5}}"#
            )),
            &engine,
            &store,
        );
        assert_eq!(r.status, 200, "{:?}", r.body);
        let pts = r.body.get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 5);
        let avails: Vec<f64> =
            pts.iter().map(|p| p.get("availability").unwrap().as_f64().unwrap()).collect();
        assert!(avails.windows(2).all(|w| w[0] <= w[1]), "{avails:?}");
    }

    #[test]
    fn lint_reports_counts_and_findings() {
        let r = lint(&body(&format!(
            r#"{{"spec":"{}"}}"#,
            dsl().replace('"', "\\\"").replace('\n', "\\n")
        )));
        assert_eq!(r.status, 200);
        assert!(r.body.get("findings").unwrap().as_array().is_some());
        assert_eq!(r.body.get("blocking").unwrap().as_bool(), Some(false));
    }
}
