//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! Hand-rolled on purpose: the service has no external dependencies,
//! and the subset it needs — request line, headers, `Content-Length`
//! bodies, keep-alive — fits in a few hundred lines that can be
//! hardened directly. Every read is bounded twice (byte caps and
//! socket timeouts) so a slow or malicious client can never pin a
//! connection thread.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection byte caps and socket timeouts.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
    /// Socket read timeout (slow-client protection).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-reader protection).
    pub write_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A parsed request: method, path, lower-cased headers, body.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (no query parsing; the API uses none).
    pub path: String,
    /// Header name/value pairs; names lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` framed; no chunked support).
    pub body: String,
}

impl Request {
    /// First value of a header, by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not an HTTP/1.1 request we accept.
    Malformed(String),
    /// Head or body exceeded its byte cap.
    TooLarge { what: &'static str, limit: usize },
    /// The socket read timed out mid-request (slow client).
    Timeout,
    /// Any other socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "request {what} exceeds the {limit}-byte limit")
            }
            HttpError::Timeout => f.write_str("client read timed out"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads one request from the stream. `Ok(None)` means the client
/// closed cleanly before sending anything (normal keep-alive end).
///
/// # Errors
///
/// [`HttpError`] on malformed framing, byte-cap overflow, slow-client
/// timeout, or any socket error.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    stream.set_read_timeout(Some(limits.read_timeout)).map_err(HttpError::Io)?;
    stream.set_write_timeout(Some(limits.write_timeout)).map_err(HttpError::Io)?;

    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::TooLarge { what: "head", limit: limits.max_head_bytes });
        }
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => return Err(HttpError::Malformed(format!("bad request line `{request_line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request { method, path, headers, body: String::new() };

    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("chunked bodies are not supported".into()));
    }
    let content_length: usize = match req.header("content-length") {
        None => 0,
        Some(v) => {
            v.parse().map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?
        }
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge { what: "body", limit: limits.max_body_bytes });
    }

    // Body bytes already read past the head, then the remainder.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    req.body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
    Ok(Some(req))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the service emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response. `extra` carries response-specific headers
/// (e.g. `Retry-After`); `Content-Length` and `Connection` are always
/// emitted here.
///
/// # Errors
///
/// Propagates socket write errors (including write-timeout trips).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_reason(status),
        body.len(),
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        round_trip_holding(raw, Duration::from_millis(50))
    }

    fn round_trip_holding(raw: &[u8], hold: Duration) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open so a short body is a timeout, not EOF.
            std::thread::sleep(hold);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let limits = HttpLimits { read_timeout: Duration::from_millis(200), ..Default::default() };
        let r = read_request(&mut stream, &limits);
        client.join().unwrap();
        r
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            round_trip(b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, "{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn malformed_request_lines_are_typed() {
        for raw in
            [&b"GARBAGE\r\n\r\n"[..], b"GET nothing HTTP/1.1\r\n\r\n", b"GET / SPDY/9\r\n\r\n"]
        {
            assert!(matches!(round_trip(raw), Err(HttpError::Malformed(_))), "{raw:?}");
        }
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(round_trip(raw), Err(HttpError::TooLarge { what: "body", .. })));
    }

    #[test]
    fn slow_client_trips_the_read_timeout() {
        // Promised 10 body bytes, sent 2, socket held open past the
        // server's 200 ms read timeout: the server must bail out with
        // a typed timeout rather than pinning the thread.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab";
        let r = round_trip_holding(raw, Duration::from_millis(500));
        assert!(matches!(r, Err(HttpError::Timeout)));
    }

    #[test]
    fn clean_eof_before_any_bytes_is_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            drop(TcpStream::connect(addr).unwrap());
        });
        let (mut stream, _) = listener.accept().unwrap();
        let limits = HttpLimits { read_timeout: Duration::from_millis(200), ..Default::default() };
        assert!(read_request(&mut stream, &limits).unwrap().is_none());
        client.join().unwrap();
    }
}
