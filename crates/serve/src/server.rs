//! The daemon: accept loop, routing, per-request isolation, graceful
//! shutdown.
//!
//! Robustness properties, in the order a request meets them:
//!
//! 1. **Slow-client protection** — socket read/write timeouts and byte
//!    caps in [`crate::http`].
//! 2. **Admission** — a bounded gate ([`crate::admission`]) sheds with
//!    429 + `Retry-After` instead of queueing; per-tenant caps keep one
//!    tenant from starving the rest.
//! 3. **Deadlines** — `deadline_ms` becomes a wall-clock budget plus a
//!    [`rascad_markov::CancelToken`] checked inside every solver loop,
//!    so a stuck solve aborts typed (504) within the client's patience.
//! 4. **Panic isolation** — each request runs under `catch_unwind` on
//!    its connection thread, and the engine additionally catches worker
//!    panics per block; one poisoned spec answers 500 while the server
//!    keeps serving, and the solve cache drops only the panicked
//!    batch's generation.
//! 5. **Graceful shutdown** — on SIGTERM (or a programmatic
//!    [`ShutdownHandle`]): stop accepting, fail `/readyz`, drain
//!    in-flight solves, flush a final metrics scrape, dump the flight
//!    recorder if an incident was recorded.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rascad_core::Engine;
use rascad_obs::json::Value;

use crate::admission::{Admission, AdmissionConfig};
use crate::api::{self, ApiResponse};
use crate::http::{self, HttpError, HttpLimits, Request};
use crate::store::SpecStore;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Admission caps.
    pub admission: AdmissionConfig,
    /// Per-tenant stored-spec quota.
    pub max_specs_per_tenant: usize,
    /// HTTP byte caps and socket timeouts.
    pub limits: HttpLimits,
    /// How long shutdown waits for in-flight requests.
    pub drain_timeout: Duration,
    /// Where the final metrics scrape is written on shutdown (skipped
    /// when `None`).
    pub final_metrics_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            admission: AdmissionConfig::default(),
            max_specs_per_tenant: crate::store::DEFAULT_MAX_SPECS_PER_TENANT,
            limits: HttpLimits::default(),
            drain_timeout: Duration::from_secs(30),
            final_metrics_out: None,
        }
    }
}

/// Counters reported when [`Server::run`] returns.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that answered 5xx.
    pub failures: u64,
    /// Whether the drain finished inside the timeout.
    pub drained_clean: bool,
}

/// Clonable remote control for a running server; `shutdown()` is what
/// the SIGTERM handler (or a test) calls.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful shutdown; idempotent.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct Shared {
    engine: Engine,
    admission: Admission,
    store: SpecStore,
    limits: HttpLimits,
    shutdown: Arc<AtomicBool>,
    draining: AtomicBool,
    open_connections: std::sync::atomic::AtomicUsize,
    requests: AtomicU64,
    shed: AtomicU64,
    failures: AtomicU64,
}

/// The daemon. Bind, then [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state. The engine is
    /// created once and shared across every request, so its solve
    /// cache stays warm across requests and tenants.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // The service is metrics-first: make sure the registry is
        // accumulating even when the host process installed no sinks.
        // Installed only after a successful bind (install resets the
        // registry, and a failed bind must leave no global behind).
        if !rascad_obs::enabled() {
            rascad_obs::install(Vec::new());
        }
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            engine: Engine::new(),
            admission: Admission::new(cfg.admission.clone()),
            store: SpecStore::new(cfg.max_specs_per_tenant),
            limits: cfg.limits.clone(),
            shutdown: Arc::new(AtomicBool::new(false)),
            draining: AtomicBool::new(false),
            open_connections: std::sync::atomic::AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        });
        Ok(Server { listener, cfg, shared })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Server::run) from any thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shared.shutdown.clone())
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// run's summary. Connection threads are detached; the drain waits
    /// on the open-connection count, bounded by
    /// [`ServeConfig::drain_timeout`].
    #[must_use]
    pub fn run(&self) -> ServeSummary {
        rascad_obs::flight::arm();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = self.shared.clone();
                    shared.open_connections.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }

        // Drain: stop admitting (readyz now fails), wait for permits
        // and connections to clear, then flush telemetry.
        self.shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.cfg.drain_timeout;
        let mut drained_clean = self.shared.admission.drain(self.cfg.drain_timeout);
        while self.shared.open_connections.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                drained_clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        if let Some(path) = &self.cfg.final_metrics_out {
            let snap = rascad_obs::MetricsRegistry::global().snapshot();
            let page = rascad_obs::prometheus::encode(&snap);
            if let Err(e) = std::fs::write(path, page) {
                eprintln!("warning: cannot write final metrics scrape to {}: {e}", path.display());
            }
        }
        if rascad_obs::flight::has_incident() && rascad_obs::flight::events_recorded() {
            dump_flight("shutdown");
        }

        ServeSummary {
            requests: self.shared.requests.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            failures: self.shared.failures.load(Ordering::SeqCst),
            drained_clean,
        }
    }
}

/// Writes the flight rings next to the process (or `$RASCAD_FLIGHT_PATH`).
fn dump_flight(why: &str) {
    let path = std::env::var("RASCAD_FLIGHT_PATH")
        .unwrap_or_else(|_| format!("rascad-serve-flight-{}.jsonl", std::process::id()));
    match rascad_obs::flight::dump_to(std::path::Path::new(&path)) {
        Ok(events) => eprintln!("flight recorder ({why}): {events} event(s) written to {path}"),
        Err(e) => eprintln!("warning: cannot write flight recording to `{path}`: {e}"),
    }
}

/// Serves one connection: keep-alive loop of read → route → respond.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let req = match http::read_request(&mut stream, &shared.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                let (status, kind) = match &e {
                    HttpError::Timeout => (408, "timeout"),
                    HttpError::TooLarge { .. } => (413, "too-large"),
                    HttpError::Malformed(_) => (400, "bad-request"),
                    HttpError::Io(_) => return,
                };
                let resp = ApiResponse::error(status, kind, e.to_string());
                respond(&mut stream, shared, "malformed", &resp, true);
                return;
            }
        };
        let close = req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let started = Instant::now();

        // Panic isolation: a handler panic answers 500 and the
        // connection (and server) live on. The engine's own per-block
        // isolation catches worker-pool panics; this catches the rest.
        let route = route_name(&req);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| dispatch(&req, shared)))
            .unwrap_or_else(|_| {
                rascad_obs::incident("serve_handler_panic", route);
                ApiResponse::error(500, "panic", "request handler panicked")
            });

        let millis = started.elapsed().as_secs_f64() * 1e3;
        rascad_obs::record_value("serve.latency", millis);
        let alive = respond(&mut stream, shared, route, &outcome, close);
        // A 500 (panic, internal solver failure) is an incident worth a
        // post-mortem ring dump. A 504 is not: the client asked for the
        // deadline, so blowing it is an expected, typed outcome.
        if outcome.status == 500 && rascad_obs::flight::events_recorded() {
            dump_flight("incident");
        }
        if close || !alive {
            return;
        }
    }
}

/// Stable route label for metrics (bounded cardinality).
fn route_name(req: &Request) -> &'static str {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/specs") => "specs",
        ("POST", "/v1/solve") => "solve",
        ("POST", "/v1/sweep") => "sweep",
        ("POST", "/v1/lint") => "lint",
        ("GET", "/metrics") => "metrics",
        ("GET", "/healthz") => "healthz",
        ("GET", "/readyz") => "readyz",
        _ => "unknown",
    }
}

/// Routes one request to its handler.
fn dispatch(req: &Request, shared: &Shared) -> ApiResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ApiResponse::ok(Value::Str("ok".to_string())),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
                ApiResponse::error(503, "draining", "server is draining")
            } else {
                ApiResponse::ok(Value::Str("ready".to_string()))
            }
        }
        ("GET", "/metrics") => {
            let snap = rascad_obs::MetricsRegistry::global().snapshot();
            ApiResponse {
                status: 200,
                body: Value::Str(rascad_obs::prometheus::encode(&snap)),
                extra_headers: Vec::new(),
            }
        }
        ("POST", "/v1/specs" | "/v1/solve" | "/v1/sweep" | "/v1/lint") => {
            let body = match api::parse_body(&req.body) {
                Ok(v) => v,
                Err(r) => return r,
            };
            let tenant = api::tenant_of(&body);
            // Admission guards every /v1 POST: parsing above is cheap,
            // everything below can be expensive.
            let permit = match shared.admission.try_admit(&tenant) {
                Ok(p) => p,
                Err(reason) => {
                    return ApiResponse::shed(reason.as_str(), shared.admission.retry_after_secs());
                }
            };
            let resp = match req.path.as_str() {
                "/v1/specs" => api::put_spec(&body, &shared.store),
                "/v1/solve" => api::solve(&body, &shared.engine, &shared.store),
                "/v1/sweep" => api::sweep(&body, &shared.engine, &shared.store),
                _ => api::lint(&body),
            };
            drop(permit);
            resp
        }
        ("POST", _) | ("GET", _) => ApiResponse::error(
            404,
            "not-found",
            format!("no route for {} {}", req.method, req.path),
        ),
        _ => ApiResponse::error(405, "bad-request", format!("method {} not allowed", req.method)),
    }
}

/// Writes the response and records the request metrics. Returns
/// whether the connection is still usable.
fn respond(
    stream: &mut TcpStream,
    shared: &Shared,
    route: &'static str,
    resp: &ApiResponse,
    close: bool,
) -> bool {
    shared.requests.fetch_add(1, Ordering::SeqCst);
    if resp.status == 429 {
        shared.shed.fetch_add(1, Ordering::SeqCst);
    }
    if resp.status >= 500 {
        shared.failures.fetch_add(1, Ordering::SeqCst);
    }
    let status_str = resp.status.to_string();
    rascad_obs::counter_with("serve.requests", &[("route", route), ("status", &status_str)], 1);

    // /metrics answers text/plain (the exposition format), everything
    // else JSON.
    let (content_type, body_text) = match &resp.body {
        Value::Str(page) if route == "metrics" => ("text/plain; version=0.0.4", page.clone()),
        v => ("application/json", {
            let mut t = v.to_string_compact();
            t.push('\n');
            t
        }),
    };
    stream.set_write_timeout(Some(shared.limits.write_timeout)).ok();
    http::write_response(stream, resp.status, content_type, &resp.extra_headers, &body_text, close)
        .is_ok()
}

/// SIGTERM/SIGINT wiring: a hand-rolled handler flips a static flag
/// (the only async-signal-safe thing to do); a watcher thread folds it
/// into the server's [`ShutdownHandle`].
#[cfg(unix)]
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_terminate(_sig: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs SIGTERM/SIGINT handlers and spawns a watcher thread
    /// that triggers the handle when either fires.
    pub fn install(handle: super::ShutdownHandle) {
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
        std::thread::spawn(move || {
            while !TERMINATED.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
                if handle.is_shutting_down() {
                    return;
                }
            }
            handle.shutdown();
        });
    }
}

/// Non-unix builds: no signal wiring; shutdown is programmatic only.
#[cfg(not(unix))]
pub mod signal {
    /// No-op on this platform.
    pub fn install(_handle: super::ShutdownHandle) {}
}
