//! Multi-tenant in-memory spec store.
//!
//! `POST /v1/specs` parses and validates once at admission; solves then
//! reference the stored, known-good spec by `(tenant, name)`. The store
//! is bounded per tenant so a misbehaving client cannot grow the
//! daemon's memory without limit.

use std::collections::HashMap;
use std::sync::Mutex;

use rascad_spec::SystemSpec;

/// Default per-tenant spec quota.
pub const DEFAULT_MAX_SPECS_PER_TENANT: usize = 64;

/// Why a spec could not be stored.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The tenant is at its quota and `name` is not an overwrite.
    QuotaExhausted { limit: usize },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::QuotaExhausted { limit } => {
                write!(f, "tenant spec quota exhausted ({limit} specs)")
            }
        }
    }
}

/// The store. One per server; interior mutability behind a mutex (spec
/// payloads are small and reads clone, so contention is negligible
/// next to a solve).
pub struct SpecStore {
    max_per_tenant: usize,
    specs: Mutex<HashMap<String, HashMap<String, SystemSpec>>>,
}

impl SpecStore {
    #[must_use]
    pub fn new(max_per_tenant: usize) -> SpecStore {
        SpecStore { max_per_tenant, specs: Mutex::new(HashMap::new()) }
    }

    /// Stores (or overwrites) `name` for `tenant`.
    ///
    /// # Errors
    ///
    /// [`StoreError::QuotaExhausted`] when the tenant is at quota and
    /// `name` is new.
    pub fn put(&self, tenant: &str, name: &str, spec: SystemSpec) -> Result<(), StoreError> {
        let mut specs = self.specs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let shelf = specs.entry(tenant.to_string()).or_default();
        if shelf.len() >= self.max_per_tenant && !shelf.contains_key(name) {
            return Err(StoreError::QuotaExhausted { limit: self.max_per_tenant });
        }
        shelf.insert(name.to_string(), spec);
        Ok(())
    }

    /// Fetches a clone of `(tenant, name)`, if stored.
    #[must_use]
    pub fn get(&self, tenant: &str, name: &str) -> Option<SystemSpec> {
        self.specs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(tenant)
            .and_then(|shelf| shelf.get(name))
            .cloned()
    }

    /// Total stored specs across tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(HashMap::len)
            .sum()
    }

    /// Whether the store holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpecStore {
    fn default() -> Self {
        SpecStore::new(DEFAULT_MAX_SPECS_PER_TENANT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn spec(name: &str) -> SystemSpec {
        let mut root = Diagram::new(name);
        root.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(10_000.0)));
        SystemSpec::new(root, GlobalParams::default())
    }

    #[test]
    fn tenants_are_isolated() {
        let store = SpecStore::default();
        store.put("t1", "s", spec("One")).unwrap();
        store.put("t2", "s", spec("Two")).unwrap();
        assert_eq!(store.get("t1", "s").unwrap().root.name, "One");
        assert_eq!(store.get("t2", "s").unwrap().root.name, "Two");
        assert!(store.get("t3", "s").is_none());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn quota_blocks_new_names_but_allows_overwrites() {
        let store = SpecStore::new(2);
        store.put("t", "a", spec("A")).unwrap();
        store.put("t", "b", spec("B")).unwrap();
        assert_eq!(
            store.put("t", "c", spec("C")).unwrap_err(),
            StoreError::QuotaExhausted { limit: 2 }
        );
        // Overwriting an existing name is always allowed.
        store.put("t", "a", spec("A2")).unwrap();
        assert_eq!(store.get("t", "a").unwrap().root.name, "A2");
        // Another tenant has its own quota.
        store.put("u", "c", spec("C")).unwrap();
    }
}
