//! `rascad-serve` — a dependency-free HTTP/1.1 + JSON daemon over the
//! RAScad solve pipeline.
//!
//! The paper's tool ran as a long-lived service behind a GUI; this
//! crate reproduces that deployment shape with robustness as the
//! design center. Everything is hand-rolled on `std::net` — no tokio,
//! no hyper, no serde — because the build environment is offline and
//! because every robustness property (timeouts, byte caps, admission,
//! cancellation, panic isolation, drain) is easier to certify when the
//! whole stack is a few small modules in this crate.
//!
//! # Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/specs` | POST | store a validated spec for a tenant |
//! | `/v1/solve` | POST | solve (stored or inline spec), deadline-aware |
//! | `/v1/sweep` | POST | parametric sweep |
//! | `/v1/lint` | POST | static analysis, JSON findings |
//! | `/metrics` | GET | Prometheus exposition page |
//! | `/healthz` | GET | liveness |
//! | `/readyz` | GET | readiness (503 while draining) |
//!
//! See [`server`] for the request lifecycle and the robustness
//! properties in order, [`admission`] for load shedding, and [`api`]
//! for the typed error vocabulary.

pub mod admission;
pub mod api;
pub mod http;
pub mod server;
pub mod store;

pub use admission::{Admission, AdmissionConfig, ShedReason};
pub use api::ApiResponse;
pub use http::HttpLimits;
pub use server::{ServeConfig, ServeSummary, Server, ShutdownHandle};
pub use store::SpecStore;
