//! Bounded admission with per-tenant concurrency limits.
//!
//! The service sheds load at the front door instead of queueing
//! unboundedly: a request is either admitted (and holds an RAII
//! [`Permit`] for its whole execution) or rejected immediately with a
//! `Retry-After` hint. Two caps apply — a global in-flight ceiling
//! protecting the worker pool, and a per-tenant ceiling so one noisy
//! tenant cannot starve the rest.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission caps.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Global in-flight ceiling across all tenants.
    pub max_inflight: usize,
    /// Per-tenant in-flight ceiling.
    pub max_per_tenant: usize,
    /// `Retry-After` seconds suggested on shed responses.
    pub retry_after_secs: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_inflight: 8, max_per_tenant: 4, retry_after_secs: 1 }
    }
}

#[derive(Default)]
struct Counts {
    total: usize,
    per_tenant: HashMap<String, usize>,
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global in-flight ceiling is reached.
    QueueFull,
    /// This tenant is at its concurrency cap.
    TenantLimit,
}

impl ShedReason {
    /// Stable label used in error bodies and metrics.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantLimit => "tenant-limit",
        }
    }
}

/// The admission gate. One per server.
pub struct Admission {
    cfg: AdmissionConfig,
    counts: Mutex<Counts>,
    drained: Condvar,
}

impl Admission {
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission { cfg, counts: Mutex::new(Counts::default()), drained: Condvar::new() }
    }

    /// Suggested `Retry-After` value for shed responses.
    #[must_use]
    pub fn retry_after_secs(&self) -> u64 {
        self.cfg.retry_after_secs
    }

    /// Admits or sheds. On success the returned [`Permit`] holds the
    /// slot until dropped; on shed the caller answers 429 immediately
    /// — there is no waiting queue to go stale in.
    ///
    /// # Errors
    ///
    /// [`ShedReason`] when a ceiling is hit; `serve.shed` is counted.
    pub fn try_admit(&self, tenant: &str) -> Result<Permit<'_>, ShedReason> {
        let mut c = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let reason = if c.total >= self.cfg.max_inflight {
            Some(ShedReason::QueueFull)
        } else if c.per_tenant.get(tenant).copied().unwrap_or(0) >= self.cfg.max_per_tenant {
            Some(ShedReason::TenantLimit)
        } else {
            None
        };
        if let Some(reason) = reason {
            rascad_obs::counter("serve.shed", 1);
            return Err(reason);
        }
        c.total += 1;
        *c.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        #[allow(clippy::cast_precision_loss)]
        rascad_obs::gauge_set("serve.inflight", &[], c.total as f64);
        Ok(Permit { gate: self, tenant: tenant.to_string() })
    }

    /// Requests currently holding permits.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner).total
    }

    /// Blocks until every permit is returned or the timeout elapses.
    /// Returns whether the gate fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut c = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while c.total > 0 {
            let Some(left) =
                deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _timed_out) = self
                .drained
                .wait_timeout(c, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c = guard;
        }
        true
    }

    fn release(&self, tenant: &str) {
        let mut c = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        c.total = c.total.saturating_sub(1);
        if let Some(n) = c.per_tenant.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                c.per_tenant.remove(tenant);
            }
        }
        #[allow(clippy::cast_precision_loss)]
        rascad_obs::gauge_set("serve.inflight", &[], c.total as f64);
        if c.total == 0 {
            self.drained.notify_all();
        }
    }
}

/// RAII admission slot: dropping it — on any path, including a panic
/// unwinding through the handler — returns the slot and wakes drainers.
pub struct Permit<'a> {
    gate: &'a Admission,
    tenant: String,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").field("tenant", &self.tenant).finish_non_exhaustive()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max_inflight: usize, max_per_tenant: usize) -> Admission {
        Admission::new(AdmissionConfig { max_inflight, max_per_tenant, retry_after_secs: 1 })
    }

    #[test]
    fn global_ceiling_sheds_with_queue_full() {
        let g = gate(2, 2);
        let _a = g.try_admit("t1").unwrap();
        let _b = g.try_admit("t2").unwrap();
        assert_eq!(g.try_admit("t3").unwrap_err(), ShedReason::QueueFull);
        assert_eq!(g.inflight(), 2);
    }

    #[test]
    fn tenant_ceiling_sheds_only_that_tenant() {
        let g = gate(8, 1);
        let _a = g.try_admit("noisy").unwrap();
        assert_eq!(g.try_admit("noisy").unwrap_err(), ShedReason::TenantLimit);
        // Another tenant still gets in.
        let _b = g.try_admit("quiet").unwrap();
        assert_eq!(g.inflight(), 2);
    }

    #[test]
    fn dropping_a_permit_frees_the_slot() {
        let g = gate(1, 1);
        let a = g.try_admit("t").unwrap();
        assert!(g.try_admit("t").is_err());
        drop(a);
        assert_eq!(g.inflight(), 0);
        let _b = g.try_admit("t").unwrap();
    }

    #[test]
    fn permits_release_even_when_the_holder_panics() {
        let g = std::sync::Arc::new(gate(1, 1));
        let g2 = g.clone();
        let worker = std::thread::spawn(move || {
            let _p = g2.try_admit("t").unwrap();
            panic!("boom");
        });
        assert!(worker.join().is_err());
        assert_eq!(g.inflight(), 0, "unwind must return the permit");
    }

    #[test]
    fn drain_waits_for_inflight_and_times_out_honestly() {
        let g = std::sync::Arc::new(gate(4, 4));
        let g2 = g.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let holder = std::thread::spawn(move || {
            let _p = g2.try_admit("t").unwrap();
            tx.send(()).unwrap();
            std::thread::sleep(Duration::from_millis(80));
        });
        rx.recv().unwrap();
        assert!(!g.drain(Duration::from_millis(10)), "held permit must block the drain");
        assert!(g.drain(Duration::from_secs(5)), "released permit must unblock the drain");
        holder.join().unwrap();
    }
}
