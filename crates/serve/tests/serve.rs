//! Live-server integration suite: the full request lifecycle over real
//! sockets — store/solve/sweep/lint, health, metrics, shedding,
//! deadlines, malformed input, and graceful drain.

mod common;

use std::time::Duration;

use common::{escape, header, request, spec_dsl, TestServer};
use rascad_obs::json;
use rascad_serve::{AdmissionConfig, ServeConfig};

fn default_server() -> TestServer {
    TestServer::start(ServeConfig::default())
}

#[test]
fn health_ready_and_unknown_routes() {
    let srv = default_server();
    let (status, _, _) = request(srv.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _, _) = request(srv.addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    let (status, _, body) = request(srv.addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    assert!(body.contains("not-found"), "{body}");
    let (status, _, _) = request(srv.addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
}

#[test]
fn store_solve_and_sweep_round_trip() {
    let srv = default_server();
    let spec = escape(&spec_dsl());

    let (status, _, body) = request(
        srv.addr,
        "POST",
        "/v1/specs",
        &format!(r#"{{"tenant":"acme","name":"web","spec":"{spec}"}}"#),
    );
    assert_eq!(status, 201, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("blocks").unwrap().as_i64(), Some(2));

    let (status, _, body) =
        request(srv.addr, "POST", "/v1/solve", r#"{"tenant":"acme","spec_name":"web"}"#);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let avail = v.get("system").unwrap().get("availability").unwrap().as_f64().unwrap();
    assert!(avail > 0.999 && avail <= 1.0, "{avail}");
    let blocks = v.get("blocks").unwrap().as_array().unwrap();
    assert_eq!(blocks.len(), 2);
    assert!(blocks
        .iter()
        .all(|b| { b.get("certificate").unwrap().get("verdict").unwrap().as_str() == Some("ok") }));

    // Tenant isolation: the other tenant cannot see the spec.
    let (status, _, _) =
        request(srv.addr, "POST", "/v1/solve", r#"{"tenant":"evil","spec_name":"web"}"#);
    assert_eq!(status, 404);

    let (status, _, body) = request(
        srv.addr,
        "POST",
        "/v1/sweep",
        &format!(
            r#"{{"spec":"{spec}","block":"A","param":"mtbf","from":5000,"to":50000,"points":4}}"#
        ),
    );
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("points").unwrap().as_array().unwrap().len(), 4);
}

#[test]
fn lint_and_malformed_bodies() {
    let srv = default_server();
    let spec = escape(&spec_dsl());
    let (status, _, body) =
        request(srv.addr, "POST", "/v1/lint", &format!(r#"{{"spec":"{spec}"}}"#));
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("blocking").unwrap().as_bool(), Some(false));

    // Typed 400s: non-JSON, non-object, bad spec text.
    for bad in ["this is not json", "[1,2,3]", r#"{"spec":"diagram \"X\" {"}"#] {
        let (status, _, body) = request(srv.addr, "POST", "/v1/solve", bad);
        assert_eq!(status, 400, "{bad} -> {body}");
        let v = json::parse(&body).unwrap();
        assert!(v.get("error").unwrap().get("kind").unwrap().as_str().is_some(), "{body}");
    }
}

#[test]
fn identical_requests_are_bit_identical_responses() {
    let srv = default_server();
    let spec = escape(&spec_dsl());
    let body_req = format!(r#"{{"spec":"{spec}"}}"#);
    let (s1, _, b1) = request(srv.addr, "POST", "/v1/solve", &body_req);
    let (s2, _, b2) = request(srv.addr, "POST", "/v1/solve", &body_req);
    assert_eq!(s1, 200);
    assert_eq!((s1, b1), (s2, b2), "same request must produce byte-identical bodies");
}

#[test]
fn admission_sheds_with_retry_after_when_full() {
    // A server whose whole capacity is one in-flight request.
    let srv = TestServer::start(ServeConfig {
        admission: AdmissionConfig { max_inflight: 1, max_per_tenant: 1, retry_after_secs: 7 },
        ..ServeConfig::default()
    });
    let spec = escape(&spec_dsl());

    // Fill the slot with a big chain bounded by a 3 s deadline: the
    // cancellation machinery keeps the slot busy for a deterministic
    // window, then returns a typed 504 — no dependence on raw solver
    // speed in debug builds.
    let addr = srv.addr;
    let big = escape(&spec_dsl().replace("quantity = 2", "quantity = 100000"));
    let holder = std::thread::spawn(move || {
        request(addr, "POST", "/v1/solve", &format!(r#"{{"spec":"{big}","deadline_ms":3000}}"#))
    });
    std::thread::sleep(Duration::from_millis(300));

    // …then watch the next request shed 429 with the hint.
    let mut sheds = 0;
    for _ in 0..20 {
        let (status, headers, body) =
            request(srv.addr, "POST", "/v1/solve", &format!(r#"{{"spec":"{spec}"}}"#));
        if status == 429 {
            assert_eq!(header(&headers, "retry-after"), Some("7"), "{body}");
            assert!(body.contains("shed"), "{body}");
            sheds += 1;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (holder_status, _, holder_body) = holder.join().unwrap();
    assert_eq!(holder_status, 504, "holder must finish typed: {holder_body}");
    assert!(sheds > 0, "the slot was held ~3 s; a concurrent request must shed");
}

#[test]
fn deadline_on_a_large_chain_is_a_typed_504_within_twice_the_budget() {
    let srv = default_server();
    // quantity = 100000 with redundancy expands birth-death style to a
    // ~10^5-state chain: seconds of sparse solve, far beyond 50 ms.
    let big = escape(&spec_dsl().replace("quantity = 2", "quantity = 100000"));
    let started = std::time::Instant::now();
    let (status, _, body) =
        request(srv.addr, "POST", "/v1/solve", &format!(r#"{{"spec":"{big}","deadline_ms":50}}"#));
    let elapsed = started.elapsed();
    assert_eq!(status, 504, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("deadline"));
    // "within 2× deadline" for the solver abort; generous socket slack
    // on top keeps this robust on loaded CI machines.
    assert!(
        elapsed < Duration::from_millis(2000),
        "cancellation must abort promptly, took {elapsed:?}"
    );

    // Concurrent requests with sane budgets still finish.
    let spec = escape(&spec_dsl());
    let (status, _, body) =
        request(srv.addr, "POST", "/v1/solve", &format!(r#"{{"spec":"{spec}"}}"#));
    assert_eq!(status, 200, "{body}");
}

#[test]
fn metrics_page_validates_and_counts_requests() {
    let srv = default_server();
    let spec = escape(&spec_dsl());
    let (status, _, _) = request(srv.addr, "POST", "/v1/solve", &format!(r#"{{"spec":"{spec}"}}"#));
    assert_eq!(status, 200);
    let (status, headers, page) = request(srv.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type").unwrap().starts_with("text/plain"));
    rascad_obs::prometheus::validate(&page).expect("scrape page must be exposition-valid");
    assert!(page.contains("serve_requests"), "{page}");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let srv = TestServer::start(ServeConfig::default());
    let addr = srv.addr;
    // An in-flight request with a deterministic ~1.5 s runtime: a big
    // chain under a best-effort deadline degrades to a 200 instead of
    // depending on debug-build solver speed.
    let big = escape(&spec_dsl().replace("quantity = 2", "quantity = 100000"));
    let inflight = std::thread::spawn(move || {
        request(
            addr,
            "POST",
            "/v1/solve",
            &format!(r#"{{"spec":"{big}","deadline_ms":1500,"best_effort":true}}"#),
        )
    });
    std::thread::sleep(Duration::from_millis(300));
    let summary = srv.stop();
    let (status, _, body) = inflight.join().unwrap();
    assert_eq!(status, 200, "in-flight solve must complete through the drain: {body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true), "{body}");
    assert!(summary.drained_clean, "{summary:?}");
    assert!(summary.requests >= 1);
}
