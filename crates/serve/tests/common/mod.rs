//! Shared test harness: start a real server on a free port, speak
//! HTTP/1.1 to it over a plain socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rascad_serve::{ServeConfig, Server, ShutdownHandle};

/// A running server plus the bits tests need to drive and stop it.
pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ShutdownHandle,
    runner: Option<std::thread::JoinHandle<rascad_serve::ServeSummary>>,
}

impl TestServer {
    /// Binds on a free port and serves on a background thread.
    pub fn start(cfg: ServeConfig) -> TestServer {
        let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..cfg };
        let server = Server::bind(cfg).expect("bind 127.0.0.1:0");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let runner = std::thread::spawn(move || server.run());
        TestServer { addr, handle, runner: Some(runner) }
    }

    /// Graceful shutdown; returns the run summary.
    pub fn stop(mut self) -> rascad_serve::ServeSummary {
        self.handle.shutdown();
        self.runner.take().unwrap().join().expect("server thread")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(r) = self.runner.take() {
            r.join().ok();
        }
    }
}

/// One HTTP exchange on a fresh connection. Returns status, headers
/// (lower-cased names), body.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into status, headers, body.
pub fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, String) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).expect("status code").parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// Header lookup by lower-case name.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// A tiny two-block spec, JSON-escaped into a `/v1/specs` body.
pub fn spec_dsl() -> String {
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};
    let mut root = Diagram::new("SrvSpec");
    root.push(BlockParams::new("A", 2, 1).with_mtbf(Hours(10_000.0)));
    root.push(BlockParams::new("B", 1, 1).with_mtbf(Hours(50_000.0)));
    SystemSpec::new(root, GlobalParams::default()).to_dsl()
}

/// JSON-string-escapes a DSL payload for embedding in a body.
pub fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}
