//! Chaos suite for the live daemon: a fault plan is installed in the
//! server process, then real HTTP requests drive the injected panics,
//! forced timeouts, and delays. Requires the `fault-inject` feature.

mod common;

use std::time::{Duration, Instant};

use common::{escape, request, spec_dsl, TestServer};
use rascad_fault::{FaultKind, FaultPlan, PlanGuard};
use rascad_obs::json;
use rascad_serve::ServeConfig;

/// The fault registry is process-global; serialize plan installs.
static PLAN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn solve_body() -> String {
    format!(r#"{{"spec":"{}"}}"#, escape(&spec_dsl()))
}

#[test]
fn injected_worker_panic_is_a_typed_500_and_the_server_keeps_serving() {
    let _l = lock();
    let flight =
        std::env::temp_dir().join(format!("rascad-serve-chaos-{}.jsonl", std::process::id()));
    std::env::set_var("RASCAD_FLIGHT_PATH", &flight);
    std::fs::remove_file(&flight).ok();
    let srv = TestServer::start(ServeConfig::default());

    // Clean baseline response, bit-for-bit reference.
    let (status, _, clean) = request(srv.addr, "POST", "/v1/solve", &solve_body());
    assert_eq!(status, 200, "{clean}");

    // Panic injection on block B: typed 500, kind "panic".
    {
        let _g = PlanGuard::install(FaultPlan::single("SrvSpec/B", FaultKind::Panic));
        let (status, _, body) = request(srv.addr, "POST", "/v1/solve", &solve_body());
        assert_eq!(status, 500, "{body}");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("panic"));
    }

    // The incident dumped the flight recorder.
    assert!(flight.exists(), "a 500 must dump the flight rings to {}", flight.display());

    // Uninjected requests after the incident are bit-identical to the
    // pre-incident reference: no poisoned cache, no leaked state.
    let (status, _, after) = request(srv.addr, "POST", "/v1/solve", &solve_body());
    assert_eq!(status, 200);
    assert_eq!(after, clean, "post-incident response must match the pre-incident bytes");

    let summary = srv.stop();
    assert!(summary.failures >= 1);
    assert!(summary.drained_clean);
    std::fs::remove_file(&flight).ok();
}

#[test]
fn injected_timeout_maps_to_the_deadline_error_family() {
    let _l = lock();
    let srv = TestServer::start(ServeConfig::default());
    let _g = PlanGuard::install(FaultPlan::single("SrvSpec/A", FaultKind::Timeout));
    let (status, _, body) = request(srv.addr, "POST", "/v1/solve", &solve_body());
    // A forced solver timeout exhausts the ladder with timeouts on
    // every rung — the API reports that as the typed deadline family.
    assert_eq!(status, 504, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("deadline"));
}

#[test]
fn injected_delay_stalls_but_answers_correctly_and_best_effort_degrades() {
    let _l = lock();
    let srv = TestServer::start(ServeConfig::default());

    let (status, _, clean) = request(srv.addr, "POST", "/v1/solve", &solve_body());
    assert_eq!(status, 200);

    // Delay on A: the request stalls at least the seeded 10+ ms but
    // succeeds with the identical numbers.
    {
        let _g = PlanGuard::install(FaultPlan::single("SrvSpec/A", FaultKind::Delay));
        let t0 = Instant::now();
        let (status, _, body) = request(srv.addr, "POST", "/v1/solve", &solve_body());
        assert_eq!(status, 200, "{body}");
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(body, clean, "a stall must not change the numbers");
        let fired = rascad_fault::fired();
        assert!(fired.iter().any(|(p, k)| p == "SrvSpec/A" && *k == FaultKind::Delay), "{fired:?}");
    }

    // Best-effort under a NotConverged fault: 200 with degraded=true,
    // availability bounds, and the failed block listed.
    {
        let _g = PlanGuard::install(FaultPlan::single("SrvSpec/B", FaultKind::NotConverged));
        let (status, _, body) = request(
            srv.addr,
            "POST",
            "/v1/solve",
            &format!(r#"{{"spec":"{}","best_effort":true}}"#, escape(&spec_dsl())),
        );
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        let bounds = v.get("availability_bounds").unwrap().as_array().unwrap();
        assert_eq!(bounds.len(), 2);
        assert!(bounds[0].as_f64().unwrap() <= bounds[1].as_f64().unwrap());
        let failed = v.get("failed").unwrap().as_array().unwrap();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].get("path").unwrap().as_str(), Some("SrvSpec/B"));
    }
}
