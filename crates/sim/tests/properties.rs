//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the simulation crate.

use proptest::prelude::*;
use rascad_sim::ctmc_sim::{simulate_availability, SimOptions};
use rascad_sim::EventLog;

use rascad_markov::{Ctmc, CtmcBuilder};

/// Random irreducible chain (ring + extras), as in the markov tests.
fn arb_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..6).prop_flat_map(|n| {
        let ring = proptest::collection::vec(0.01..5.0f64, n);
        let rewards = proptest::collection::vec(prop_oneof![Just(0.0), Just(1.0)], n);
        (Just(n), ring, rewards).prop_map(|(n, ring, rewards)| {
            let mut b = CtmcBuilder::new();
            for (i, r) in rewards.iter().enumerate() {
                b.add_state(format!("s{i}"), *r);
            }
            for (i, &rate) in ring.iter().enumerate() {
                b.add_transition(i, (i + 1) % n, rate);
            }
            b.build().expect("valid chain")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulated availability is always a probability and deterministic
    /// under a fixed seed.
    #[test]
    fn simulation_is_bounded_and_reproducible(chain in arb_chain(), seed in 0u64..1000) {
        let opts = SimOptions { horizon_hours: 500.0, replications: 4, seed };
        let a = simulate_availability(&chain, &opts);
        prop_assert!((0.0..=1.0).contains(&a.mean), "mean {}", a.mean);
        prop_assert!(a.ci_half_width >= 0.0);
        let b = simulate_availability(&chain, &opts);
        prop_assert_eq!(a, b);
    }

    /// Different seeds give (generally) different trajectories but stay
    /// bounded.
    #[test]
    fn seeds_change_results(chain in arb_chain()) {
        let a = simulate_availability(
            &chain,
            &SimOptions { horizon_hours: 300.0, replications: 2, seed: 1 },
        );
        let b = simulate_availability(
            &chain,
            &SimOptions { horizon_hours: 300.0, replications: 2, seed: 2 },
        );
        prop_assert!((0.0..=1.0).contains(&a.mean) && (0.0..=1.0).contains(&b.mean));
    }
}

proptest! {
    /// EventLog downtime accounting is consistent with the generating
    /// intervals, whatever their overlap pattern.
    #[test]
    fn event_log_accounting_is_consistent(
        raw in proptest::collection::vec((0.0..90.0f64, 0.1..10.0f64), 0..12)
    ) {
        // Build non-overlapping sorted down intervals by merging raw ones.
        let horizon = 100.0;
        let mut intervals: Vec<(f64, f64)> =
            raw.iter().map(|&(s, d)| (s, (s + d).min(horizon))).collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s, e) in intervals {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = le.max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut log = EventLog::new(horizon);
        let mut expect = 0.0;
        for &(s, e) in &merged {
            log.push(s, false);
            if e < horizon {
                log.push(e, true);
            }
            expect += e - s;
        }
        prop_assert!((log.downtime_hours() - expect).abs() < 1e-9);
        prop_assert!((log.availability() - (1.0 - expect / horizon)).abs() < 1e-9);
        prop_assert_eq!(log.outage_count(), merged.len());
    }
}
