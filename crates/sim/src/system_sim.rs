//! Whole-system simulation of a specification.
//!
//! Generates every block chain in the hierarchy (via `rascad-core`),
//! simulates each independently, and merges the per-block down
//! intervals: the system is down whenever any block is down (the serial
//! RBD of the paper's Section 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rascad_core::generator::generate_block;
use rascad_core::CoreError;
use rascad_markov::Ctmc;
use rascad_spec::{Block, Diagram, SystemSpec};

use crate::ctmc_sim::sample_exp;
use crate::events::EventLog;
use crate::stats::Estimate;

/// Options for a system simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemSimOptions {
    /// Simulated operation time per replication, hours.
    pub horizon_hours: f64,
    /// Number of replications for the availability estimate.
    pub replications: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// If true, down-state sojourns are deterministic at their mean
    /// (non-exponential repair/logistic times), producing more realistic
    /// field data while leaving steady-state availability unchanged.
    pub deterministic_repairs: bool,
}

impl Default for SystemSimOptions {
    fn default() -> Self {
        SystemSimOptions {
            horizon_hours: 100_000.0,
            replications: 16,
            seed: 0xface,
            deterministic_repairs: false,
        }
    }
}

/// Result of a system simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSimResult {
    /// Availability estimate across replications.
    pub availability: Estimate,
    /// Up/down event log of the first replication.
    pub example_log: EventLog,
}

/// Simulates a full specification.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid or chain generation
/// fails.
pub fn simulate_system(
    spec: &SystemSpec,
    opts: &SystemSimOptions,
) -> Result<SystemSimResult, CoreError> {
    spec.validate()?;
    let mut chains = Vec::new();
    collect_chains(spec, &spec.root, &mut chains)?;

    let mut span = rascad_obs::span("sim.system");
    span.record("chains", chains.len());
    span.record("replications", opts.replications);
    span.record("horizon_hours", opts.horizon_hours);
    let mut samples = Vec::with_capacity(opts.replications);
    let mut example_log = None;
    for r in 0..opts.replications {
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(r as u64 * 0x9e37_79b9));
        let log = simulate_chains(&chains, opts, &mut rng);
        samples.push(log.availability());
        if r == 0 {
            example_log = Some(log);
        }
    }
    rascad_obs::counter("sim.replications", opts.replications as u64);
    let availability = Estimate::from_samples(&samples);
    rascad_obs::record_value("sim.availability", availability.mean);
    span.record("mean", availability.mean);
    span.record("ci_half_width", availability.ci_half_width);
    Ok(SystemSimResult {
        availability,
        example_log: example_log.expect("at least one replication"),
    })
}

/// Simulates one trajectory of the given chains and merges their down
/// intervals into a system event log.
pub(crate) fn simulate_chains(
    chains: &[Ctmc],
    opts: &SystemSimOptions,
    rng: &mut StdRng,
) -> EventLog {
    let horizon = opts.horizon_hours;
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for chain in chains {
        trajectory_down_intervals(chain, horizon, opts.deterministic_repairs, rng, &mut intervals);
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Union the intervals into an event log.
    let mut log = EventLog::new(horizon);
    let mut current: Option<(f64, f64)> = None;
    for (start, end) in intervals {
        match current {
            None => current = Some((start, end)),
            Some((s, e)) => {
                if start <= e {
                    current = Some((s, e.max(end)));
                } else {
                    log.push(s, false);
                    log.push(e, true);
                    current = Some((start, end));
                }
            }
        }
    }
    if let Some((s, e)) = current {
        log.push(s, false);
        if e < horizon {
            log.push(e, true);
        }
    }
    log
}

/// Collects the down intervals of one chain trajectory.
fn trajectory_down_intervals(
    chain: &Ctmc,
    horizon: f64,
    deterministic_repairs: bool,
    rng: &mut StdRng,
    out: &mut Vec<(f64, f64)>,
) {
    // Build per-state exit tables.
    let n = chain.len();
    let mut totals = vec![0.0f64; n];
    let mut rows: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
    for t in chain.transitions() {
        totals[t.from] += t.rate;
        rows[t.from].push((totals[t.from], t.to));
    }
    let rewards = chain.rewards();

    let mut t = 0.0;
    let mut state = 0usize;
    let mut down_since: Option<f64> = None;
    // Tallied locally; one counter update per trajectory keeps the hot
    // loop free of tracing overhead.
    let mut events: u64 = 0;
    while t < horizon {
        let total = totals[state];
        if total <= 0.0 {
            break; // absorbing
        }
        events += 1;
        let sojourn = if deterministic_repairs && rewards[state] == 0.0 {
            1.0 / total
        } else {
            sample_exp(total, rng)
        };
        let next = {
            let u: f64 = rng.gen::<f64>() * total;
            let idx = rows[state].partition_point(|&(acc, _)| acc < u);
            rows[state][idx.min(rows[state].len() - 1)].1
        };
        let t_next = (t + sojourn).min(horizon);
        let was_up = rewards[state] > 0.0;
        let now_up = rewards[next] > 0.0;
        if was_up && !now_up && t_next < horizon {
            down_since = Some(t_next);
        } else if !was_up && now_up {
            if let Some(s) = down_since.take() {
                out.push((s, t_next.min(horizon)));
            }
        }
        t += sojourn;
        state = next;
    }
    if let Some(s) = down_since {
        out.push((s, horizon));
    }
    rascad_obs::counter("sim.events", events);
}

fn collect_chains(
    spec: &SystemSpec,
    diagram: &Diagram,
    out: &mut Vec<Ctmc>,
) -> Result<(), CoreError> {
    for block in &diagram.blocks {
        collect_block(spec, block, out)?;
    }
    Ok(())
}

fn collect_block(spec: &SystemSpec, block: &Block, out: &mut Vec<Ctmc>) -> Result<(), CoreError> {
    let model = generate_block(&block.params, &spec.globals)?;
    out.push(model.chain);
    if let Some(sub) = &block.subdiagram {
        collect_chains(spec, sub, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_spec;
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{BlockParams, GlobalParams};

    fn spec() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(
            BlockParams::new("A", 1, 1)
                .with_mtbf(Hours(2_000.0))
                .with_mttr_parts(Minutes(60.0), Minutes(30.0), Minutes(30.0))
                .with_service_response(Hours(2.0)),
        );
        d.push(BlockParams::new("B", 2, 1).with_mtbf(Hours(5_000.0)));
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn simulation_brackets_analytic_availability() {
        let s = spec();
        let analytic = solve_spec(&s).unwrap().system.availability;
        let result = simulate_system(
            &s,
            &SystemSimOptions {
                horizon_hours: 50_000.0,
                replications: 32,
                seed: 11,
                deterministic_repairs: false,
            },
        )
        .unwrap();
        let est = result.availability;
        assert!(
            (est.mean - analytic).abs() < 4.0 * est.ci_half_width.max(1e-5),
            "sim {} ± {} vs analytic {analytic}",
            est.mean,
            est.ci_half_width
        );
    }

    #[test]
    fn deterministic_repairs_preserve_mean_availability() {
        // Availability depends only on sojourn means, so the
        // deterministic-repair variant must agree with the analytic
        // value too.
        let s = spec();
        let analytic = solve_spec(&s).unwrap().system.availability;
        let result = simulate_system(
            &s,
            &SystemSimOptions {
                horizon_hours: 50_000.0,
                replications: 32,
                seed: 13,
                deterministic_repairs: true,
            },
        )
        .unwrap();
        let est = result.availability;
        assert!(
            (est.mean - analytic).abs() < 4.0 * est.ci_half_width.max(1e-5),
            "sim {} ± {} vs analytic {analytic}",
            est.mean,
            est.ci_half_width
        );
    }

    #[test]
    fn event_log_is_consistent() {
        let s = spec();
        let result = simulate_system(
            &s,
            &SystemSimOptions {
                horizon_hours: 20_000.0,
                replications: 1,
                seed: 5,
                deterministic_repairs: false,
            },
        )
        .unwrap();
        let log = &result.example_log;
        assert!(log.outage_count() > 0, "expected some outages in 20k hours");
        assert!(log.availability() > 0.9 && log.availability() <= 1.0);
        // Events alternate down/up.
        let mut expect_down = true;
        for e in &log.events {
            assert_eq!(!e.up, expect_down);
            expect_down = !expect_down;
        }
    }

    #[test]
    fn invalid_spec_rejected() {
        let s = SystemSpec::new(Diagram::new("Empty"), GlobalParams::default());
        assert!(simulate_system(&s, &SystemSimOptions::default()).is_err());
    }
}
