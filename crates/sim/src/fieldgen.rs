//! Synthetic field-data generation.
//!
//! The paper validates MG models against "field data collected from two
//! large operational E10000 servers for 15 months". Production logs are
//! not available, so this module *simulates* them: long-horizon DES runs
//! of a server specification with deterministic (non-exponential)
//! repair and logistic durations, producing per-server outage logs that
//! downstream analysis (`rascad-fielddata`) treats exactly like real
//! logs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rascad_core::CoreError;
use rascad_markov::Ctmc;
use rascad_spec::SystemSpec;

use crate::events::EventLog;
use crate::system_sim::{simulate_chains, SystemSimOptions};

/// Hours in an average month (365.25 days / 12).
pub const HOURS_PER_MONTH: f64 = 730.5;

/// Options for field-data generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldDataOptions {
    /// Observation period, months (the paper uses 15).
    pub months: f64,
    /// Number of monitored servers (the paper uses 2).
    pub servers: usize,
    /// Base RNG seed; each server gets an independent stream.
    pub seed: u64,
    /// Use deterministic repair/logistic durations (realistic logs).
    pub deterministic_repairs: bool,
}

impl Default for FieldDataOptions {
    fn default() -> Self {
        FieldDataOptions { months: 15.0, servers: 2, seed: 0xf1e1d, deterministic_repairs: true }
    }
}

/// One monitored server's synthetic log.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRecord {
    /// Server index (0-based).
    pub server: usize,
    /// The outage log over the observation window.
    pub log: EventLog,
}

/// Generates synthetic field data for every server.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid or generation fails.
pub fn generate_field_data(
    spec: &SystemSpec,
    opts: &FieldDataOptions,
) -> Result<Vec<FieldRecord>, CoreError> {
    spec.validate()?;
    let mut chains: Vec<Ctmc> = Vec::new();
    collect(spec, &mut chains)?;
    let horizon = opts.months * HOURS_PER_MONTH;
    let sim_opts = SystemSimOptions {
        horizon_hours: horizon,
        replications: 1,
        seed: opts.seed,
        deterministic_repairs: opts.deterministic_repairs,
    };
    Ok((0..opts.servers)
        .map(|server| {
            let mut rng =
                StdRng::seed_from_u64(opts.seed.wrapping_add(server as u64 * 0x517c_c1b7));
            let log = simulate_chains(&chains, &sim_opts, &mut rng);
            FieldRecord { server, log }
        })
        .collect())
}

fn collect(spec: &SystemSpec, out: &mut Vec<Ctmc>) -> Result<(), CoreError> {
    fn walk(
        spec: &SystemSpec,
        d: &rascad_spec::Diagram,
        out: &mut Vec<Ctmc>,
    ) -> Result<(), CoreError> {
        for b in &d.blocks {
            let model = rascad_core::generator::generate_block(&b.params, &spec.globals)?;
            out.push(model.chain);
            if let Some(sub) = &b.subdiagram {
                walk(spec, sub, out)?;
            }
        }
        Ok(())
    }
    walk(spec, &spec.root, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn spec() -> SystemSpec {
        let mut d = Diagram::new("Server");
        d.push(
            BlockParams::new("Board", 1, 1)
                .with_mtbf(Hours(4_000.0))
                .with_mttr_parts(Minutes(60.0), Minutes(60.0), Minutes(30.0))
                .with_service_response(Hours(4.0)),
        );
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn generates_one_record_per_server() {
        let records =
            generate_field_data(&spec(), &FieldDataOptions { servers: 3, ..Default::default() })
                .unwrap();
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.server, i);
            assert!((r.log.horizon_hours - 15.0 * HOURS_PER_MONTH).abs() < 1e-9);
        }
    }

    #[test]
    fn servers_get_independent_histories() {
        let records = generate_field_data(&spec(), &FieldDataOptions::default()).unwrap();
        assert_ne!(records[0].log, records[1].log);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_field_data(&spec(), &FieldDataOptions::default()).unwrap();
        let b = generate_field_data(&spec(), &FieldDataOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn long_horizon_availability_is_plausible() {
        let records = generate_field_data(
            &spec(),
            &FieldDataOptions { months: 240.0, servers: 1, ..Default::default() },
        )
        .unwrap();
        let a = records[0].log.availability();
        // MTBF 4000 h, downtime ~6.5 h per outage: A ~ 0.9984.
        assert!(a > 0.99 && a < 1.0, "a={a}");
        assert!(records[0].log.outage_count() > 10);
    }
}
