//! Direct Monte-Carlo simulation of a CTMC.
//!
//! Samples the embedded jump chain with exponential sojourns and
//! accumulates reward-weighted time. Entirely independent of the
//! numerical solvers, so agreement between the two is a genuine
//! cross-check (the role SHARPE/MEADEP play in the paper's validation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rascad_markov::{Ctmc, StateId};

use crate::stats::Estimate;

/// Options for a CTMC availability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Simulated time per replication, hours.
    pub horizon_hours: f64,
    /// Number of independent replications.
    pub replications: usize,
    /// RNG seed (replications derive their own sub-seeds).
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { horizon_hours: 100_000.0, replications: 32, seed: 0x5eed }
    }
}

/// Per-state outgoing transition table for fast sampling.
struct JumpTable {
    /// For each state: total exit rate and cumulative (rate, target)
    /// rows.
    rows: Vec<(f64, Vec<(f64, StateId)>)>,
}

impl JumpTable {
    fn new(chain: &Ctmc) -> Self {
        let mut rows: Vec<(f64, Vec<(f64, StateId)>)> = vec![(0.0, Vec::new()); chain.len()];
        for t in chain.transitions() {
            rows[t.from].0 += t.rate;
            let acc = rows[t.from].0;
            rows[t.from].1.push((acc, t.to));
        }
        JumpTable { rows }
    }

    /// Samples the next (sojourn, state); `None` if absorbing.
    fn step(&self, from: StateId, rng: &mut StdRng) -> Option<(f64, StateId)> {
        let (total, ref cum) = self.rows[from];
        if total <= 0.0 {
            return None;
        }
        let sojourn = sample_exp(total, rng);
        let u: f64 = rng.gen::<f64>() * total;
        let idx = cum.partition_point(|&(acc, _)| acc < u);
        let target = cum[idx.min(cum.len() - 1)].1;
        Some((sojourn, target))
    }
}

/// Samples an exponential with the given rate by inverse transform.
pub(crate) fn sample_exp(rate: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen::<f64>();
    // Guard against ln(0).
    -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate
}

/// Simulates one replication and returns the fraction of time spent in
/// positive-reward states, starting from state 0.
pub fn simulate_once(chain: &Ctmc, horizon_hours: f64, rng: &mut StdRng) -> f64 {
    let table = JumpTable::new(chain);
    let rewards = chain.rewards();
    let mut t = 0.0;
    let mut state: StateId = 0;
    let mut up_time = 0.0;
    // Transitions are tallied locally and emitted once per replication so
    // the hot loop stays free of per-event tracing overhead.
    let mut events: u64 = 0;
    while t < horizon_hours {
        match table.step(state, rng) {
            None => {
                // Absorbing: remaining time spent here.
                if rewards[state] > 0.0 {
                    up_time += horizon_hours - t;
                }
                break;
            }
            Some((sojourn, next)) => {
                events += 1;
                let dwell = sojourn.min(horizon_hours - t);
                if rewards[state] > 0.0 {
                    up_time += dwell;
                }
                t += sojourn;
                state = next;
            }
        }
    }
    rascad_obs::counter("sim.events", events);
    up_time / horizon_hours
}

/// Estimates steady-state availability by independent replications.
#[must_use]
pub fn simulate_availability(chain: &Ctmc, opts: &SimOptions) -> Estimate {
    let mut span = rascad_obs::span("sim.availability");
    span.record("states", chain.len());
    span.record("replications", opts.replications);
    span.record("horizon_hours", opts.horizon_hours);
    let samples: Vec<f64> = (0..opts.replications)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(r as u64 * 0x9e37_79b9));
            simulate_once(chain, opts.horizon_hours, &mut rng)
        })
        .collect();
    rascad_obs::counter("sim.replications", opts.replications as u64);
    let est = Estimate::from_samples(&samples);
    span.record("mean", est.mean);
    span.record("ci_half_width", est.ci_half_width);
    est
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use rascad_markov::{CtmcBuilder, SteadyStateMethod};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    #[test]
    fn simulation_matches_analytic_two_state() {
        let c = two_state(0.01, 0.2);
        let analytic = {
            let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
            c.expected_reward(&pi)
        };
        let est = simulate_availability(
            &c,
            &SimOptions { horizon_hours: 200_000.0, replications: 24, seed: 42 },
        );
        // The analytic value must be inside (a slightly widened) CI.
        assert!(
            (est.mean - analytic).abs() < 3.0 * est.ci_half_width.max(1e-5),
            "sim {} vs analytic {analytic} (ci {})",
            est.mean,
            est.ci_half_width
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let c = two_state(0.05, 1.0);
        let o = SimOptions { horizon_hours: 10_000.0, replications: 4, seed: 7 };
        let a = simulate_availability(&c, &o);
        let b = simulate_availability(&c, &o);
        assert_eq!(a, b);
    }

    #[test]
    fn absorbing_state_handled() {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let dead = b.add_state("dead", 0.0);
        b.add_transition(up, dead, 10.0); // dies fast, never repaired
        let c = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let a = simulate_once(&c, 1000.0, &mut rng);
        assert!(a < 0.01, "a={a}");
    }

    #[test]
    fn always_up_chain_gives_one() {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("a", 1.0);
        let s1 = b.add_state("b", 1.0);
        b.add_transition(s0, s1, 1.0);
        b.add_transition(s1, s0, 1.0);
        let c = b.build().unwrap();
        let est = simulate_availability(
            &c,
            &SimOptions { horizon_hours: 100.0, replications: 3, seed: 9 },
        );
        assert_eq!(est.mean, 1.0);
    }

    #[test]
    fn exponential_sampler_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| sample_exp(rate, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }
}
