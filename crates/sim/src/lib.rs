//! Discrete-event Monte-Carlo simulation for the RAScad reproduction.
//!
//! The paper validates RAScad against two independent commercial tools
//! (SHARPE, MEADEP) and against field data from two production E10000
//! servers. Neither is available here, so this crate supplies the
//! substitutes:
//!
//! * [`ctmc_sim`] — simulates any generated CTMC directly by sampling
//!   exponential sojourns, giving a solver-independent availability
//!   estimate with confidence intervals (the "independent tool"
//!   cross-check).
//! * [`system_sim`] — simulates a whole [`rascad_spec::SystemSpec`]
//!   (every block chain in the hierarchy, system up = all blocks up)
//!   and produces availability estimates plus an up/down event log.
//! * [`fieldgen`] — generates *synthetic field data*: long-horizon
//!   simulated operation of a server spec with an event log of outages,
//!   standing in for the paper's 15 months of E10000 logs.
//! * [`stats`] — replication statistics (means, confidence intervals).
//!
//! # Example
//!
//! ```
//! use rascad_core::generate_block;
//! use rascad_sim::ctmc_sim::{simulate_availability, SimOptions};
//! use rascad_spec::{BlockParams, GlobalParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = generate_block(&BlockParams::new("X", 2, 1), &GlobalParams::default())?;
//! let est = simulate_availability(&model.chain, &SimOptions {
//!     horizon_hours: 50_000.0,
//!     replications: 20,
//!     seed: 7,
//! });
//! assert!(est.mean > 0.999);
//! # Ok(())
//! # }
//! ```

pub mod ctmc_sim;
pub mod events;
pub mod fieldgen;
pub mod spec_sim;
pub mod stats;
pub mod system_sim;

pub use ctmc_sim::{simulate_availability, SimOptions};
pub use events::{EventLog, SystemEvent};
pub use fieldgen::{generate_field_data, FieldDataOptions, FieldRecord};
pub use spec_sim::{simulate_block_semantics, SemanticSimOptions};
pub use stats::Estimate;
pub use system_sim::simulate_system;
