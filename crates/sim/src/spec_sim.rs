//! Component-level *semantic* simulation of a block.
//!
//! [`crate::ctmc_sim`] validates the solvers by simulating the generated
//! chain itself. This module goes one level deeper: it simulates the
//! block's RAS semantics directly at the component level — N physical
//! units failing, getting detected (or not), triggering AR windows,
//! waiting for logistics, being repaired in parallel, reintegrating —
//! *without ever constructing the Markov chain*. Agreement between this
//! simulator and the generated chain therefore validates the chain
//! abstraction itself.
//!
//! Known abstraction deltas (intentional, see `DESIGN.md`): the chain
//! serializes repairs (one service action at a time) while physical
//! units here repair in parallel, and the chain routes failed-AR
//! transients through the shared SPF state toward `PF1`. Both effects
//! are second-order in the failure rates, so unavailabilities agree to
//! first order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rascad_spec::{BlockParams, GlobalParams};

use rascad_core::generator::Rates;

use crate::ctmc_sim::sample_exp;
use crate::stats::Estimate;

/// Options for a semantic block simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticSimOptions {
    /// Simulated time per replication, hours.
    pub horizon_hours: f64,
    /// Number of replications.
    pub replications: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SemanticSimOptions {
    fn default() -> Self {
        SemanticSimOptions { horizon_hours: 200_000.0, replications: 32, seed: 0xb10c }
    }
}

/// Estimates a block's availability by component-level DES.
#[must_use]
pub fn simulate_block_semantics(
    params: &BlockParams,
    globals: &GlobalParams,
    opts: &SemanticSimOptions,
) -> Estimate {
    let samples: Vec<f64> = (0..opts.replications)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(r as u64 * 0x51_7cc1));
            one_replication(params, globals, opts.horizon_hours, &mut rng)
        })
        .collect();
    Estimate::from_samples(&samples)
}

/// Event queue ordering: earliest time first; ties broken by sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
struct At(f64, u64);

impl Eq for At {}

impl Ord for At {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for At {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Permanent fault of unit `c` (valid only if the unit is working).
    PermanentFault(usize),
    /// Transient fault touching unit `c`.
    Transient(usize),
    /// A latent fault on unit `c` gets detected.
    LatentDetect(usize),
    /// Unit `c` comes back from repair.
    RepairDone(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitState {
    Working,
    /// Failed, undetected; no repair in progress.
    Latent,
    /// Failed, in the repair pipeline.
    InRepair,
}

fn one_replication(
    params: &BlockParams,
    globals: &GlobalParams,
    horizon: f64,
    rng: &mut StdRng,
) -> f64 {
    let r = Rates::derive(params, globals);
    let n = params.quantity as usize;
    let k = params.min_quantity as usize;

    let mut units = vec![UnitState::Working; n];
    let mut queue: BinaryHeap<Reverse<(At, usize)>> = BinaryHeap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut seq = 0u64;

    let push = |queue: &mut BinaryHeap<Reverse<(At, usize)>>,
                events: &mut Vec<Event>,
                seq: &mut u64,
                t: f64,
                e: Event| {
        events.push(e);
        queue.push(Reverse((At(t, *seq), events.len() - 1)));
        *seq += 1;
    };

    // Downtime windows (AR, SPF, reboot, reintegration) and structural
    // outages (fewer than K working units).
    let mut windows: Vec<(f64, f64)> = Vec::new();
    let mut down_since: Option<f64> = None;

    // Seed initial fault events.
    for c in 0..n {
        if r.lambda_p > 0.0 {
            push(
                &mut queue,
                &mut events,
                &mut seq,
                sample_exp(r.lambda_p, rng),
                Event::PermanentFault(c),
            );
        }
        if r.lambda_t > 0.0 {
            push(
                &mut queue,
                &mut events,
                &mut seq,
                sample_exp(r.lambda_t, rng),
                Event::Transient(c),
            );
        }
    }

    let working = |units: &[UnitState]| units.iter().filter(|&&u| u == UnitState::Working).count();

    while let Some(Reverse((At(t, _), idx))) = queue.pop() {
        if t >= horizon {
            break;
        }
        match events[idx] {
            Event::PermanentFault(c) => {
                if units[c] != UnitState::Working {
                    continue;
                }
                let was_up = working(&units) >= k;
                let latent = params.is_redundant() && rng.gen::<f64>() < r.plf;
                if latent {
                    units[c] = UnitState::Latent;
                    if r.mttdlf > 0.0 {
                        push(
                            &mut queue,
                            &mut events,
                            &mut seq,
                            t + sample_exp(1.0 / r.mttdlf, rng),
                            Event::LatentDetect(c),
                        );
                    }
                } else {
                    units[c] = UnitState::InRepair;
                    detected_fault_windows(&r, t, rng, &mut windows, working(&units) >= k);
                    let done = start_repair(&r, t, rng, working(&units) >= k, &mut windows);
                    push(&mut queue, &mut events, &mut seq, done, Event::RepairDone(c));
                }
                if was_up && working(&units) < k {
                    down_since = Some(t);
                }
            }
            Event::LatentDetect(c) => {
                if units[c] != UnitState::Latent {
                    continue;
                }
                units[c] = UnitState::InRepair;
                detected_fault_windows(&r, t, rng, &mut windows, working(&units) >= k);
                let done = start_repair(&r, t, rng, working(&units) >= k, &mut windows);
                push(&mut queue, &mut events, &mut seq, done, Event::RepairDone(c));
            }
            Event::RepairDone(c) => {
                units[c] = UnitState::Working;
                // Nontransparent repair: the reintegration restart is a
                // downtime window.
                if r.treint > 0.0 {
                    windows.push((t, t + r.treint));
                }
                if working(&units) >= k {
                    if let Some(s) = down_since.take() {
                        windows.push((s, t));
                    }
                }
                if r.lambda_p > 0.0 {
                    push(
                        &mut queue,
                        &mut events,
                        &mut seq,
                        t + sample_exp(r.lambda_p, rng),
                        Event::PermanentFault(c),
                    );
                }
            }
            Event::Transient(c) => {
                if units[c] == UnitState::Working {
                    if params.is_redundant() {
                        // AR clears it; nontransparent AR costs Tfo, a
                        // failed AR costs the SPF window.
                        if r.tfo > 0.0 {
                            windows.push((t, t + r.tfo));
                        }
                        if rng.gen::<f64>() < r.effective_pspf() {
                            windows.push((t + r.tfo, t + r.tfo + r.tspf));
                        }
                    } else if r.tboot > 0.0 {
                        // Type 0: a reboot.
                        windows.push((t, t + r.tboot));
                    }
                }
                if r.lambda_t > 0.0 {
                    push(
                        &mut queue,
                        &mut events,
                        &mut seq,
                        t + sample_exp(r.lambda_t, rng),
                        Event::Transient(c),
                    );
                }
            }
        }
    }
    if let Some(s) = down_since {
        windows.push((s, horizon));
    }

    // Union of all downtime windows, clipped to the horizon.
    let mut clipped: Vec<(f64, f64)> = windows
        .into_iter()
        .filter_map(|(s, e)| {
            let s = s.clamp(0.0, horizon);
            let e = e.clamp(0.0, horizon);
            (e > s).then_some((s, e))
        })
        .collect();
    clipped.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut down = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (s, e) in clipped {
        match current {
            None => current = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    current = Some((cs, ce.max(e)));
                } else {
                    down += ce - cs;
                    current = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = current {
        down += ce - cs;
    }
    1.0 - down / horizon
}

/// Downtime windows caused by a *detected* fault: the AR/failover
/// interruption and (with probability `Pspf`) the SPF excursion. Only a
/// still-redundant system pays an AR window; once structurally down the
/// outage is accounted structurally.
fn detected_fault_windows(
    r: &Rates,
    t: f64,
    rng: &mut StdRng,
    windows: &mut Vec<(f64, f64)>,
    still_up: bool,
) {
    if !still_up {
        return;
    }
    if r.tfo > 0.0 {
        windows.push((t, t + r.tfo));
    }
    if rng.gen::<f64>() < r.effective_pspf() {
        windows.push((t + r.tfo, t + r.tfo + r.tspf));
    }
}

/// Starts the repair pipeline for a unit at time `t`: logistics
/// (scheduled when the system is still up, immediate when it is down) +
/// hands-on repair; with probability `1 − Pcd` the service action was
/// wrong, which — following the paper's ServiceError state — takes the
/// *system* down for an MTTRFID-mean excursion before the unit finally
/// returns. Returns the completion time.
fn start_repair(
    r: &Rates,
    t: f64,
    rng: &mut StdRng,
    still_up: bool,
    windows: &mut Vec<(f64, f64)>,
) -> f64 {
    let logistics = if still_up { r.mttm + r.tresp } else { r.tresp };
    let d = sample_exp(1.0 / (logistics + r.mttr).max(1e-12), rng);
    let mut done = t + d;
    if rng.gen::<f64>() < r.effective_service_error() {
        let se = sample_exp(1.0 / r.mttrfid, rng);
        windows.push((done, done + se));
        done += se;
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_block;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::{RedundancyParams, Scenario};

    fn analytic_unavailability(p: &BlockParams) -> f64 {
        let (_, m) = solve_block(p, &GlobalParams::default()).unwrap();
        m.unavailability
    }

    fn semantic_availability(p: &BlockParams) -> Estimate {
        simulate_block_semantics(
            p,
            &GlobalParams::default(),
            &SemanticSimOptions { horizon_hours: 400_000.0, replications: 24, seed: 77 },
        )
    }

    #[test]
    fn type0_semantics_match_chain() {
        let p = BlockParams::new("X", 1, 1)
            .with_mtbf(Hours(3_000.0))
            .with_transient_fit(Fit(50_000.0))
            .with_mttr_parts(Minutes(60.0), Minutes(30.0), Minutes(30.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.9);
        let u_chain = analytic_unavailability(&p);
        let u_sim = 1.0 - semantic_availability(&p).mean;
        let rel = (u_sim - u_chain).abs() / u_chain;
        assert!(rel < 0.15, "chain {u_chain} vs semantic {u_sim} (rel {rel})");
    }

    #[test]
    fn redundant_semantics_match_chain_to_first_order() {
        let p = BlockParams::new("X", 2, 1)
            .with_mtbf(Hours(4_000.0))
            .with_transient_fit(Fit(20_000.0))
            .with_mttr_parts(Minutes(60.0), Minutes(60.0), Minutes(0.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.95)
            .with_redundancy(RedundancyParams {
                p_latent_fault: 0.05,
                mttdlf: Hours(24.0),
                recovery: Scenario::Nontransparent,
                failover_time: Minutes(10.0),
                p_spf: 0.02,
                spf_recovery_time: Minutes(30.0),
                repair: Scenario::Nontransparent,
                reintegration_time: Minutes(10.0),
            });
        let u_chain = analytic_unavailability(&p);
        let u_sim = 1.0 - semantic_availability(&p).mean;
        // Abstraction error budget: parallel repair and SPF routing
        // differ at second order.
        let rel = (u_sim - u_chain).abs() / u_chain;
        assert!(rel < 0.35, "chain {u_chain} vs semantic {u_sim} (rel {rel})");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = BlockParams::new("X", 2, 1).with_mtbf(Hours(5_000.0));
        let o = SemanticSimOptions { horizon_hours: 50_000.0, replications: 4, seed: 3 };
        let a = simulate_block_semantics(&p, &GlobalParams::default(), &o);
        let b = simulate_block_semantics(&p, &GlobalParams::default(), &o);
        assert_eq!(a, b);
    }

    #[test]
    fn more_redundancy_is_more_available() {
        let g = GlobalParams::default();
        let o = SemanticSimOptions { horizon_hours: 100_000.0, replications: 16, seed: 5 };
        let base = BlockParams::new("X", 2, 2).with_mtbf(Hours(3_000.0)).with_mttr_parts(
            Minutes(60.0),
            Minutes(60.0),
            Minutes(0.0),
        );
        let redundant = BlockParams::new("X", 3, 2).with_mtbf(Hours(3_000.0)).with_mttr_parts(
            Minutes(60.0),
            Minutes(60.0),
            Minutes(0.0),
        );
        let a0 = simulate_block_semantics(&base, &g, &o).mean;
        let a1 = simulate_block_semantics(&redundant, &g, &o).mean;
        assert!(a1 > a0, "{a1} vs {a0}");
    }
}
