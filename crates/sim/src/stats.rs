//! Replication statistics.

/// A point estimate with a normal-approximation confidence interval
/// from independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (of the replications, not the mean).
    pub std_dev: f64,
    /// Number of replications.
    pub n: usize,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci_half_width: f64,
}

impl Estimate {
    /// Computes the estimate from replication samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // replication counts stay far below 2^52
    pub fn from_samples(samples: &[f64]) -> Estimate {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        // 1.96 sigma/sqrt(n): the replication counts used here are large
        // enough for the normal approximation.
        let ci_half_width = 1.96 * std_dev / (n as f64).sqrt();
        Estimate { mean, std_dev, n, ci_half_width }
    }

    /// Whether a reference value lies inside the 95% CI.
    #[must_use]
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci_half_width
    }

    /// Lower CI bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.ci_half_width
    }

    /// Upper CI bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.ci_half_width
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_zero_width() {
        let e = Estimate::from_samples(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.ci_half_width, 0.0);
        assert!(e.covers(2.0));
        assert!(!e.covers(2.1));
    }

    #[test]
    fn known_variance() {
        let e = Estimate::from_samples(&[1.0, 3.0]);
        assert_eq!(e.mean, 2.0);
        assert!((e.std_dev - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(e.n, 2);
        assert!((e.lo() + e.ci_half_width - e.mean).abs() < 1e-12);
        assert!((e.hi() - e.ci_half_width - e.mean).abs() < 1e-12);
    }

    #[test]
    fn single_sample_degenerate() {
        let e = Estimate::from_samples(&[5.0]);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.ci_half_width, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = Estimate::from_samples(&[]);
    }
}
