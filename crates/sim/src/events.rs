//! System up/down event logs — the artifact "field data" consists of.

/// One event in a system log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEvent {
    /// Simulation time, hours since start.
    pub time_hours: f64,
    /// `true` = the system came up, `false` = the system went down.
    pub up: bool,
}

/// A chronological up/down event log over an observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// Total observation window, hours.
    pub horizon_hours: f64,
    /// Events in time order; the system starts up at time 0.
    pub events: Vec<SystemEvent>,
}

impl EventLog {
    /// Creates an empty log (system up for the whole window).
    #[must_use]
    pub fn new(horizon_hours: f64) -> Self {
        EventLog { horizon_hours, events: Vec::new() }
    }

    /// Appends an event; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time_hours` is before the last event or beyond the
    /// horizon.
    pub fn push(&mut self, time_hours: f64, up: bool) {
        if let Some(last) = self.events.last() {
            assert!(time_hours >= last.time_hours, "events out of order");
        }
        assert!(time_hours <= self.horizon_hours, "event beyond horizon");
        self.events.push(SystemEvent { time_hours, up });
    }

    /// Total downtime over the window, hours.
    #[must_use]
    pub fn downtime_hours(&self) -> f64 {
        let mut down_since: Option<f64> = None;
        let mut total = 0.0;
        for e in &self.events {
            match (e.up, down_since) {
                (false, None) => down_since = Some(e.time_hours),
                (true, Some(t0)) => {
                    total += e.time_hours - t0;
                    down_since = None;
                }
                _ => {}
            }
        }
        if let Some(t0) = down_since {
            total += self.horizon_hours - t0;
        }
        total
    }

    /// Empirical availability over the window.
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.downtime_hours() / self.horizon_hours
    }

    /// Number of outages (down events).
    #[must_use]
    pub fn outage_count(&self) -> usize {
        self.events.iter().filter(|e| !e.up).count()
    }

    /// Durations of completed outages, hours.
    #[must_use]
    pub fn outage_durations(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut down_since: Option<f64> = None;
        for e in &self.events {
            match (e.up, down_since) {
                (false, None) => down_since = Some(e.time_hours),
                (true, Some(t0)) => {
                    out.push(e.time_hours - t0);
                    down_since = None;
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn empty_log_fully_available() {
        let log = EventLog::new(100.0);
        assert_eq!(log.availability(), 1.0);
        assert_eq!(log.outage_count(), 0);
        assert!(log.outage_durations().is_empty());
    }

    #[test]
    fn downtime_accumulates() {
        let mut log = EventLog::new(100.0);
        log.push(10.0, false);
        log.push(12.0, true);
        log.push(50.0, false);
        log.push(53.0, true);
        assert!((log.downtime_hours() - 5.0).abs() < 1e-12);
        assert!((log.availability() - 0.95).abs() < 1e-12);
        assert_eq!(log.outage_count(), 2);
        assert_eq!(log.outage_durations(), vec![2.0, 3.0]);
    }

    #[test]
    fn open_outage_counts_to_horizon() {
        let mut log = EventLog::new(100.0);
        log.push(90.0, false);
        assert!((log.downtime_hours() - 10.0).abs() < 1e-12);
        assert!(log.outage_durations().is_empty()); // not completed
    }

    #[test]
    fn duplicate_down_events_ignored_in_accounting() {
        let mut log = EventLog::new(10.0);
        log.push(1.0, false);
        log.push(2.0, false); // still down
        log.push(3.0, true);
        assert!((log.downtime_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_rejected() {
        let mut log = EventLog::new(10.0);
        log.push(5.0, false);
        log.push(4.0, true);
    }
}
