//! Deterministic fault injection for the RAScad solve pipeline.
//!
//! Availability tools make a trust claim — the paper validates RAScad's
//! generated models to < 0.2% downtime error — and that claim extends
//! to the tool itself: a production solve pipeline must fail in *typed,
//! attributable, bounded* ways. This crate provides the test harness
//! for that property: a process-global **fault plan** that maps block
//! paths to injected failure kinds, which `rascad-core` consults (only
//! when built with its `fault-inject` feature) at well-defined points
//! of the generate → solve → roll-up pipeline.
//!
//! Everything is deterministic: a plan names exact block paths and the
//! injected faults fire on every solve of those blocks, so a chaos run
//! is exactly reproducible and the *uninjected* blocks can be compared
//! bit-for-bit against a clean run. The optional `seed` field is
//! carried for corpus tooling (e.g. seeded spec mutation) so one number
//! reproduces an entire chaos scenario.
//!
//! # Plan format
//!
//! A minimal TOML subset, hand-parsed so the offline build needs no
//! external crates:
//!
//! ```toml
//! # comment
//! seed = 42                      # optional, recorded verbatim
//!
//! [[inject]]
//! block = "Server Box/CPU Module"   # block path; the root diagram
//!                                   # name may be included or omitted
//! kind = "panic"                    # panic | not-converged | nan-rate | timeout | delay
//!
//! [[inject]]
//! block = "Server Box/Disk"
//! kind = "delay"                    # stall the worker before solving
//! ms = 25                           # optional; defaults to a seeded,
//!                                   # path-keyed duration
//! ```
//!
//! # Example
//!
//! ```
//! use rascad_fault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse(
//!     "[[inject]]\nblock = \"A/B\"\nkind = \"timeout\"\n",
//! ).unwrap();
//! assert_eq!(plan.entries().len(), 1);
//! rascad_fault::install(plan);
//! // The engine walk path includes the root diagram name; matching
//! // tolerates its presence or absence.
//! assert_eq!(rascad_fault::fault_for("Sys/A/B"), Some(FaultKind::Timeout));
//! assert_eq!(rascad_fault::fault_for("Sys/A"), None);
//! rascad_fault::uninstall();
//! ```

use std::fmt;
use std::sync::{Mutex, PoisonError, RwLock};

/// What to inject at a matched block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic inside the worker closure solving the block, exercising
    /// the engine's `catch_unwind` isolation boundary.
    Panic,
    /// Force every rung of the solver fallback ladder to report
    /// non-convergence (iterative rungs) or singularity (direct rungs).
    NotConverged,
    /// Corrupt one generated transition rate to NaN so chain
    /// construction fails with a typed `InvalidRate` error.
    NanRate,
    /// Force every rung of the solver fallback ladder to report a
    /// wall-clock budget timeout (no real time is spent).
    Timeout,
    /// Stall the worker for a real wall-clock delay before solving the
    /// block — the chaos probe for deadline/cancellation paths. The
    /// duration is the entry's explicit `ms`, else a deterministic
    /// seeded value keyed by the block path (see
    /// [`FaultPlan::delay_for`]).
    Delay,
}

impl FaultKind {
    /// Stable plan-file spelling of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::NotConverged => "not-converged",
            FaultKind::NanRate => "nan-rate",
            FaultKind::Timeout => "timeout",
            FaultKind::Delay => "delay",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s.replace('_', "-").as_str() {
            "panic" => Some(FaultKind::Panic),
            "not-converged" | "notconverged" => Some(FaultKind::NotConverged),
            "nan-rate" | "nan" => Some(FaultKind::NanRate),
            "timeout" => Some(FaultKind::Timeout),
            "delay" => Some(FaultKind::Delay),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One `[[inject]]` entry: a block path and the fault to inject there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Slash-separated block path. Matched against the engine's walk
    /// path exactly, or with the walk path's leading root-diagram
    /// segment stripped (so plans can use the same `"Server Box/CPU
    /// Module"` form as every other CLI block-path argument).
    pub block: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Explicit delay duration for [`FaultKind::Delay`] entries;
    /// `None` falls back to the seeded, path-keyed default.
    pub delay_ms: Option<u64>,
}

/// A parsed fault-injection plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    entries: Vec<Injection>,
    seed: Option<u64>,
}

/// Parse failure: the offending line number and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line of the plan file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// Parses the minimal-TOML plan format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for unknown keys/kinds, entries missing
    /// `block` or `kind`, or lines that are not `key = "value"`,
    /// `[[inject]]`, comments, or blank.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        // (block, kind, delay ms, line the entry started on)
        type Open = (Option<String>, Option<FaultKind>, Option<u64>, usize);
        let mut open: Option<Open> = None;
        let err = |line: usize, message: String| PlanError { line, message };
        let close =
            |open: &mut Option<Open>, entries: &mut Vec<Injection>| -> Result<(), PlanError> {
                if let Some((block, kind, delay_ms, at)) = open.take() {
                    let block = block
                        .ok_or_else(|| err(at, "entry is missing `block = \"...\"`".into()))?;
                    let kind =
                        kind.ok_or_else(|| err(at, "entry is missing `kind = \"...\"`".into()))?;
                    if delay_ms.is_some() && kind != FaultKind::Delay {
                        return Err(err(at, "`ms` is only valid for kind = \"delay\"".into()));
                    }
                    entries.push(Injection { block, kind, delay_ms });
                }
                Ok(())
            };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[inject]]" {
                close(&mut open, &mut plan.entries)?;
                open = Some((None, None, None, lineno));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&mut open, key) {
                (None, "seed") => {
                    plan.seed = Some(value.parse().map_err(|_| {
                        err(lineno, format!("seed must be an unsigned integer, got `{value}`"))
                    })?);
                }
                (None, other) => {
                    return Err(err(
                        lineno,
                        format!(
                            "unknown top-level key `{other}` (expected `seed` or `[[inject]]`)"
                        ),
                    ));
                }
                (Some(entry), "block") => {
                    let v = unquote(value).ok_or_else(|| {
                        err(lineno, format!("block needs a quoted string, got `{value}`"))
                    })?;
                    entry.0 = Some(v.to_string());
                }
                (Some(entry), "kind") => {
                    let v = unquote(value).ok_or_else(|| {
                        err(lineno, format!("kind needs a quoted string, got `{value}`"))
                    })?;
                    entry.1 = Some(FaultKind::parse(v).ok_or_else(|| {
                        err(
                            lineno,
                            format!(
                                "unknown kind `{v}` (panic, not-converged, nan-rate, timeout, \
                                 delay)"
                            ),
                        )
                    })?);
                }
                (Some(entry), "ms") => {
                    entry.2 = Some(value.parse().map_err(|_| {
                        err(lineno, format!("ms must be an unsigned integer, got `{value}`"))
                    })?);
                }
                (Some(_), other) => {
                    return Err(err(lineno, format!("unknown entry key `{other}`")));
                }
            }
        }
        close(&mut open, &mut plan.entries)?;
        Ok(plan)
    }

    /// The parsed `[[inject]]` entries, in file order.
    #[must_use]
    pub fn entries(&self) -> &[Injection] {
        &self.entries
    }

    /// The optional `seed` field (recorded verbatim for corpus tooling).
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Programmatic construction (used by the chaos test suites).
    pub fn single(block: impl Into<String>, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            entries: vec![Injection { block: block.into(), kind, delay_ms: None }],
            seed: None,
        }
    }

    /// The first entry matching `path` (an engine walk path that
    /// includes the root-diagram segment, or a bare block path).
    #[must_use]
    pub fn fault_for(&self, path: &str) -> Option<FaultKind> {
        self.entry_for(path).map(|e| e.kind)
    }

    /// The delay to inject at `path`, when the matching entry is a
    /// [`FaultKind::Delay`]: the entry's explicit `ms`, else a
    /// deterministic duration in `10..=49` ms derived from the plan
    /// seed and an FNV-1a hash of the block path — so one seed
    /// reproduces the whole chaos scenario, and distinct blocks stall
    /// for distinct (but stable) durations.
    #[must_use]
    pub fn delay_for(&self, path: &str) -> Option<std::time::Duration> {
        let entry = self.entry_for(path)?;
        if entry.kind != FaultKind::Delay {
            return None;
        }
        let ms = entry.delay_ms.unwrap_or_else(|| {
            let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ self.seed.unwrap_or(0);
            for b in entry.block.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            10 + h % 40
        });
        Some(std::time::Duration::from_millis(ms))
    }

    fn entry_for(&self, path: &str) -> Option<&Injection> {
        let stripped = path.split_once('/').map(|(_, rest)| rest);
        self.entries.iter().find(|e| e.block == path || stripped == Some(e.block.as_str()))
    }
}

fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"')?.strip_suffix('"')
}

struct Registry {
    plan: RwLock<Option<FaultPlan>>,
    fired: Mutex<Vec<(String, FaultKind)>>,
}

static REGISTRY: Registry = Registry { plan: RwLock::new(None), fired: Mutex::new(Vec::new()) };

/// Installs `plan` process-wide, replacing any previous plan and
/// clearing the fired log.
pub fn install(plan: FaultPlan) {
    *REGISTRY.plan.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    REGISTRY.fired.lock().unwrap_or_else(PoisonError::into_inner).clear();
}

/// Removes the active plan (injection points become no-ops again).
pub fn uninstall() {
    *REGISTRY.plan.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a plan is currently installed.
pub fn is_active() -> bool {
    REGISTRY.plan.read().unwrap_or_else(PoisonError::into_inner).is_some()
}

/// The fault to inject for `path` under the active plan, if any.
pub fn fault_for(path: &str) -> Option<FaultKind> {
    REGISTRY
        .plan
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .and_then(|p| p.fault_for(path))
}

/// The delay to inject for `path` under the active plan, if the
/// matching entry is a [`FaultKind::Delay`] (see
/// [`FaultPlan::delay_for`]).
pub fn delay_for(path: &str) -> Option<std::time::Duration> {
    REGISTRY
        .plan
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .and_then(|p| p.delay_for(path))
}

/// Records that an injection actually fired (called by the engine's
/// injection points so tests can assert coverage).
pub fn note_fired(path: &str, kind: FaultKind) {
    REGISTRY.fired.lock().unwrap_or_else(PoisonError::into_inner).push((path.to_string(), kind));
}

/// Every `(path, kind)` injection fired since the last [`install`].
pub fn fired() -> Vec<(String, FaultKind)> {
    REGISTRY.fired.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// RAII guard installing a plan for one scope (test and CLI helper):
/// uninstalls on drop even if the scope panics or errors out early.
pub struct PlanGuard(());

impl PlanGuard {
    /// Installs `plan` and returns the guard.
    #[must_use]
    pub fn install(plan: FaultPlan) -> PlanGuard {
        install(plan);
        PlanGuard(())
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let plan = FaultPlan::parse(
            "# chaos plan\nseed = 7\n\n[[inject]]\nblock = \"A/B\"\nkind = \"panic\"\n\n\
             [[inject]]\nblock = \"C\"  # trailing comment\nkind = \"nan_rate\"\n",
        )
        .unwrap();
        assert_eq!(plan.seed(), Some(7));
        assert_eq!(
            plan.entries(),
            &[
                Injection { block: "A/B".into(), kind: FaultKind::Panic, delay_ms: None },
                Injection { block: "C".into(), kind: FaultKind::NanRate, delay_ms: None },
            ]
        );
    }

    #[test]
    fn parses_delay_entries_with_and_without_ms() {
        let plan = FaultPlan::parse(
            "seed = 3\n[[inject]]\nblock = \"A\"\nkind = \"delay\"\nms = 25\n\n\
             [[inject]]\nblock = \"B\"\nkind = \"delay\"\n",
        )
        .unwrap();
        assert_eq!(
            plan.entries(),
            &[
                Injection { block: "A".into(), kind: FaultKind::Delay, delay_ms: Some(25) },
                Injection { block: "B".into(), kind: FaultKind::Delay, delay_ms: None },
            ]
        );
        // Explicit ms wins verbatim.
        assert_eq!(plan.delay_for("Root/A"), Some(std::time::Duration::from_millis(25)));
        // Seeded fallback is deterministic, bounded, and path-keyed.
        let b = plan.delay_for("Root/B").unwrap();
        assert_eq!(plan.delay_for("B"), Some(b));
        assert!((10..50).contains(&u64::try_from(b.as_millis()).unwrap()), "{b:?}");
        // A different seed shifts the fallback but not the explicit ms.
        let reseeded =
            FaultPlan::parse("seed = 4\n[[inject]]\nblock = \"B\"\nkind = \"delay\"\n").unwrap();
        assert_ne!(reseeded.delay_for("B"), Some(b));
        // Non-delay entries never report a delay.
        let p = FaultPlan::single("X", FaultKind::Panic);
        assert_eq!(p.delay_for("X"), None);
    }

    #[test]
    fn rejects_malformed_plans() {
        for (text, needle) in [
            ("kind = \"panic\"\n", "unknown top-level key"),
            ("[[inject]]\nblock = \"A\"\n", "missing `kind"),
            ("[[inject]]\nkind = \"panic\"\n", "missing `block"),
            ("[[inject]]\nblock = \"A\"\nkind = \"frazzle\"\n", "unknown kind"),
            ("[[inject]]\nblock = A\nkind = \"panic\"\n", "quoted string"),
            ("seed = x\n", "unsigned integer"),
            ("wat\n", "expected `key = value`"),
            ("[[inject]]\nblock = \"A\"\nwhen = \"now\"\n", "unknown entry key"),
            ("[[inject]]\nblock = \"A\"\nkind = \"delay\"\nms = soon\n", "unsigned integer"),
            ("[[inject]]\nblock = \"A\"\nkind = \"panic\"\nms = 5\n", "only valid for kind"),
        ] {
            let e = FaultPlan::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
            assert!(e.line >= 1);
        }
    }

    #[test]
    fn matching_tolerates_root_segment() {
        let plan = FaultPlan::single("Server Box/CPU", FaultKind::Timeout);
        assert_eq!(plan.fault_for("Server Box/CPU"), Some(FaultKind::Timeout));
        assert_eq!(plan.fault_for("DC/Server Box/CPU"), Some(FaultKind::Timeout));
        assert_eq!(plan.fault_for("DC/Server Box"), None);
        assert_eq!(plan.fault_for("DC/Other/Server Box/CPU"), None);
    }

    #[test]
    fn registry_round_trip_and_fired_log() {
        assert!(!is_active());
        assert_eq!(fault_for("X"), None);
        {
            let _g = PlanGuard::install(FaultPlan::single("X", FaultKind::Panic));
            assert!(is_active());
            assert_eq!(fault_for("Root/X"), Some(FaultKind::Panic));
            note_fired("Root/X", FaultKind::Panic);
            assert_eq!(fired(), vec![("Root/X".to_string(), FaultKind::Panic)]);
        }
        assert!(!is_active());
        assert_eq!(fault_for("X"), None);
        assert_eq!(delay_for("X"), None);
        {
            let plan =
                FaultPlan::parse("[[inject]]\nblock = \"D\"\nkind = \"delay\"\nms = 7\n").unwrap();
            let _g = PlanGuard::install(plan);
            assert_eq!(fault_for("Root/D"), Some(FaultKind::Delay));
            assert_eq!(delay_for("Root/D"), Some(std::time::Duration::from_millis(7)));
            note_fired("Root/D", FaultKind::Delay);
            assert_eq!(fired(), vec![("Root/D".to_string(), FaultKind::Delay)]);
        }
        assert_eq!(delay_for("D"), None);
    }

    #[test]
    fn kind_spellings_round_trip() {
        for k in [
            FaultKind::Panic,
            FaultKind::NotConverged,
            FaultKind::NanRate,
            FaultKind::Timeout,
            FaultKind::Delay,
        ] {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
            assert_eq!(k.to_string(), k.as_str());
        }
        assert_eq!(FaultKind::parse("not_converged"), Some(FaultKind::NotConverged));
        assert_eq!(FaultKind::parse("nan"), Some(FaultKind::NanRate));
    }
}
