//! Telemetry non-interference: turning the full observability stack on
//! (subscriber with sinks, labeled metrics, flight recorder) must not
//! change a single bit of any solve result.
//!
//! Numeric identity — not approximate closeness — is the contract: the
//! instrumentation only *observes* (clock reads, counter bumps); it
//! never reorders work or feeds values back into the solvers.

use rascad_core::{Engine, SystemSolution};
use rascad_markov::SteadyStateMethod;
use rascad_obs::{Event, Sink};
use rascad_spec::units::Hours;
use rascad_spec::{Block, BlockParams, Diagram, GlobalParams, SystemSpec};

/// A sink that counts events without retaining them, keeping the
/// instrumented run realistic but cheap.
struct CountSink(u64);

impl Sink for CountSink {
    fn event(&mut self, _: &Event) {
        self.0 += 1;
    }
}

fn spec() -> SystemSpec {
    let mut sub = Diagram::new("Internals");
    sub.push(BlockParams::new("CPU", 4, 2).with_mtbf(Hours(60_000.0)));
    sub.push(BlockParams::new("RAM", 8, 7).with_mtbf(Hours(120_000.0)));
    let mut root = Diagram::new("Sys");
    root.push(BlockParams::new("PSU", 2, 1).with_mtbf(Hours(30_000.0)));
    root.push_block(Block::with_subdiagram(
        BlockParams::new("Board", 1, 1).with_mtbf(Hours(1_000_000.0)),
        sub,
    ));
    SystemSpec::new(root, GlobalParams::default())
}

fn assert_bit_identical(a: &SystemSolution, b: &SystemSolution) {
    // Every measure is an f64; compare raw bits, not with a tolerance.
    let (sa, sb) = (&a.system, &b.system);
    for (x, y) in [
        (sa.availability, sb.availability),
        (sa.unavailability, sb.unavailability),
        (sa.failure_rate, sb.failure_rate),
        (sa.mtbf_hours, sb.mtbf_hours),
        (sa.mttf_hours, sb.mttf_hours),
        (sa.interval_availability, sb.interval_availability),
        (sa.reliability_at_mission, sb.reliability_at_mission),
        (sa.yearly_downtime_minutes, sb.yearly_downtime_minutes),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "system measure diverged: {x} vs {y}");
    }
    assert_eq!(a.blocks.len(), b.blocks.len());
    for (ba, bb) in a.blocks.iter().zip(&b.blocks) {
        assert_eq!(ba.path, bb.path);
        assert_eq!(ba.measures, bb.measures, "block {} diverged", ba.path);
        assert_eq!(ba.model, bb.model, "model {} diverged", ba.path);
        // Certificate equality is bit-based (f64::to_bits), so this
        // pins the certificates too, not just the measures.
        assert_eq!(ba.certificate, bb.certificate, "certificate {} diverged", ba.path);
    }
}

#[test]
fn solve_results_are_bit_identical_with_telemetry_on_and_off() {
    let s = spec();
    for method in [SteadyStateMethod::Gth, SteadyStateMethod::Power] {
        for threads in [1usize, 4] {
            let engine = Engine::with_threads(threads);
            let quiet = engine.solve_spec_with(&s, method).unwrap();

            rascad_obs::flight::arm();
            rascad_obs::trace::arm();
            rascad_obs::install(vec![Box::new(CountSink(0))]);
            let observed = engine.solve_spec_with(&s, method).unwrap();
            rascad_obs::drain();
            rascad_obs::uninstall();
            rascad_obs::trace::disarm();
            rascad_obs::flight::disarm();

            assert_bit_identical(&quiet, &observed);

            // And symmetric: a quiet run after telemetry matches too.
            let quiet_again = engine.solve_spec_with(&s, method).unwrap();
            assert_bit_identical(&observed, &quiet_again);
        }
    }
}
