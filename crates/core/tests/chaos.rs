//! Chaos suite: every deterministic fault the `rascad-fault` plan can
//! inject must surface as a *typed* error in strict mode, roll up as an
//! explicit [`FailedBlock`] in best-effort mode, and leave every
//! uninjected block bit-identical to a clean run — at any thread count.
//!
//! Requires the `fault-inject` feature (see `[[test]]` in Cargo.toml).

use rascad_core::{BlockOutcome, CoreError, Engine, EngineError, FailedBlock, SystemSolution};
use rascad_fault::{FaultKind, FaultPlan, PlanGuard};
use rascad_markov::{MarkovError, SteadyStateMethod};
use rascad_spec::units::Hours;
use rascad_spec::{Block, BlockParams, Diagram, GlobalParams, SystemSpec};
use std::sync::Mutex;

/// The fault registry is process-global, so tests that install plans
/// must not interleave.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Root "Sys" with leaves A, B and a "Box" enclosing sub-block "CPU".
fn spec() -> SystemSpec {
    let mut sub = Diagram::new("Internals");
    sub.push(BlockParams::new("CPU", 2, 1).with_mtbf(Hours(50_000.0)));
    let mut root = Diagram::new("Sys");
    root.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(10_000.0)));
    root.push(BlockParams::new("B", 2, 1).with_mtbf(Hours(20_000.0)));
    root.push_block(Block::with_subdiagram(
        BlockParams::new("Box", 1, 1).with_mtbf(Hours(1_000_000.0)),
        sub,
    ));
    SystemSpec::new(root, GlobalParams::default())
}

fn surviving_blocks_match(degraded: &SystemSolution, clean: &SystemSolution) {
    for b in &degraded.blocks {
        let reference = clean.block(&b.path).expect("clean run has every block");
        assert_eq!(b.measures, reference.measures, "block {} diverged", b.path);
        assert_eq!(b.model, reference.model, "model {} diverged", b.path);
        assert_eq!(b.certificate, reference.certificate, "certificate {} diverged", b.path);
    }
}

#[test]
fn panic_is_isolated_typed_and_rolls_up_best_effort() {
    let _l = lock();
    let s = spec();
    let clean = Engine::sequential().solve_spec(&s).unwrap();
    let _g = PlanGuard::install(FaultPlan::single("Sys/B", FaultKind::Panic));

    // Strict: the panic is caught at the item boundary and surfaces as
    // a typed engine error, not a process abort.
    let engine = Engine::with_threads(4);
    let err = engine.solve_spec(&s).unwrap_err();
    match &err {
        CoreError::Engine(EngineError::WorkerPanicked { path, message }) => {
            assert_eq!(path, "Sys/B");
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // Best-effort: explicit failure leaf, surviving blocks bit-identical.
    let sol = engine.solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    assert!(sol.is_degraded());
    assert_eq!(sol.failed.len(), 1);
    assert_eq!(sol.failed[0].path, "Sys/B");
    assert_eq!(sol.blocks.len(), clean.blocks.len() - 1);
    surviving_blocks_match(&sol, &clean);

    // Optimistic roll-up: the failed block contributes availability 1.
    let expected: f64 = clean
        .blocks
        .iter()
        .filter(|b| b.level == 1 && b.path != "Sys/B")
        .map(|b| b.combined_availability)
        .product();
    assert_eq!(sol.system.availability, expected);
    let (lo, hi) = sol.availability_bounds();
    assert_eq!(lo, 0.0);
    assert_eq!(hi, sol.system.availability);

    // The injection actually fired (and only where planned).
    let fired = rascad_fault::fired();
    assert!(fired.iter().all(|(p, k)| p == "Sys/B" && *k == FaultKind::Panic), "{fired:?}");
    assert!(!fired.is_empty());
}

#[test]
fn not_converged_fault_exhausts_the_ladder_with_a_full_trail() {
    let _l = lock();
    let s = spec();
    let _g = PlanGuard::install(FaultPlan::single("Sys/A", FaultKind::NotConverged));
    let err = Engine::sequential().solve_spec_with(&s, SteadyStateMethod::Power).unwrap_err();
    match &err {
        CoreError::Markov { block, source: MarkovError::FallbackExhausted { attempts } } => {
            assert_eq!(block, "A");
            let methods: Vec<_> = attempts.iter().map(|a| a.method).collect();
            assert_eq!(methods, ["power", "lu", "gth"]);
        }
        other => panic!("expected FallbackExhausted, got {other:?}"),
    }

    // With GTH (the last rung) requested, the same fault stays a plain
    // typed Singular — no bogus one-rung "ladder exhausted" wrapper.
    let err = Engine::sequential().solve_spec_with(&s, SteadyStateMethod::Gth).unwrap_err();
    assert!(matches!(&err, CoreError::Markov { source: MarkovError::Singular, .. }), "{err:?}");
}

#[test]
fn timeout_fault_is_typed_and_spends_no_wall_clock() {
    let _l = lock();
    let s = spec();
    let _g = PlanGuard::install(FaultPlan::single("Sys/Box/CPU", FaultKind::Timeout));
    let t0 = std::time::Instant::now();
    let err = Engine::sequential().solve_spec_with(&s, SteadyStateMethod::Power).unwrap_err();
    assert!(t0.elapsed() < std::time::Duration::from_secs(10));
    match &err {
        CoreError::Markov { block, source: MarkovError::FallbackExhausted { attempts } } => {
            assert_eq!(block, "CPU");
            assert!(attempts.iter().all(|a| matches!(*a.error, MarkovError::Timeout { .. })));
        }
        other => panic!("expected FallbackExhausted of timeouts, got {other:?}"),
    }
}

#[test]
fn nan_rate_fault_is_caught_by_residual_certification() {
    let _l = lock();
    let s = spec();
    let _g = PlanGuard::install(FaultPlan::single("Sys/A", FaultKind::NanRate));

    // The solver itself succeeds (the corruption happens after it), so
    // only the independent residual check stands between the NaN and
    // the report. Strict mode: a typed certification error, never a
    // silent number.
    let err = Engine::sequential().solve_spec(&s).unwrap_err();
    match &err {
        CoreError::Certification { block, residual, prob_mass_error } => {
            assert_eq!(block, "A");
            assert!(residual.is_nan() || prob_mass_error.is_nan(), "{err}");
        }
        other => panic!("expected Certification, got {other:?}"),
    }

    // Best-effort mode: an explicit fail-verdict FailedBlock leaf.
    let sol = Engine::sequential().solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    assert_eq!(sol.failed.len(), 1);
    assert_eq!(sol.failed[0].path, "Sys/A");
    assert!(
        matches!(sol.failed[0].error, CoreError::Certification { .. }),
        "{:?}",
        sol.failed[0].error
    );
}

#[test]
fn uninjected_blocks_are_bit_identical_at_any_thread_count() {
    let _l = lock();
    let s = spec();
    let clean = Engine::sequential().solve_spec(&s).unwrap();
    for kind in [FaultKind::Panic, FaultKind::NotConverged, FaultKind::NanRate, FaultKind::Timeout]
    {
        for threads in [1, 8] {
            let _g = PlanGuard::install(FaultPlan::single("Sys/B", kind));
            let sol = Engine::with_threads(threads)
                .solve_spec_best_effort(&s, SteadyStateMethod::Gth)
                .unwrap();
            assert_eq!(sol.failed.len(), 1, "kind {kind:?} threads {threads}");
            assert_eq!(sol.failed[0].path, "Sys/B");
            surviving_blocks_match(&sol, &clean);
        }
    }
}

#[test]
fn degraded_subdiagram_rolls_up_under_a_failed_enclosure() {
    let _l = lock();
    let s = spec();
    let clean = Engine::sequential().solve_spec(&s).unwrap();
    // Fail the enclosure; its CPU sub-block must still solve and count.
    let _g = PlanGuard::install(FaultPlan::single("Sys/Box", FaultKind::Panic));
    let sol = Engine::sequential().solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    assert_eq!(sol.failed.len(), 1);
    assert!(sol.block("Sys/Box/CPU").is_some());
    let expected = clean.block("Sys/A").unwrap().measures.availability
        * clean.block("Sys/B").unwrap().measures.availability
        * clean.block("Sys/Box/CPU").unwrap().measures.availability;
    assert!((sol.system.availability - expected).abs() < 1e-15);

    // outcomes() interleaves the failure leaf at its walk position.
    let outcomes = sol.outcomes();
    assert_eq!(outcomes.len(), 4);
    let paths: Vec<&str> = outcomes
        .iter()
        .map(|o| match o {
            BlockOutcome::Solved(b) => b.path.as_str(),
            BlockOutcome::Failed(f) => f.path.as_str(),
        })
        .collect();
    assert_eq!(paths, ["Sys/A", "Sys/B", "Sys/Box", "Sys/Box/CPU"]);
    assert!(matches!(outcomes[2], BlockOutcome::Failed(_)));
}

#[test]
fn injected_blocks_bypass_the_cache_and_panic_generations_are_dropped() {
    let _l = lock();
    let s = spec();
    let engine = Engine::with_threads(2);

    // Populate the cache with the clean chains.
    let clean = engine.solve_spec(&s).unwrap();
    assert!(engine.cache_stats().entries > 0);

    // A solver fault on a block whose identical chain IS cached must
    // still fire: injected blocks skip the cache read.
    {
        let _g = PlanGuard::install(FaultPlan::single("Sys/A", FaultKind::NotConverged));
        let sol = engine.solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
        assert_eq!(sol.failed.len(), 1, "cached chain must not mask the injected fault");
        assert_eq!(sol.failed[0].path, "Sys/A");
    }

    // A panic evicts only entries inserted by the panicked batch: the
    // warm entries from the earlier clean generation survive untouched.
    let warm = engine.cache_stats().entries;
    {
        let _g = PlanGuard::install(FaultPlan::single("Sys/B", FaultKind::Panic));
        let _ = engine.solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    }
    assert_eq!(
        engine.cache_stats().entries,
        warm,
        "warm generations must survive a later batch's panic"
    );

    // A fresh engine panicking on its very first batch keeps nothing:
    // everything it inserted shares the panicked generation.
    let fresh = Engine::with_threads(2);
    {
        let _g = PlanGuard::install(FaultPlan::single("Sys/B", FaultKind::Panic));
        let _ = fresh.solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    }
    assert_eq!(fresh.cache_stats().entries, 0, "panicked batch's own inserts must be dropped");

    // And the next clean solve still reproduces the reference exactly.
    let again = engine.solve_spec(&s).unwrap();
    assert_eq!(again, clean);
}

#[test]
fn delay_fault_stalls_the_worker_but_never_changes_the_numbers() {
    let _l = lock();
    let s = spec();
    let clean = Engine::sequential().solve_spec(&s).unwrap();

    let _g = PlanGuard::install(FaultPlan::single("Sys/B", FaultKind::Delay));
    let t0 = std::time::Instant::now();
    let sol = Engine::with_threads(4).solve_spec(&s).unwrap();
    // The seeded fallback delay is at least 10 ms; a stall is not a
    // failure, so the solve succeeds bit-identically to the clean run.
    assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
    assert_eq!(sol, clean);

    let fired = rascad_fault::fired();
    assert!(fired.iter().any(|(p, k)| p == "Sys/B" && *k == FaultKind::Delay), "{fired:?}");
}

#[test]
fn failed_block_is_well_formed() {
    let _l = lock();
    let s = spec();
    let _g = PlanGuard::install(FaultPlan::single("Sys/A", FaultKind::Panic));
    let sol = Engine::sequential().solve_spec_best_effort(&s, SteadyStateMethod::Gth).unwrap();
    let f: &FailedBlock = &sol.failed[0];
    assert_eq!((f.path.as_str(), f.level, f.walk_index), ("Sys/A", 1, 0));
    assert!(f.error.to_string().contains("panicked"), "{}", f.error);
}
