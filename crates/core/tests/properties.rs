//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the Model Generator.

use proptest::prelude::*;
use rascad_core::generator::generate_block;
use rascad_core::measures::steady_state_measures;
use rascad_markov::SteadyStateMethod;
use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::{BlockParams, GlobalParams, RedundancyParams, Scenario};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Transparent), Just(Scenario::Nontransparent)]
}

prop_compose! {
    fn arb_block()(
        k in 1u32..4,
        extra in 0u32..4,
        mtbf in 1_000.0..1e7f64,
        fit in 0.0..50_000.0f64,
        diag in 0.0..120.0f64,
        corr in 1.0..120.0f64,
        verif in 0.0..60.0f64,
        tresp in 0.0..48.0f64,
        pcd in 0.5..1.0f64,
        plf in 0.0..0.5f64,
        mttdlf in 1.0..720.0f64,
        recovery in arb_scenario(),
        tfo in 0.0..60.0f64,
        pspf in 0.0..0.2f64,
        tspf in 0.0..120.0f64,
        repair in arb_scenario(),
        treint in 0.0..60.0f64,
    ) -> BlockParams {
        let n = k + extra;
        let mut p = BlockParams::new("P", n, k)
            .with_mtbf(Hours(mtbf))
            .with_transient_fit(Fit(fit))
            .with_mttr_parts(Minutes(diag), Minutes(corr), Minutes(verif))
            .with_service_response(Hours(tresp))
            .with_p_correct_diagnosis(pcd);
        p.redundancy = if n > k {
            Some(RedundancyParams {
                p_latent_fault: plf,
                mttdlf: Hours(mttdlf),
                recovery,
                failover_time: Minutes(tfo),
                p_spf: pspf,
                spf_recovery_time: Minutes(tspf),
                repair,
                reintegration_time: Minutes(treint),
            })
        } else {
            None
        };
        p
    }
}

proptest! {
    /// Every generated chain builds, is irreducible, and yields an
    /// availability in (0, 1].
    #[test]
    fn generated_chain_is_well_formed(p in arb_block()) {
        let g = GlobalParams::default();
        let model = generate_block(&p, &g).unwrap();
        // Ok is state 0, up states include it.
        prop_assert_eq!(model.chain.states()[0].label.as_str(), "Ok");
        let m = steady_state_measures(&model, SteadyStateMethod::Gth).unwrap();
        prop_assert!(m.availability > 0.0 && m.availability <= 1.0, "a={}", m.availability);
        prop_assert!(m.failure_rate >= 0.0);
        prop_assert!(m.yearly_downtime_minutes >= 0.0);
    }

    /// The two independent steady-state solvers agree far inside the
    /// paper's 0.2% validation threshold.
    #[test]
    fn gth_and_lu_agree(p in arb_block()) {
        let g = GlobalParams::default();
        let model = generate_block(&p, &g).unwrap();
        let a = steady_state_measures(&model, SteadyStateMethod::Gth).unwrap();
        let b = steady_state_measures(&model, SteadyStateMethod::Lu).unwrap();
        if a.yearly_downtime_minutes > 1e-9 {
            let rel = (a.yearly_downtime_minutes - b.yearly_downtime_minutes).abs()
                / a.yearly_downtime_minutes;
            prop_assert!(rel < 0.002, "relative downtime error {rel}");
        }
    }

    /// Improving MTBF can only improve availability.
    #[test]
    fn availability_monotone_in_mtbf(p in arb_block(), factor in 1.5..100.0f64) {
        let g = GlobalParams::default();
        let base = steady_state_measures(&generate_block(&p, &g).unwrap(), SteadyStateMethod::Gth)
            .unwrap();
        let mut better = p.clone();
        better.mtbf = Hours(p.mtbf.0 * factor);
        let improved =
            steady_state_measures(&generate_block(&better, &g).unwrap(), SteadyStateMethod::Gth)
                .unwrap();
        prop_assert!(
            improved.availability >= base.availability - 1e-12,
            "{} -> {}",
            base.availability,
            improved.availability
        );
    }

    /// Adding a spare (same K, larger N) never hurts availability when
    /// recovery/repair are transparent and diagnosis is perfect. (With
    /// imperfect diagnosis a spare can legitimately *hurt*: more
    /// components mean more repair actions and therefore more
    /// service-error downtime — a real trade-off RAScad exposes.)
    #[test]
    fn spares_help_under_transparent_recovery(p in arb_block()) {
        prop_assume!(p.is_redundant());
        let mut p = p.with_p_correct_diagnosis(1.0);
        let mut r = p.redundancy.unwrap();
        r.recovery = Scenario::Transparent;
        r.repair = Scenario::Transparent;
        r.p_spf = 0.0;
        r.p_latent_fault = 0.0;
        p.redundancy = Some(r);
        let g = GlobalParams::default();
        let base =
            steady_state_measures(&generate_block(&p, &g).unwrap(), SteadyStateMethod::Gth)
                .unwrap();
        let mut more = p.clone();
        more.quantity += 1;
        let better =
            steady_state_measures(&generate_block(&more, &g).unwrap(), SteadyStateMethod::Gth)
                .unwrap();
        prop_assert!(
            better.availability >= base.availability - 1e-12,
            "{} -> {}",
            base.availability,
            better.availability
        );
    }

    /// State count depends only on (N, K, scenarios, which probabilities
    /// are nonzero), never on the magnitudes of rates — generation is
    /// structural.
    #[test]
    fn state_count_is_structural(p in arb_block(), mtbf2 in 1_000.0..1e7f64) {
        let g = GlobalParams::default();
        let a = generate_block(&p, &g).unwrap();
        let mut q = p.clone();
        q.mtbf = Hours(mtbf2);
        let b = generate_block(&q, &g).unwrap();
        prop_assert_eq!(a.state_count(), b.state_count());
        prop_assert_eq!(a.transition_count(), b.transition_count());
    }
}
