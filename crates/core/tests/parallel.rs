//! Equivalence and freshness guarantees of the parallel solve engine.
//!
//! The engine's contract is that thread count and cache state change
//! wall-clock time only: every result is bit-identical to the
//! sequential, cache-free reference. These tests exercise that contract
//! on a hierarchical spec and a single-parameter sweep across thread
//! counts {1, 2, 8}, and prove a poisoned cache entry can never leak a
//! stale solution into a solve.

// Bit-identical results are the contract under test, and replication
// counts cast to f64 stay far below 2^52.
#![allow(clippy::float_cmp, clippy::cast_precision_loss)]

use rascad_core::engine::Engine;
use rascad_core::measures::BlockMeasures;
use rascad_core::sweep::lin_space;
use rascad_spec::units::{Hours, Minutes};
use rascad_spec::{
    Block, BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec,
};

/// A two-level hierarchy with a mix of template types.
fn hierarchy_spec() -> SystemSpec {
    let mut internals = Diagram::new("Internals");
    internals.push(BlockParams::new("CPU", 4, 3).with_mtbf(Hours(500_000.0)).with_redundancy(
        RedundancyParams {
            p_latent_fault: 0.05,
            mttdlf: Hours(24.0),
            recovery: Scenario::Nontransparent,
            failover_time: Minutes(5.0),
            p_spf: 0.01,
            spf_recovery_time: Minutes(10.0),
            repair: Scenario::Transparent,
            reintegration_time: Minutes(0.0),
        },
    ));
    internals.push(BlockParams::new("Memory", 2, 1).with_mtbf(Hours(800_000.0)));
    let mut root = Diagram::new("Sys");
    root.push_block(Block::with_subdiagram(
        BlockParams::new("Box", 1, 1).with_mtbf(Hours(10_000.0)),
        internals,
    ));
    root.push(BlockParams::new("Drives", 2, 1).with_mtbf(Hours(300_000.0)));
    root.push(BlockParams::new("Switch", 1, 1).with_mtbf(Hours(150_000.0)));
    SystemSpec::new(root, GlobalParams::default())
}

/// A flat many-block spec where a sweep touches exactly one block.
fn sweep_base(blocks: usize) -> SystemSpec {
    let mut d = Diagram::new("Cluster");
    d.push(BlockParams::new("Target", 2, 1).with_mtbf(Hours(20_000.0)));
    for i in 1..blocks {
        d.push(
            BlockParams::new(format!("Fixed{i}"), 2, 1)
                .with_mtbf(Hours(50_000.0 + 10_000.0 * i as f64)),
        );
    }
    SystemSpec::new(d, GlobalParams::default())
}

#[test]
fn hierarchy_is_bit_identical_across_thread_counts() {
    let spec = hierarchy_spec();
    let reference = Engine::sequential().solve_spec(&spec).unwrap();
    for threads in [1, 2, 8] {
        let engine = Engine::with_threads(threads);
        let first = engine.solve_spec(&spec).unwrap();
        // A second solve through the now-warm cache must also be
        // bit-identical, not merely close.
        let cached = engine.solve_spec(&spec).unwrap();
        assert_eq!(first, reference, "threads={threads} (cold)");
        assert_eq!(cached, reference, "threads={threads} (warm)");
        assert_eq!(
            first.system.availability.to_bits(),
            reference.system.availability.to_bits(),
            "threads={threads}"
        );
    }
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let base = sweep_base(6);
    let values = lin_space(1.0, 24.0, 10).unwrap();
    let apply = |spec: &mut SystemSpec, v: f64| {
        spec.root.find_mut("Target").unwrap().params.service_response = Hours(v);
    };
    let reference = Engine::sequential().sweep(&base, &values, apply).unwrap();
    for threads in [1, 2, 8] {
        let got = Engine::with_threads(threads).sweep(&base, &values, apply).unwrap();
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g, r, "threads={threads} value={}", r.value);
            assert_eq!(
                g.solution.system.yearly_downtime_minutes.to_bits(),
                r.solution.system.yearly_downtime_minutes.to_bits(),
                "threads={threads} value={}",
                r.value
            );
        }
    }
}

#[test]
fn twenty_point_sweep_exceeds_80_percent_hit_rate() {
    // 10 blocks, 20 points, one swept parameter: the 9 untouched blocks
    // miss once each and hit on the remaining 19 points, so the hit
    // rate is 19*9/200 = 85.5% for both the steady and mission caches.
    let base = sweep_base(10);
    let values = lin_space(0.5, 48.0, 20).unwrap();
    let engine = Engine::with_threads(2);
    let points = engine
        .sweep(&base, &values, |spec, v| {
            spec.root.find_mut("Target").unwrap().params.service_response = Hours(v);
        })
        .unwrap();
    assert_eq!(points.len(), 20);
    let stats = engine.cache_stats();
    assert!(
        stats.hit_rate() > 0.8,
        "hit rate {:.3} (hits {} misses {})",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
}

#[test]
fn mutated_block_always_misses_and_resolves_fresh() {
    // Sweep-style mutation through one engine: the mutated block's
    // chain changes content, so its old entry must never be served.
    let base = sweep_base(4);
    let engine = Engine::with_threads(2);
    let before = engine.solve_spec(&base).unwrap();

    let mut mutated = base.clone();
    mutated.root.find_mut("Target").unwrap().params.mtbf = Hours(5_000.0);
    let through_warm_cache = engine.solve_spec(&mutated).unwrap();
    let fresh = Engine::sequential().solve_spec(&mutated).unwrap();
    assert_eq!(through_warm_cache, fresh);
    assert_ne!(through_warm_cache.system.availability, before.system.availability);
}

#[test]
fn poisoned_cache_entry_never_serves_a_stale_solution() {
    use rascad_core::generate_block;
    use rascad_markov::SteadyStateMethod;

    let engine = Engine::with_threads(1);
    let globals = GlobalParams::default();
    let victim =
        generate_block(&BlockParams::new("Target", 2, 1).with_mtbf(Hours(20_000.0)), &globals)
            .unwrap();
    let wrong =
        generate_block(&BlockParams::new("Wrong", 1, 1).with_mtbf(Hours(100.0)), &globals).unwrap();
    // Plant an entry under the victim's fingerprint that stores a
    // different chain and absurd measures — the equality guard must
    // treat it as a miss.
    engine.cache().unwrap().poison_steady(
        &victim,
        SteadyStateMethod::Gth,
        wrong.chain.clone(),
        BlockMeasures::from_availability(0.01, 42.0),
    );
    let spec = sweep_base(4);
    let poisoned = engine.solve_spec(&spec).unwrap();
    let fresh = Engine::sequential().solve_spec(&spec).unwrap();
    assert_eq!(poisoned, fresh);
    let target = poisoned.block("Cluster/Target").unwrap();
    assert!(target.measures.availability > 0.9, "{}", target.measures.availability);
}

#[test]
fn sparse_rung_is_bit_identical_across_thread_counts() {
    // Two large k-out-of-n blocks expand to birth–death chains beyond
    // the sparse threshold, so their solves run on the sparse iterative
    // rung. Its sweep order is fixed, so thread count must not change a
    // single bit of the result. A one-day mission keeps the transient
    // interval-availability solve (uniformization steps scale with
    // rate × horizon) cheap in debug builds.
    let mut d = Diagram::new("Farm");
    for (name, n, k) in [("ShelfA", 600_u32, 595_u32), ("ShelfB", 900, 894)] {
        d.push(
            BlockParams::new(name, n, k)
                .with_mtbf(Hours(100_000.0))
                .with_redundancy(RedundancyParams::default()),
        );
    }
    let globals = GlobalParams { mission_time: Hours(24.0), ..GlobalParams::default() };
    let spec = SystemSpec::new(d, globals);
    let reference = Engine::sequential().solve_spec(&spec).unwrap();
    for threads in [1, 8] {
        let got = Engine::with_threads(threads).solve_spec(&spec).unwrap();
        assert_eq!(got, reference, "threads={threads}");
        assert_eq!(
            got.system.availability.to_bits(),
            reference.system.availability.to_bits(),
            "threads={threads}"
        );
    }
}
