//! Performability analysis — capacity-weighted reward models.
//!
//! The paper's reward construction marks states 1 (up) or 0 (down); its
//! bibliography leans on Meyer's performability work and Markov reward
//! models (paper refs 4 and 6). This module implements the natural
//! extension: in a redundant block's degraded states the system is up
//! but delivering *reduced capacity* — level `j` of an `N`-unit block
//! has `N − j` working units, reward `(N − j)/N`. The expected reward is
//! then the steady-state (or interval) *performability* rather than
//! plain availability.

use rascad_markov::{Ctmc, CtmcBuilder, SteadyStateMethod};

use crate::error::CoreError;
use crate::generator::BlockModel;

/// Performability measures of one block model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformabilityMeasures {
    /// Steady-state expected delivered capacity, in `[0, 1]`.
    pub steady_state_capacity: f64,
    /// Plain steady-state availability (for reference).
    pub availability: f64,
    /// Capacity lost to degraded-but-up operation:
    /// `availability − steady_state_capacity`.
    pub degradation_loss: f64,
}

/// Rebuilds a block's chain with capacity rewards.
///
/// Up states are re-weighted by working-unit fraction (parsed from the
/// level structure of the state labels); down states keep reward 0.
/// Non-redundant blocks are returned unchanged (their only up state has
/// full capacity).
#[must_use]
pub fn capacity_chain(model: &BlockModel) -> Ctmc {
    let n = f64::from(model.quantity);
    let mut b = CtmcBuilder::new();
    for s in model.chain.states() {
        let reward = if s.reward > 0.0 {
            let failed = level_of(&s.label);
            ((n - failed as f64) / n).max(0.0)
        } else {
            0.0
        };
        b.add_state(s.label.clone(), reward);
    }
    for t in model.chain.transitions() {
        b.add_transition(t.from, t.to, t.rate);
    }
    b.build().expect("reweighting a valid chain keeps it valid")
}

/// Number of permanently failed units implied by an up-state label
/// (`Ok` = 0, `PF3`/`Latent3` = 3).
fn level_of(label: &str) -> u32 {
    for prefix in ["PF", "Latent"] {
        if let Some(rest) = label.strip_prefix(prefix) {
            if let Ok(j) = rest.parse::<u32>() {
                return j;
            }
        }
    }
    0
}

/// Computes performability measures for one block model.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the chain cannot be solved.
pub fn performability(
    model: &BlockModel,
    method: SteadyStateMethod,
) -> Result<PerformabilityMeasures, CoreError> {
    let wrap = |source| CoreError::Markov { block: model.name.clone(), source };
    let cap = capacity_chain(model);
    let pi = cap.steady_state(method).map_err(wrap)?;
    let capacity = cap.expected_reward(&pi);
    let availability = model.chain.expected_reward(&pi);
    Ok(PerformabilityMeasures {
        steady_state_capacity: capacity,
        availability,
        degradation_loss: availability - capacity,
    })
}

/// Expected time-averaged delivered capacity over `(0, horizon)`,
/// starting from `Ok`.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] for bad horizons or solver failures.
pub fn interval_capacity(model: &BlockModel, horizon_hours: f64) -> Result<f64, CoreError> {
    let cap = capacity_chain(model);
    let mut p0 = vec![0.0; cap.len()];
    p0[model.ok_state()] = 1.0;
    let sol = rascad_markov::transient::solve(
        &cap,
        &p0,
        horizon_hours,
        rascad_markov::TransientOptions::default(),
    )
    .map_err(|source| CoreError::Markov { block: model.name.clone(), source })?;
    Ok(sol.interval_reward)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{BlockParams, GlobalParams};

    fn redundant(n: u32, k: u32) -> BlockModel {
        let p = BlockParams::new("X", n, k)
            .with_mtbf(Hours(5_000.0))
            .with_mttr_parts(Minutes(60.0), Minutes(60.0), Minutes(0.0))
            .with_service_response(Hours(4.0));
        generate_block(&p, &GlobalParams::default()).unwrap()
    }

    #[test]
    fn label_level_parsing() {
        assert_eq!(level_of("Ok"), 0);
        assert_eq!(level_of("PF2"), 2);
        assert_eq!(level_of("Latent1"), 1);
        assert_eq!(level_of("AR1"), 0); // not an up state anyway
    }

    #[test]
    fn capacity_below_availability_for_redundant_blocks() {
        let model = redundant(4, 2);
        let m = performability(&model, SteadyStateMethod::Gth).unwrap();
        assert!(m.steady_state_capacity < m.availability);
        assert!(m.degradation_loss > 0.0);
        // With MTBF 5000 h and a ~54 h scheduled repair cycle, roughly
        // 4λ·54 ≈ 4% of time is spent one unit down (25% capacity loss),
        // so expect capacity ≈ 0.99 but clearly above 0.97.
        assert!(m.steady_state_capacity > 0.97, "{}", m.steady_state_capacity);
    }

    #[test]
    fn non_redundant_block_has_no_degradation() {
        let p = BlockParams::new("X", 1, 1).with_mtbf(Hours(10_000.0));
        let model = generate_block(&p, &GlobalParams::default()).unwrap();
        let m = performability(&model, SteadyStateMethod::Gth).unwrap();
        assert!((m.degradation_loss).abs() < 1e-15);
        assert!((m.steady_state_capacity - m.availability).abs() < 1e-15);
    }

    #[test]
    fn capacity_rewards_are_fractions() {
        let model = redundant(4, 1);
        let cap = capacity_chain(&model);
        let ok = cap.state_by_label("Ok").unwrap();
        assert_eq!(cap.states()[ok].reward, 1.0);
        let pf2 = cap.state_by_label("PF2").unwrap();
        assert_eq!(cap.states()[pf2].reward, 0.5);
        let down = cap.state_by_label("PF4").unwrap();
        assert_eq!(cap.states()[down].reward, 0.0);
    }

    #[test]
    fn interval_capacity_between_steady_state_and_one() {
        let model = redundant(4, 2);
        let ss = performability(&model, SteadyStateMethod::Gth).unwrap();
        let short = interval_capacity(&model, 24.0).unwrap();
        let long = interval_capacity(&model, 500_000.0).unwrap();
        assert!(short >= long - 1e-12);
        assert!(short <= 1.0);
        // The initial all-up transient biases the average up by
        // ~ degradation·tau/T ≈ 1e-6 at this horizon.
        assert!((long - ss.steady_state_capacity).abs() < 1e-5, "{long}");
    }

    #[test]
    fn more_spares_cost_more_capacity_headroom() {
        // A wider margin means more time spent in (mildly) degraded
        // levels, so degradation loss grows with N at fixed K.
        let small = performability(&redundant(3, 2), SteadyStateMethod::Gth).unwrap();
        let large = performability(&redundant(6, 2), SteadyStateMethod::Gth).unwrap();
        assert!(large.degradation_loss > small.degradation_loss);
    }
}
