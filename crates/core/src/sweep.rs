//! Parametric analysis — re-solve a specification across a parameter
//! range ("graphical output and parametric analysis capability").

use rascad_spec::SystemSpec;

use crate::error::CoreError;
use crate::hierarchy::SystemSolution;

/// One point of a parametric sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The parameter value this point was solved at.
    pub value: f64,
    /// The full system solution at this value.
    pub solution: SystemSolution,
}

/// Sweeps a parameter: for each value, `apply(spec, value)` mutates a
/// copy of the base spec, which is then solved.
///
/// Runs on the process-wide [`crate::engine::Engine`]: points are
/// solved concurrently and blocks whose chains are unchanged across
/// points hit the block-solve cache. Results are in `values` order and
/// bit-identical to a sequential sweep.
///
/// The `apply` closure typically adjusts one block parameter through
/// [`rascad_spec::Diagram::find_mut`]:
///
/// ```
/// use rascad_core::sweep;
/// use rascad_spec::units::Hours;
/// use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};
///
/// # fn main() -> Result<(), rascad_core::CoreError> {
/// let mut d = Diagram::new("Sys");
/// d.push(BlockParams::new("A", 1, 1));
/// let base = SystemSpec::new(d, GlobalParams::default());
/// let points = sweep(&base, &[1.0, 2.0, 4.0], |spec, v| {
///     spec.root.find_mut("A").unwrap().params.service_response = Hours(v);
/// })?;
/// assert!(points[0].solution.system.availability
///     > points[2].solution.system.availability);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidRequest`] when `values` is empty.
/// * Any solve error from the mutated spec (e.g. the closure produced an
///   invalid parameter).
pub fn sweep(
    base: &SystemSpec,
    values: &[f64],
    apply: impl FnMut(&mut SystemSpec, f64),
) -> Result<Vec<SweepPoint>, CoreError> {
    crate::engine::Engine::global().sweep(base, values, apply)
}

/// Generates `count` logarithmically spaced values in `[lo, hi]` — the
/// usual axis for MTBF/MTTR sweeps.
///
/// # Errors
///
/// Returns [`CoreError::InvalidRequest`] unless `0 < lo < hi` and
/// `count >= 2`.
pub fn log_space(lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, CoreError> {
    if !(lo > 0.0 && hi > lo) || count < 2 {
        return Err(CoreError::InvalidRequest { what: format!("log_space({lo}, {hi}, {count})") });
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    Ok((0..count).map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp()).collect())
}

/// Generates `count` linearly spaced values in `[lo, hi]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidRequest`] unless `lo < hi` and
/// `count >= 2`.
pub fn lin_space(lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, CoreError> {
    if !lo.is_finite() || !hi.is_finite() || hi <= lo || count < 2 {
        return Err(CoreError::InvalidRequest { what: format!("lin_space({lo}, {hi}, {count})") });
    }
    Ok((0..count).map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn base() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(10_000.0)));
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn downtime_grows_with_service_response() {
        let points = sweep(&base(), &[0.0, 4.0, 24.0], |s, v| {
            s.root.find_mut("A").unwrap().params.service_response = Hours(v);
        })
        .unwrap();
        let dt: Vec<f64> =
            points.iter().map(|p| p.solution.system.yearly_downtime_minutes).collect();
        assert!(dt[0] < dt[1] && dt[1] < dt[2], "{dt:?}");
    }

    #[test]
    fn availability_grows_with_mtbf() {
        let points = sweep(&base(), &log_space(1_000.0, 1_000_000.0, 4).unwrap(), |s, v| {
            s.root.find_mut("A").unwrap().params.mtbf = Hours(v);
        })
        .unwrap();
        for w in points.windows(2) {
            assert!(w[1].solution.system.availability > w[0].solution.system.availability);
        }
    }

    #[test]
    fn empty_values_rejected() {
        assert!(matches!(sweep(&base(), &[], |_, _| {}), Err(CoreError::InvalidRequest { .. })));
    }

    #[test]
    fn closure_induced_invalid_spec_surfaces() {
        let r = sweep(&base(), &[-1.0], |s, v| {
            s.root.find_mut("A").unwrap().params.mtbf = Hours(v);
        });
        assert!(matches!(r, Err(CoreError::Spec(_))));
    }

    #[test]
    fn spacing_helpers() {
        let ls = lin_space(0.0, 10.0, 5).unwrap();
        assert_eq!(ls, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        let gs = log_space(1.0, 100.0, 3).unwrap();
        assert!((gs[1] - 10.0).abs() < 1e-9);
        assert!(log_space(0.0, 1.0, 3).is_err());
        assert!(lin_space(1.0, 1.0, 3).is_err());
        assert!(log_space(1.0, 10.0, 1).is_err());
    }
}
