//! Ablation transforms — isolate the contribution of each modeled RAS
//! mechanism.
//!
//! The generator models seven RAS characteristics (paper Section 2:
//! redundancy, fault type, detection, recovery, logistics, repair,
//! reintegration). Each transform below switches one of them off across
//! a whole specification, so experiments can measure how much each
//! mechanism contributes to the predicted downtime. Used by the
//! `bench_ablation` experiment.

use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::{Scenario, SystemSpec};

/// Returns a copy with perfect diagnosis everywhere (`Pcd = 1`):
/// removes the service-error mechanism.
#[must_use]
pub fn perfect_diagnosis(spec: &SystemSpec) -> SystemSpec {
    transform(spec, |p| p.p_correct_diagnosis = 1.0)
}

/// Returns a copy with no latent faults (`Plf = 0`): every fault is
/// detected immediately.
#[must_use]
pub fn no_latent_faults(spec: &SystemSpec) -> SystemSpec {
    transform(spec, |p| {
        if let Some(r) = &mut p.redundancy {
            r.p_latent_fault = 0.0;
        }
    })
}

/// Returns a copy with no transient faults (`λt = 0`).
#[must_use]
pub fn no_transients(spec: &SystemSpec) -> SystemSpec {
    transform(spec, |p| p.transient_fit = Fit(0.0))
}

/// Returns a copy where every automatic recovery is transparent and
/// perfect (no failover downtime, no SPF risk).
#[must_use]
pub fn perfect_recovery(spec: &SystemSpec) -> SystemSpec {
    transform(spec, |p| {
        if let Some(r) = &mut p.redundancy {
            r.recovery = Scenario::Transparent;
            r.failover_time = Minutes(0.0);
            r.p_spf = 0.0;
        }
    })
}

/// Returns a copy with instantaneous logistics (`Tresp = MTTM = 0`):
/// spare parts and service are always on site.
#[must_use]
pub fn instant_logistics(spec: &SystemSpec) -> SystemSpec {
    let mut out = transform(spec, |p| p.service_response = Hours(0.0));
    out.globals.mttm = Hours(0.0);
    out
}

/// Returns a copy with every redundancy stripped (`K := N`, redundancy
/// parameters removed): measures what the spares buy.
#[must_use]
pub fn strip_redundancy(spec: &SystemSpec) -> SystemSpec {
    transform(spec, |p| {
        p.min_quantity = p.quantity;
        p.redundancy = None;
    })
}

fn transform(spec: &SystemSpec, f: impl Fn(&mut rascad_spec::BlockParams) + Copy) -> SystemSpec {
    let mut out = spec.clone();
    out.root.walk_mut(&mut |b| f(&mut b.params));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::solve_spec;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::{BlockParams, Diagram, GlobalParams, RedundancyParams};

    fn baseline() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(
            BlockParams::new("Pair", 2, 1)
                .with_mtbf(Hours(8_000.0))
                .with_transient_fit(Fit(10_000.0))
                .with_mttr_parts(Minutes(60.0), Minutes(60.0), Minutes(0.0))
                .with_service_response(Hours(6.0))
                .with_p_correct_diagnosis(0.9)
                .with_redundancy(RedundancyParams {
                    p_latent_fault: 0.1,
                    mttdlf: Hours(48.0),
                    recovery: Scenario::Nontransparent,
                    failover_time: Minutes(10.0),
                    p_spf: 0.05,
                    spf_recovery_time: Minutes(30.0),
                    repair: Scenario::Nontransparent,
                    reintegration_time: Minutes(10.0),
                }),
        );
        d.push(BlockParams::new("Single", 1, 1).with_mtbf(Hours(50_000.0)));
        SystemSpec::new(d, GlobalParams::default())
    }

    fn downtime(spec: &SystemSpec) -> f64 {
        solve_spec(spec).unwrap().system.yearly_downtime_minutes
    }

    #[test]
    fn every_ablation_validates_and_helps() {
        let base = baseline();
        let base_dt = downtime(&base);
        for (name, ablated) in [
            ("perfect_diagnosis", perfect_diagnosis(&base)),
            ("no_latent_faults", no_latent_faults(&base)),
            ("no_transients", no_transients(&base)),
            ("perfect_recovery", perfect_recovery(&base)),
            ("instant_logistics", instant_logistics(&base)),
        ] {
            ablated.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let dt = downtime(&ablated);
            assert!(dt <= base_dt + 1e-9, "{name}: {dt} vs baseline {base_dt}");
        }
    }

    #[test]
    fn stripping_redundancy_hurts() {
        let base = baseline();
        let stripped = strip_redundancy(&base);
        stripped.validate().unwrap();
        assert!(downtime(&stripped) > downtime(&base));
    }

    #[test]
    fn ablations_compose() {
        let base = baseline();
        let all = perfect_recovery(&no_transients(&no_latent_faults(&perfect_diagnosis(&base))));
        all.validate().unwrap();
        assert!(downtime(&all) < downtime(&base));
    }

    #[test]
    fn original_spec_unchanged() {
        let base = baseline();
        let copy = base.clone();
        let _ = perfect_diagnosis(&base);
        let _ = strip_redundancy(&base);
        assert_eq!(base, copy);
    }
}
