//! The measures RAScad reports (paper Section 4):
//!
//! * steady-state availability, failure and recovery rates;
//! * interval availability, failure and recovery rates for `(0, T)`;
//! * reliability model: MTTF, reliability at `T`, interval failure rate
//!   for `(0, T)`, hazard rate.

use rascad_markov::{absorbing, transient, SteadyStateMethod, TransientOptions};

use crate::certify::SolutionCertificate;
use crate::error::CoreError;
use crate::generator::BlockModel;

/// Minutes in a (non-leap) year, used for yearly-downtime reporting.
pub const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;

/// Steady-state availability measures of one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeasures {
    /// Steady-state availability.
    pub availability: f64,
    /// `1 − availability`.
    pub unavailability: f64,
    /// Expected downtime per year, minutes — the headline figure RAScad
    /// validation uses ("the relative errors in yearly downtime are all
    /// less than 0.2%").
    pub yearly_downtime_minutes: f64,
    /// Frequency of up→down transitions (system failures per hour).
    pub failure_rate: f64,
    /// Reciprocal of the mean downtime per failure (per hour).
    pub recovery_rate: f64,
    /// Mean time between system failures, hours (`1 / failure_rate`).
    pub mtbf_hours: f64,
    /// Mean downtime per failure, hours
    /// (`unavailability / failure_rate`).
    pub mean_downtime_hours: f64,
}

impl BlockMeasures {
    /// Derives the measure set from an availability and a failure
    /// frequency.
    #[must_use]
    pub fn from_availability(availability: f64, failure_rate: f64) -> Self {
        let unavailability = (1.0 - availability).max(0.0);
        let mean_downtime_hours =
            if failure_rate > 0.0 { unavailability / failure_rate } else { 0.0 };
        BlockMeasures {
            availability,
            unavailability,
            yearly_downtime_minutes: unavailability * MINUTES_PER_YEAR,
            failure_rate,
            recovery_rate: if mean_downtime_hours > 0.0 { 1.0 / mean_downtime_hours } else { 0.0 },
            mtbf_hours: if failure_rate > 0.0 { 1.0 / failure_rate } else { f64::INFINITY },
            mean_downtime_hours,
        }
    }
}

/// Interval (mission-time) measures of one model over `(0, T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMeasures {
    /// The horizon `T`, hours.
    pub horizon_hours: f64,
    /// Expected fraction of `(0, T)` spent up.
    pub interval_availability: f64,
    /// Point availability at `T`.
    pub point_availability: f64,
}

/// Reliability-model measures of one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityMeasures {
    /// Mean time to first system failure, hours.
    pub mttf_hours: f64,
    /// Probability of surviving the mission time without a system
    /// failure.
    pub reliability_at_mission: f64,
    /// Equivalent constant failure rate over `(0, T)`:
    /// `−ln R(T) / T`.
    pub interval_failure_rate: f64,
    /// Hazard rate estimated at the mission time over a small increment.
    pub hazard_rate_at_mission: f64,
}

/// Computes steady-state measures for a generated block model.
///
/// The solve goes through the fallback ladder
/// ([`crate::solve::steady_state_ladder`]) with default budgets, so a
/// retryable failure of the requested method is transparently retried
/// on the stronger rungs before an error is reported.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the chain cannot be solved.
pub fn steady_state_measures(
    model: &BlockModel,
    method: SteadyStateMethod,
) -> Result<BlockMeasures, CoreError> {
    steady_state_measures_forced(model, method, None)
}

pub(crate) fn steady_state_measures_forced(
    model: &BlockModel,
    method: SteadyStateMethod,
    forced: Option<crate::solve::ForcedFailure>,
) -> Result<BlockMeasures, CoreError> {
    steady_state_measures_certified(model, method, &rascad_markov::SolveOptions::default(), forced)
        .map(|(measures, _)| measures)
}

/// [`steady_state_measures`] plus the [`SolutionCertificate`] the
/// residual checks issue for the solved distribution.
///
/// A [`crate::certify::Verdict::Fail`] certificate is an error
/// ([`CoreError::Certification`]): a solve whose result flunks the
/// independent `‖πQ‖∞` / `Σπ−1` checks must not be reported as a
/// number. `Warn` certificates pass through — the caller sees the thin
/// margin in the certificate itself.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the chain cannot be solved, or
/// [`CoreError::Certification`] if it solves but fails certification.
pub fn steady_state_measures_with_certificate(
    model: &BlockModel,
    method: SteadyStateMethod,
) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
    steady_state_measures_certified(model, method, &rascad_markov::SolveOptions::default(), None)
}

/// [`steady_state_measures_with_certificate`] with caller-supplied
/// solve budgets — the entry point long-lived callers (the serve
/// daemon) use to propagate per-request deadlines and cancellation
/// tokens into the solver loops.
///
/// # Errors
///
/// As [`steady_state_measures_with_certificate`], plus
/// [`CoreError::Markov`] wrapping `MarkovError::Cancelled` when the
/// request's cancellation token trips mid-solve.
pub fn steady_state_measures_with_certificate_opts(
    model: &BlockModel,
    method: SteadyStateMethod,
    options: &rascad_markov::SolveOptions,
) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
    steady_state_measures_certified(model, method, options, None)
}

pub(crate) fn steady_state_measures_certified(
    model: &BlockModel,
    method: SteadyStateMethod,
    options: &rascad_markov::SolveOptions,
    forced: Option<crate::solve::ForcedFailure>,
) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
    let outcome = crate::solve::steady_state_ladder_outcome(&model.chain, method, options, forced)
        .map_err(|source| CoreError::Markov { block: model.name.clone(), source })?;
    let mut pi = outcome.pi;
    if forced == Some(crate::solve::ForcedFailure::NanPi) {
        // Injected numerical corruption *after* a successful solve: the
        // certificate — not any solver-internal check — must catch it.
        pi.fill(f64::NAN);
    }
    let certificate =
        crate::certify::certify_steady(&model.chain, &pi, outcome.method, outcome.trail);
    if certificate.verdict == crate::certify::Verdict::Fail {
        return Err(CoreError::Certification {
            block: model.name.clone(),
            residual: certificate.residual_inf,
            prob_mass_error: certificate.prob_mass_error,
        });
    }
    let availability = model.chain.expected_reward(&pi);
    let failure_rate = model.chain.failure_rate(&pi);
    Ok((BlockMeasures::from_availability(availability, failure_rate), certificate))
}

/// Computes interval measures over `(0, horizon)` starting from `Ok`.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] for invalid horizons or solver
/// failures.
pub fn interval_measures(
    model: &BlockModel,
    horizon_hours: f64,
) -> Result<IntervalMeasures, CoreError> {
    let mut p0 = vec![0.0; model.chain.len()];
    p0[model.ok_state()] = 1.0;
    let sol = transient::solve(&model.chain, &p0, horizon_hours, TransientOptions::default())
        .map_err(|source| CoreError::Markov { block: model.name.clone(), source })?;
    Ok(IntervalMeasures {
        horizon_hours,
        interval_availability: sol.interval_reward,
        point_availability: sol.point_reward,
    })
}

/// Computes reliability measures with the mission time `T`.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the chain has no down states or the
/// solver fails.
pub fn reliability_measures(
    model: &BlockModel,
    mission_hours: f64,
) -> Result<ReliabilityMeasures, CoreError> {
    let wrap = |source| CoreError::Markov { block: model.name.clone(), source };
    let mttf = absorbing::mttf(&model.chain, model.ok_state()).map_err(wrap)?;
    // Sample R at T and slightly past it for the hazard estimate.
    let dt = (mission_hours * 1e-3).max(1e-6);
    let curve = absorbing::reliability_curve(
        &model.chain,
        model.ok_state(),
        &[mission_hours, mission_hours + dt],
    )
    .map_err(wrap)?;
    let r = curve.reliability[0];
    Ok(ReliabilityMeasures {
        mttf_hours: mttf.mttf,
        reliability_at_mission: r,
        interval_failure_rate: if r > 0.0 && mission_hours > 0.0 {
            -r.ln() / mission_hours
        } else if mission_hours > 0.0 {
            f64::INFINITY
        } else {
            0.0
        },
        hazard_rate_at_mission: curve.hazard_rate[0],
    })
}

/// First-failure mode attribution for a block: which down state the
/// system first fails into, with probabilities (labels resolved,
/// sorted descending).
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the chain has no down states or the
/// linear solve fails.
pub fn failure_mode_attribution(model: &BlockModel) -> Result<Vec<(String, f64)>, CoreError> {
    let modes = absorbing::failure_modes(&model.chain, model.ok_state())
        .map_err(|source| CoreError::Markov { block: model.name.clone(), source })?;
    Ok(modes.into_iter().map(|(state, p)| (model.chain.states()[state].label.clone(), p)).collect())
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{BlockParams, GlobalParams};

    fn simple_model() -> BlockModel {
        let p = BlockParams::new("X", 1, 1)
            .with_mtbf(Hours(10_000.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0));
        generate_block(&p, &GlobalParams::default()).unwrap()
    }

    #[test]
    fn steady_state_consistency() {
        let m = simple_model();
        let bm = steady_state_measures(&m, SteadyStateMethod::Gth).unwrap();
        assert!((bm.availability + bm.unavailability - 1.0).abs() < 1e-12);
        assert!((bm.yearly_downtime_minutes - bm.unavailability * MINUTES_PER_YEAR).abs() < 1e-9);
        assert!((bm.mtbf_hours - 1.0 / bm.failure_rate).abs() < 1e-6);
        // Mean downtime is ~Tresp + MTTR = 5 h.
        assert!((bm.mean_downtime_hours - 5.0).abs() < 1e-6, "{}", bm.mean_downtime_hours);
        assert!((bm.recovery_rate - 1.0 / bm.mean_downtime_hours).abs() < 1e-9);
    }

    #[test]
    fn both_methods_agree() {
        let m = simple_model();
        let g = steady_state_measures(&m, SteadyStateMethod::Gth).unwrap();
        let l = steady_state_measures(&m, SteadyStateMethod::Lu).unwrap();
        assert!((g.availability - l.availability).abs() < 1e-12);
        assert!((g.failure_rate - l.failure_rate).abs() < 1e-15);
    }

    #[test]
    fn interval_availability_between_steady_state_and_one() {
        let m = simple_model();
        let ss = steady_state_measures(&m, SteadyStateMethod::Gth).unwrap();
        let iv = interval_measures(&m, 8760.0).unwrap();
        assert!(iv.interval_availability >= ss.availability - 1e-12);
        assert!(iv.interval_availability <= 1.0);
        // At a long horizon the point availability approaches steady
        // state.
        assert!((iv.point_availability - ss.availability).abs() < 1e-6);
    }

    #[test]
    fn reliability_measures_sane() {
        let m = simple_model();
        let rel = reliability_measures(&m, 8760.0).unwrap();
        // MTTF ~ MTBF = 10000 h for the single-component model.
        assert!((rel.mttf_hours - 10_000.0).abs() < 1.0, "{}", rel.mttf_hours);
        assert!((rel.reliability_at_mission - (-8760.0f64 / 10_000.0).exp()).abs() < 1e-6);
        assert!((rel.interval_failure_rate - 1e-4).abs() < 1e-8);
        assert!((rel.hazard_rate_at_mission - 1e-4).abs() < 2e-6);
    }

    #[test]
    fn failure_modes_of_type0_block() {
        let m = simple_model();
        let modes = failure_mode_attribution(&m).unwrap();
        let sum: f64 = modes.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Without transients configured here... the simple model has no
        // FIT either way; the dominant first-failure mode is the Waiting
        // (service response) state.
        assert_eq!(modes[0].0, "Waiting");
    }

    #[test]
    fn failure_modes_of_redundant_block() {
        let p = BlockParams::new("R", 2, 1).with_mtbf(Hours(10_000.0)).with_mttr_parts(
            Minutes(30.0),
            Minutes(20.0),
            Minutes(10.0),
        );
        let model = generate_block(&p, &GlobalParams::default()).unwrap();
        let modes = failure_mode_attribution(&model).unwrap();
        // Default redundancy is transparent/transparent with no SPF, so
        // the only down state is the exhausted-margin PF2.
        assert_eq!(modes.len(), 1);
        assert_eq!(modes[0].0, "PF2");
        assert!((modes[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_failure_rate_degenerates_gracefully() {
        let bm = BlockMeasures::from_availability(1.0, 0.0);
        assert_eq!(bm.mtbf_hours, f64::INFINITY);
        assert_eq!(bm.recovery_rate, 0.0);
        assert_eq!(bm.yearly_downtime_minutes, 0.0);
    }
}
