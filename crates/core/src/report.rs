//! Plain-text report generation (the paper lists "documentation
//! generation" among RAScad's features).

use std::fmt::Write as _;

use crate::hierarchy::SystemSolution;

/// Renders a human-readable availability report for a solved system.
///
/// A clean solve renders byte-identically to previous releases. A
/// degraded (best-effort) solve adds a `PARTIAL RESULT` banner with the
/// availability bounds after the headline measures, and a failure table
/// after the block table — existing lines are never reworded.
#[must_use]
pub fn system_report(title: &str, sol: &SystemSolution) -> String {
    let mut out = String::new();
    let m = &sol.system;
    let _ = writeln!(out, "RAScad availability report: {title}");
    let _ = writeln!(out, "{}", "=".repeat(28 + title.len()));
    if sol.is_degraded() {
        let (lo, hi) = sol.availability_bounds();
        let _ = writeln!(
            out,
            "PARTIAL RESULT: {} of {} block(s) failed to solve; system measures are optimistic",
            sol.failed.len(),
            sol.blocks.len() + sol.failed.len(),
        );
        let _ = writeln!(out, "True availability bounds         : [{lo:.9}, {hi:.9}]");
    }
    let _ = writeln!(out, "System steady-state availability : {:.9}", m.availability);
    let _ = writeln!(out, "System unavailability            : {:.3e}", m.unavailability);
    let _ =
        writeln!(out, "Yearly downtime                  : {:.2} min", m.yearly_downtime_minutes);
    let _ = writeln!(out, "System failure rate              : {:.3e} /h", m.failure_rate);
    let _ = writeln!(out, "System recovery rate             : {:.3e} /h", m.recovery_rate);
    let _ = writeln!(out, "System MTBF                      : {:.1} h", m.mtbf_hours);
    let _ = writeln!(
        out,
        "Interval availability (0,{:.0}h)  : {:.9}",
        m.mission_hours, m.interval_availability
    );
    let _ = writeln!(out, "Reliability at mission time      : {:.6}", m.reliability_at_mission);
    let _ = writeln!(out, "System MTTF                      : {:.1} h", m.mttf_hours);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<48} {:>5} {:>7} {:>14} {:>14}",
        "block", "type", "states", "availability", "downtime min/y"
    );
    for b in &sol.blocks {
        let indent = "  ".repeat(b.level.saturating_sub(1));
        let _ = writeln!(
            out,
            "{:<48} {:>5} {:>7} {:>14.9} {:>14.3}",
            format!("{indent}{}", b.path),
            b.model.model_type,
            b.model.state_count(),
            b.measures.availability,
            b.measures.yearly_downtime_minutes,
        );
    }
    if sol.is_degraded() {
        let _ = writeln!(out);
        let _ = writeln!(out, "failed blocks (rolled up optimistically as availability 1):");
        for f in &sol.failed {
            let _ = writeln!(out, "{:<48} {}", f.path, f.error);
        }
    }
    out
}

/// Renders the per-state dwell budget of one block: how many minutes
/// per year the block spends in each state, separating up (degraded)
/// from down states — the table a RAS engineer reads to see *where* the
/// downtime comes from.
///
/// # Errors
///
/// Returns [`crate::CoreError::Markov`] if the chain cannot be solved.
pub fn block_dwell_report(
    model: &crate::generator::BlockModel,
) -> Result<String, crate::CoreError> {
    let pi = model
        .chain
        .steady_state(rascad_markov::SteadyStateMethod::Gth)
        .map_err(|source| crate::CoreError::Markov { block: model.name.clone(), source })?;
    let mut rows: Vec<(usize, f64)> = pi.iter().copied().enumerate().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "state dwell budget for \"{}\" (type {}, {} states):",
        model.name,
        model.model_type,
        model.state_count()
    );
    let _ = writeln!(out, "{:<16} {:>5} {:>16} {:>14}", "state", "up?", "probability", "min/year");
    for (i, p) in rows {
        let s = &model.chain.states()[i];
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>16.6e} {:>14.3}",
            s.label,
            if s.reward > 0.0 { "up" } else { "DOWN" },
            p,
            p * crate::measures::MINUTES_PER_YEAR,
        );
    }
    Ok(out)
}

/// Renders a generated chain as Graphviz DOT (for the paper's "graphical
/// output").
#[must_use]
pub fn chain_dot(model: &crate::generator::BlockModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", model.name.replace('"', "'"));
    let _ = writeln!(out, "    rankdir=LR;");
    for (i, s) in model.chain.states().iter().enumerate() {
        let shape = if s.reward > 0.0 { "ellipse" } else { "box" };
        let _ = writeln!(out, "    s{i} [label=\"{}\", shape={shape}];", s.label.replace('"', "'"));
    }
    for t in model.chain.transitions() {
        let _ = writeln!(out, "    s{} -> s{} [label=\"{:.3e}\"];", t.from, t.to, t.rate);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use crate::hierarchy::solve_spec;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};

    fn solved() -> SystemSolution {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(10_000.0)));
        d.push(BlockParams::new("B", 2, 1));
        solve_spec(&SystemSpec::new(d, GlobalParams::default())).unwrap()
    }

    #[test]
    fn report_contains_key_lines() {
        let r = system_report("Test System", &solved());
        assert!(r.contains("Test System"));
        assert!(r.contains("Yearly downtime"));
        assert!(r.contains("Sys/A"));
        assert!(r.contains("Sys/B"));
        assert!(r.contains("Interval availability"));
    }

    #[test]
    fn dwell_report_accounts_for_the_whole_year() {
        let m = generate_block(&BlockParams::new("X", 2, 1), &GlobalParams::default()).unwrap();
        let text = block_dwell_report(&m).unwrap();
        assert!(text.contains("state dwell budget"));
        assert!(text.contains("Ok"));
        assert!(text.contains("DOWN"));
        // Sum of the printed min/year column ~ minutes per year.
        let total: f64 = text
            .lines()
            .skip(2)
            .filter_map(|l| l.split_whitespace().last()?.parse::<f64>().ok())
            .sum();
        assert!((total - 525_600.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn dot_output_is_well_formed() {
        let m = generate_block(&BlockParams::new("X", 2, 1), &GlobalParams::default()).unwrap();
        let dot = chain_dot(&m);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.trim_end().ends_with('}'));
        // One node line per state, one edge line per transition.
        assert_eq!(dot.matches("shape=").count(), m.state_count(),);
        assert_eq!(dot.matches(" -> ").count(), m.transition_count());
    }
}
