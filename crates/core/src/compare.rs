//! Architecture comparison.
//!
//! MG "is intended for use to analytically assess and *compare* RAS
//! quantities achievable by the computer architectures under design"
//! (paper Section 2). This module solves two candidate architectures
//! and reports the deltas on every headline measure.

use std::fmt;

use rascad_spec::SystemSpec;

use crate::error::CoreError;
use crate::hierarchy::{solve_spec, SystemMeasures};

/// Side-by-side measures of two candidate architectures.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchComparison {
    /// Name of candidate A.
    pub name_a: String,
    /// Name of candidate B.
    pub name_b: String,
    /// Measures of candidate A.
    pub a: SystemMeasures,
    /// Measures of candidate B.
    pub b: SystemMeasures,
}

impl ArchComparison {
    /// Yearly downtime delta `B − A` in minutes (negative = B better).
    #[must_use]
    pub fn downtime_delta_minutes(&self) -> f64 {
        self.b.yearly_downtime_minutes - self.a.yearly_downtime_minutes
    }

    /// Ratio of B's unavailability to A's (`< 1` = B better).
    #[must_use]
    pub fn unavailability_ratio(&self) -> f64 {
        if self.a.unavailability > 0.0 {
            self.b.unavailability / self.a.unavailability
        } else if self.b.unavailability > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// Which candidate has less downtime.
    #[must_use]
    pub fn winner(&self) -> &str {
        if self.b.yearly_downtime_minutes < self.a.yearly_downtime_minutes {
            &self.name_b
        } else {
            &self.name_a
        }
    }
}

impl fmt::Display for ArchComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "architecture comparison: {} vs {}", self.name_a, self.name_b)?;
        let row = |f: &mut fmt::Formatter<'_>, label: &str, a: f64, b: f64, unit: &str| {
            writeln!(f, "  {label:<28} {a:>14.6} {b:>14.6} {unit}")
        };
        writeln!(f, "  {:<28} {:>14} {:>14}", "measure", self.name_a, self.name_b)?;
        row(f, "availability", self.a.availability, self.b.availability, "")?;
        row(
            f,
            "yearly downtime",
            self.a.yearly_downtime_minutes,
            self.b.yearly_downtime_minutes,
            "min",
        )?;
        row(f, "MTBF", self.a.mtbf_hours, self.b.mtbf_hours, "h")?;
        row(f, "MTTF", self.a.mttf_hours, self.b.mttf_hours, "h")?;
        row(
            f,
            "reliability at mission",
            self.a.reliability_at_mission,
            self.b.reliability_at_mission,
            "",
        )?;
        write!(
            f,
            "  winner on downtime: {} ({:+.2} min/yr, unavailability ratio {:.3})",
            self.winner(),
            self.downtime_delta_minutes(),
            self.unavailability_ratio()
        )
    }
}

/// Solves both candidates and assembles the comparison.
///
/// # Errors
///
/// Propagates solve errors from either spec.
pub fn compare_architectures(
    name_a: impl Into<String>,
    spec_a: &SystemSpec,
    name_b: impl Into<String>,
    spec_b: &SystemSpec,
) -> Result<ArchComparison, CoreError> {
    Ok(ArchComparison {
        name_a: name_a.into(),
        name_b: name_b.into(),
        a: solve_spec(spec_a)?.system,
        b: solve_spec(spec_b)?.system,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn spec(mtbf: f64) -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(mtbf)));
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn better_mtbf_wins() {
        let cmp =
            compare_architectures("cheap", &spec(10_000.0), "premium", &spec(100_000.0)).unwrap();
        assert_eq!(cmp.winner(), "premium");
        assert!(cmp.downtime_delta_minutes() < 0.0);
        assert!(cmp.unavailability_ratio() < 1.0);
    }

    #[test]
    fn identical_specs_tie() {
        let cmp = compare_architectures("a", &spec(10_000.0), "b", &spec(10_000.0)).unwrap();
        assert!((cmp.unavailability_ratio() - 1.0).abs() < 1e-12);
        assert!(cmp.downtime_delta_minutes().abs() < 1e-9);
    }

    #[test]
    fn display_includes_all_measures() {
        let cmp = compare_architectures("a", &spec(10_000.0), "b", &spec(20_000.0)).unwrap();
        let s = cmp.to_string();
        for needle in ["availability", "yearly downtime", "MTBF", "MTTF", "winner"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn invalid_candidate_surfaces_error() {
        let bad = SystemSpec::new(Diagram::new("Empty"), GlobalParams::default());
        assert!(compare_architectures("a", &spec(1e4), "b", &bad).is_err());
    }
}
