//! RAScad Model Generator (MG) — the paper's primary contribution.
//!
//! This crate turns an engineering specification
//! ([`rascad_spec::SystemSpec`]) into the hierarchy of reliability block
//! diagrams and Markov chains the paper describes in Section 4, solves
//! it, and reports the measures RAScad reports:
//!
//! * steady-state availability, failure and recovery rates, yearly
//!   downtime;
//! * interval availability over `(0, T)` for the configured Mission
//!   Time;
//! * reliability-model measures: MTTF, reliability at `T`, interval
//!   failure rate, hazard rate.
//!
//! # Model generation
//!
//! Each MG diagram becomes a *serial RBD* of its blocks; each block
//! becomes one of five Markov chain templates:
//!
//! * **Type 0** (`N == K`, no redundancy) — [`generator::type0`].
//! * **Types 1–4** (`N > K`), indexed by transparent/nontransparent
//!   *automatic recovery* × transparent/nontransparent *repair* —
//!   [`generator::redundant`]. States are generated level-by-level for
//!   arbitrary `N` and `K` ("for larger N and K values, more states are
//!   needed and these states are all generated automatically").
//!
//! The full reconstruction of the chain templates (the paper shows them
//! only as figures) is documented in `DESIGN.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use rascad_core::solve_spec;
//! use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};
//! use rascad_spec::units::Hours;
//!
//! # fn main() -> Result<(), rascad_core::CoreError> {
//! let mut d = Diagram::new("Tiny");
//! d.push(BlockParams::new("CPU", 1, 1).with_mtbf(Hours(50_000.0)));
//! let spec = SystemSpec::new(d, GlobalParams::default());
//! let solution = solve_spec(&spec)?;
//! let m = &solution.system;
//! assert!(m.availability > 0.999 && m.availability < 1.0);
//! println!("yearly downtime: {:.1} min", m.yearly_downtime_minutes);
//! # Ok(())
//! # }
//! ```

// Counts cast to f64 throughout (state counts, cache sizes, grid
// indices) stay far below 2^52, so the cast is exact in practice.
#![allow(clippy::cast_precision_loss)]
pub mod ablate;
pub mod cache;
pub mod certify;
pub mod compare;
pub mod engine;
pub mod error;
pub mod generator;
pub mod hierarchy;
pub mod measures;
pub mod performability;
pub mod report;
pub mod solve;
pub mod sweep;

pub use cache::{CacheStats, MissionMeasures, SolveCache};
pub use certify::{certify_steady, certify_transient, SolutionCertificate, Verdict};
pub use compare::{compare_architectures, ArchComparison};
pub use engine::{default_threads, set_thread_override, Engine};
pub use error::{CoreError, EngineError};
pub use generator::{generate_block, BlockModel};
pub use hierarchy::{
    solve_spec, solve_spec_best_effort, BlockOutcome, BlockSolution, FailedBlock, SystemMeasures,
    SystemSolution,
};
pub use measures::{BlockMeasures, IntervalMeasures, ReliabilityMeasures};
pub use performability::{performability, PerformabilityMeasures};
pub use solve::{
    method_name, select_method, solve_block, steady_state_ladder, DENSE_STATE_CAP,
    SPARSE_STATE_THRESHOLD,
};
pub use sweep::{sweep, SweepPoint};
