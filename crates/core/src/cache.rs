//! Block-solve memoization keyed by chain content.
//!
//! Sweeps, ablation suites, and repeated hierarchy roll-ups re-solve
//! mostly-unchanged specs: a single-parameter sweep mutates one block
//! and leaves every sibling's generated chain bit-identical across all
//! points. The [`SolveCache`] keys solved measures by the chain's
//! [`Fingerprint`](rascad_markov::Fingerprint) (plus the solver method
//! or mission horizon), so unchanged blocks are solved once per engine
//! no matter how many times the spec is re-rolled.
//!
//! Correctness over speed:
//!
//! * The fingerprint is a 64-bit digest, so every hit re-checks full
//!   chain equality before a stored entry is served; a colliding or
//!   poisoned entry (same digest, different chain) is treated as a miss
//!   and overwritten.
//! * Stored values are the exact `f64` results of the deterministic
//!   solver functions, so a cache hit returns bit-identical measures to
//!   a fresh solve of the same chain.
//! * Lookups happen under the lock but solves do not; two threads may
//!   race to compute the same entry, which wastes a solve but both
//!   compute identical values, so the insert race is benign.
//! * Lock poisoning is recovered, not propagated: a worker that
//!   panicked while holding the lock can only have left the maps in a
//!   consistent state (every critical section is a single HashMap
//!   operation), and the engine evicts every entry inserted by a
//!   panicked batch's generation anyway — so surviving workers must
//!   not be taken down by a poisoned mutex, and entries warmed by
//!   earlier clean batches stay resident across the incident.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rascad_markov::{Ctmc, Fingerprint, SteadyStateMethod};

use crate::certify::{SolutionCertificate, Verdict};
use crate::error::CoreError;
use crate::generator::BlockModel;
use crate::measures::{interval_measures, reliability_measures, BlockMeasures};

/// Mission-horizon measures of one chain, the per-block inputs to the
/// system-level mission roll-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionMeasures {
    /// Expected fraction of `(0, T)` spent up.
    pub interval_availability: f64,
    /// Probability of surviving `(0, T)` without a failure.
    pub reliability_at_mission: f64,
    /// Mean time to first failure, hours.
    pub mttf_hours: f64,
}

/// Computes the mission measures of a model directly (the cached
/// computation).
///
/// # Errors
///
/// Propagates solver errors from the transient/absorbing analyses.
pub fn compute_mission_measures(
    model: &BlockModel,
    mission_hours: f64,
) -> Result<MissionMeasures, CoreError> {
    let iv = interval_measures(model, mission_hours)?;
    let rel = reliability_measures(model, mission_hours)?;
    Ok(MissionMeasures {
        interval_availability: iv.interval_availability,
        reliability_at_mission: rel.reliability_at_mission,
        mttf_hours: rel.mttf_hours,
    })
}

/// Hit/miss counters and current size of a [`SolveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a stored entry.
    pub hits: u64,
    /// Lookups that had to solve (includes fingerprint collisions).
    pub misses: u64,
    /// Entries currently stored (steady + mission).
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when nothing was looked
    /// up yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct SteadyEntry {
    chain: Ctmc,
    measures: BlockMeasures,
    certificate: SolutionCertificate,
    /// Engine solve-batch generation that inserted this entry; panic
    /// invalidation is scoped to one generation (see
    /// [`SolveCache::evict_generation`]).
    generation: u64,
}

struct MissionEntry {
    chain: Ctmc,
    measures: MissionMeasures,
    generation: u64,
}

struct Maps {
    steady: HashMap<(Fingerprint, SteadyStateMethod), SteadyEntry>,
    mission: HashMap<(Fingerprint, u64), MissionEntry>,
}

/// Content-addressed store of solved block measures.
///
/// Thread-safe; shared by every worker of one [`Engine`]
/// (`crate::engine::Engine`).
pub struct SolveCache {
    maps: Mutex<Maps>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SolveCache")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("entries", &s.entries)
            .finish()
    }
}

impl Default for SolveCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Entries kept per map before the cache resets itself. Availability
/// hierarchies have tens of distinct chains; sweeps add one variant per
/// point, so thousands of entries means a runaway workload — wipe and
/// start over rather than grow without bound.
const DEFAULT_CAPACITY: usize = 4096;

impl SolveCache {
    /// Creates an empty cache with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        SolveCache {
            maps: Mutex::new(Maps { steady: HashMap::new(), mission: HashMap::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        let maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: maps.steady.len() + maps.mission.len(),
        }
    }

    /// Drops every stored entry (counters are kept).
    pub fn clear(&self) {
        let mut maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        maps.steady.clear();
        maps.mission.clear();
    }

    /// Drops only the entries inserted by solve-batch `generation` —
    /// the panic-invalidation path. A worker panic taints at most the
    /// batch it ran in; entries warmed by earlier (clean) batches stay
    /// resident, so one poisoned tenant spec cannot evict a long-lived
    /// server's warm cross-request cache.
    pub fn evict_generation(&self, generation: u64) {
        let mut maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        maps.steady.retain(|_, e| e.generation != generation);
        maps.mission.retain(|_, e| e.generation != generation);
        rascad_obs::gauge_set(
            "core.cache.entries",
            &[("kind", "steady")],
            maps.steady.len() as f64,
        );
        rascad_obs::gauge_set(
            "core.cache.entries",
            &[("kind", "mission")],
            maps.mission.len() as f64,
        );
    }

    fn note_hit(&self, kind: &str) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        rascad_obs::counter_with("core.cache.hits", &[("kind", kind)], 1);
    }

    fn note_miss(&self, kind: &str) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        rascad_obs::counter_with("core.cache.misses", &[("kind", kind)], 1);
    }

    /// Steady-state measures of `model`'s chain, served from cache when
    /// an equal chain was solved with the same method before.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; errors are never cached.
    pub fn steady(
        &self,
        model: &BlockModel,
        method: SteadyStateMethod,
    ) -> Result<BlockMeasures, CoreError> {
        self.steady_certified(model, method).map(|(measures, _)| measures)
    }

    /// [`SolveCache::steady`] plus the [`SolutionCertificate`] issued
    /// for the solve. Certificates are stored with their entries, so a
    /// cache hit returns the certificate of the original solve,
    /// bit-identical to a fresh one.
    ///
    /// # Errors
    ///
    /// Propagates solver and certification errors; errors are never
    /// cached.
    pub fn steady_certified(
        &self,
        model: &BlockModel,
        method: SteadyStateMethod,
    ) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
        self.steady_certified_with(model, method, &rascad_markov::SolveOptions::default(), 0)
    }

    /// [`SolveCache::steady_certified`] with caller-supplied solve
    /// budgets and the engine batch `generation` tagging any insert.
    /// Hits are options-blind — a stored solution is bit-identical no
    /// matter what budget computed it — while misses solve under the
    /// caller's deadline/cancellation budgets; errors (including
    /// cancellations) are never cached.
    ///
    /// # Errors
    ///
    /// Propagates solver and certification errors; errors are never
    /// cached.
    pub fn steady_certified_with(
        &self,
        model: &BlockModel,
        method: SteadyStateMethod,
        options: &rascad_markov::SolveOptions,
        generation: u64,
    ) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
        let key = (model.chain.fingerprint(), method);
        {
            let maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(e) = maps.steady.get(&key) {
                if e.chain == model.chain {
                    self.note_hit("steady");
                    return Ok((e.measures, e.certificate.clone()));
                }
            }
        }
        self.note_miss("steady");
        let (measures, certificate) =
            crate::measures::steady_state_measures_with_certificate_opts(model, method, options)?;
        let mut maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if maps.steady.len() >= self.capacity {
            maps.steady.clear();
        }
        maps.steady.insert(
            key,
            SteadyEntry {
                chain: model.chain.clone(),
                measures,
                certificate: certificate.clone(),
                generation,
            },
        );
        rascad_obs::gauge_set(
            "core.cache.entries",
            &[("kind", "steady")],
            maps.steady.len() as f64,
        );
        Ok((measures, certificate))
    }

    /// Mission measures of `model`'s chain over `(0, mission_hours)`,
    /// served from cache when an equal chain was analyzed over the same
    /// horizon before.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; errors are never cached.
    pub fn mission(
        &self,
        model: &BlockModel,
        mission_hours: f64,
    ) -> Result<MissionMeasures, CoreError> {
        self.mission_with(model, mission_hours, 0)
    }

    /// [`SolveCache::mission`] with the engine batch `generation`
    /// tagging any insert (see [`SolveCache::evict_generation`]).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; errors are never cached.
    pub fn mission_with(
        &self,
        model: &BlockModel,
        mission_hours: f64,
        generation: u64,
    ) -> Result<MissionMeasures, CoreError> {
        let key = (model.chain.fingerprint(), mission_hours.to_bits());
        {
            let maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(e) = maps.mission.get(&key) {
                if e.chain == model.chain {
                    self.note_hit("mission");
                    return Ok(e.measures);
                }
            }
        }
        self.note_miss("mission");
        let measures = compute_mission_measures(model, mission_hours)?;
        let mut maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if maps.mission.len() >= self.capacity {
            maps.mission.clear();
        }
        maps.mission.insert(key, MissionEntry { chain: model.chain.clone(), measures, generation });
        rascad_obs::gauge_set(
            "core.cache.entries",
            &[("kind", "mission")],
            maps.mission.len() as f64,
        );
        Ok(measures)
    }

    /// Test hook: forcibly associates `model`'s fingerprint with a
    /// *different* chain's entry, simulating a digest collision or a
    /// corrupted store. Used to prove the equality guard never serves a
    /// stale solution.
    #[doc(hidden)]
    pub fn poison_steady(
        &self,
        model: &BlockModel,
        method: SteadyStateMethod,
        wrong_chain: Ctmc,
        wrong_measures: BlockMeasures,
    ) {
        let key = (model.chain.fingerprint(), method);
        let bogus_certificate = SolutionCertificate {
            residual_inf: 0.0,
            prob_mass_error: 0.0,
            condition_estimate: None,
            method: "poison".to_string(),
            trail: vec!["poison: injected by test".to_string()],
            verdict: Verdict::Ok,
        };
        let mut maps = self.maps.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        maps.steady.insert(
            key,
            SteadyEntry {
                chain: wrong_chain,
                measures: wrong_measures,
                certificate: bogus_certificate,
                generation: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use crate::measures::steady_state_measures;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, GlobalParams};

    fn model(mtbf: f64) -> BlockModel {
        let p = BlockParams::new("Blk", 2, 1).with_mtbf(Hours(mtbf));
        generate_block(&p, &GlobalParams::default()).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_matches_fresh_solve() {
        let cache = SolveCache::new();
        let m = model(10_000.0);
        let a = cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        let b = cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        let fresh = steady_state_measures(&m, SteadyStateMethod::Gth).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, fresh);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn different_method_or_chain_misses() {
        let cache = SolveCache::new();
        let m1 = model(10_000.0);
        let m2 = model(20_000.0);
        cache.steady(&m1, SteadyStateMethod::Gth).unwrap();
        cache.steady(&m1, SteadyStateMethod::Lu).unwrap();
        cache.steady(&m2, SteadyStateMethod::Gth).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 3));
        assert_eq!(s.entries, 3);
    }

    #[test]
    fn mission_measures_cache_by_horizon() {
        let cache = SolveCache::new();
        let m = model(10_000.0);
        let a = cache.mission(&m, 8760.0).unwrap();
        let b = cache.mission(&m, 8760.0).unwrap();
        let c = cache.mission(&m, 720.0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let fresh = compute_mission_measures(&m, 8760.0).unwrap();
        assert_eq!(a, fresh);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn poisoned_entry_is_never_served() {
        let cache = SolveCache::new();
        let m = model(10_000.0);
        let wrong = model(77.0);
        let bogus = BlockMeasures::from_availability(0.123, 4.56);
        cache.poison_steady(&m, SteadyStateMethod::Gth, wrong.chain.clone(), bogus);
        // Equality guard rejects the mismatched chain: full solve, not
        // the bogus stored measures.
        let got = cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        let fresh = steady_state_measures(&m, SteadyStateMethod::Gth).unwrap();
        assert_eq!(got, fresh);
        assert_ne!(got, bogus);
        assert_eq!(cache.stats().misses, 1);
        // The poisoned entry was overwritten; the next lookup hits.
        let again = cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        assert_eq!(again, fresh);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_hit_returns_the_original_certificate() {
        let cache = SolveCache::new();
        let m = model(10_000.0);
        let (_, fresh_cert) = cache.steady_certified(&m, SteadyStateMethod::Gth).unwrap();
        let (_, cached_cert) = cache.steady_certified(&m, SteadyStateMethod::Gth).unwrap();
        assert_eq!(fresh_cert, cached_cert);
        assert_eq!(fresh_cert.verdict, Verdict::Ok);
        assert_eq!(fresh_cert.method, "gth");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn evict_generation_is_scoped_to_its_batch() {
        let cache = SolveCache::new();
        let warm = model(10_000.0);
        let tainted = model(20_000.0);
        let opts = rascad_markov::SolveOptions::default();
        // Generation 1 warms the cache cleanly; generation 2 inserts
        // alongside a (hypothetical) panic.
        cache.steady_certified_with(&warm, SteadyStateMethod::Gth, &opts, 1).unwrap();
        cache.mission_with(&warm, 8760.0, 1).unwrap();
        cache.steady_certified_with(&tainted, SteadyStateMethod::Gth, &opts, 2).unwrap();
        cache.mission_with(&tainted, 8760.0, 2).unwrap();
        assert_eq!(cache.stats().entries, 4);
        cache.evict_generation(2);
        assert_eq!(cache.stats().entries, 2);
        // The warm generation still hits; the evicted one re-solves.
        cache.steady_certified_with(&warm, SteadyStateMethod::Gth, &opts, 3).unwrap();
        assert_eq!(cache.stats().hits, 1);
        cache.steady_certified_with(&tainted, SteadyStateMethod::Gth, &opts, 3).unwrap();
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn clear_empties_the_store() {
        let cache = SolveCache::new();
        let m = model(10_000.0);
        cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        cache.mission(&m, 100.0).unwrap();
        assert_eq!(cache.stats().entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        cache.steady(&m, SteadyStateMethod::Gth).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }
}
