//! Derived per-block rates and durations.
//!
//! Collapses the engineering parameters (block + global) into the raw
//! quantities the chain templates consume. All durations are in hours,
//! all rates per hour.

use rascad_spec::{BlockParams, GlobalParams, Scenario};

/// Rates and durations derived from one block's parameters plus the
/// global parameters (paper Section 4: "the parameters in the model are
/// either derived or directly obtained from the block and global
/// parameters").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Per-component permanent failure rate `λp = 1/MTBF`.
    pub lambda_p: f64,
    /// Per-component transient failure rate `λt` (from FIT).
    pub lambda_t: f64,
    /// Total repair hands-on time (diagnosis + corrective +
    /// verification), hours.
    pub mttr: f64,
    /// Service response time `Tresp`, hours.
    pub tresp: f64,
    /// Service restriction time `MTTM`, hours (global).
    pub mttm: f64,
    /// Mean time to repair from incorrect diagnosis, hours (global).
    pub mttrfid: f64,
    /// System reboot time `Tboot`, hours (global).
    pub tboot: f64,
    /// Probability of correct diagnosis `Pcd`.
    pub pcd: f64,
    /// Probability of latent fault `Plf` (0 for non-redundant blocks).
    pub plf: f64,
    /// Mean time to detect a latent fault, hours.
    pub mttdlf: f64,
    /// AR/failover downtime `Tfo`, hours (0 under a transparent recovery
    /// scenario).
    pub tfo: f64,
    /// Probability of single point of failure during AR, `Pspf`.
    pub pspf: f64,
    /// SPF state recovery time `Tspf`, hours.
    pub tspf: f64,
    /// Reintegration downtime `Treint`, hours (0 under a transparent
    /// repair scenario).
    pub treint: f64,
    /// Whether the automatic-recovery scenario is transparent.
    pub transparent_recovery: bool,
    /// Whether the repair scenario is transparent.
    pub transparent_repair: bool,
}

impl Rates {
    /// Derives the rate set from a block and the globals.
    #[must_use]
    pub fn derive(params: &BlockParams, globals: &GlobalParams) -> Rates {
        let r = params.redundancy;
        let transparent_recovery = r.is_none_or(|r| r.recovery == Scenario::Transparent);
        let transparent_repair = r.is_none_or(|r| r.repair == Scenario::Transparent);
        Rates {
            lambda_p: params.permanent_rate(),
            lambda_t: params.transient_rate(),
            mttr: params.mttr_total().0,
            tresp: params.service_response.0,
            mttm: globals.mttm.0,
            mttrfid: globals.mttrfid.0,
            tboot: globals.reboot_time.to_hours().0,
            pcd: params.p_correct_diagnosis,
            plf: r.map_or(0.0, |r| r.p_latent_fault),
            mttdlf: r.map_or(0.0, |r| r.mttdlf.0),
            tfo: r.map_or(0.0, |r| {
                if r.recovery == Scenario::Nontransparent {
                    r.failover_time.to_hours().0
                } else {
                    0.0
                }
            }),
            pspf: r.map_or(0.0, |r| r.p_spf),
            tspf: r.map_or(0.0, |r| r.spf_recovery_time.to_hours().0),
            treint: r.map_or(0.0, |r| {
                if r.repair == Scenario::Nontransparent {
                    r.reintegration_time.to_hours().0
                } else {
                    0.0
                }
            }),
            transparent_recovery,
            transparent_repair,
        }
    }

    /// Scheduled repair logistic + hands-on duration for a redundant
    /// component: `MTTM + Tresp + MTTR` (paper: "the logistic event
    /// duration is thus the sum of service restriction time and service
    /// response time", followed by the repair itself).
    #[must_use]
    pub fn scheduled_repair_time(&self) -> f64 {
        self.mttm + self.tresp + self.mttr
    }

    /// Immediate repair duration when the system is down: `Tresp + MTTR`
    /// ("a call to the customer service should be placed immediately").
    #[must_use]
    pub fn immediate_repair_time(&self) -> f64 {
        self.tresp + self.mttr
    }

    /// Effective `Pspf` — zero when the SPF state has no duration (the
    /// state is then elided).
    #[must_use]
    pub fn effective_pspf(&self) -> f64 {
        if self.tspf > 0.0 {
            self.pspf
        } else {
            0.0
        }
    }

    /// Effective probability of entering the service-error state — zero
    /// when `MTTRFID` is zero (the state is then elided).
    #[must_use]
    pub fn effective_service_error(&self) -> f64 {
        if self.mttrfid > 0.0 {
            1.0 - self.pcd
        } else {
            0.0
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::RedundancyParams;

    #[test]
    fn derives_basic_rates() {
        let p = BlockParams::new("X", 2, 2)
            .with_mtbf(Hours(10_000.0))
            .with_transient_fit(Fit(500.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.95);
        let g = GlobalParams::default();
        let r = Rates::derive(&p, &g);
        assert!((r.lambda_p - 1e-4).abs() < 1e-18);
        assert!((r.lambda_t - 5e-7).abs() < 1e-18);
        assert_eq!(r.mttr, 1.0);
        assert_eq!(r.tresp, 4.0);
        assert_eq!(r.pcd, 0.95);
        // Non-redundant: no latent/AR parameters.
        assert_eq!(r.plf, 0.0);
        assert_eq!(r.tfo, 0.0);
        assert!(r.transparent_recovery && r.transparent_repair);
        assert_eq!(r.immediate_repair_time(), 5.0);
        assert_eq!(r.scheduled_repair_time(), 53.0);
    }

    #[test]
    fn transparent_scenarios_zero_downtimes() {
        let red = RedundancyParams {
            recovery: Scenario::Transparent,
            repair: Scenario::Transparent,
            failover_time: Minutes(30.0),
            reintegration_time: Minutes(30.0),
            ..Default::default()
        };
        let p = BlockParams::new("X", 2, 1).with_redundancy(red);
        let r = Rates::derive(&p, &GlobalParams::default());
        // Transparent scenarios elide the downtime regardless of the
        // configured durations.
        assert_eq!(r.tfo, 0.0);
        assert_eq!(r.treint, 0.0);
    }

    #[test]
    fn nontransparent_scenarios_keep_downtimes() {
        let red = RedundancyParams {
            recovery: Scenario::Nontransparent,
            repair: Scenario::Nontransparent,
            failover_time: Minutes(30.0),
            reintegration_time: Minutes(15.0),
            ..Default::default()
        };
        let p = BlockParams::new("X", 2, 1).with_redundancy(red);
        let r = Rates::derive(&p, &GlobalParams::default());
        assert_eq!(r.tfo, 0.5);
        assert_eq!(r.treint, 0.25);
        assert!(!r.transparent_recovery && !r.transparent_repair);
    }

    #[test]
    fn effective_probabilities_gate_on_durations() {
        let red =
            RedundancyParams { p_spf: 0.1, spf_recovery_time: Minutes(0.0), ..Default::default() };
        let p = BlockParams::new("X", 2, 1).with_redundancy(red);
        let g = GlobalParams { mttrfid: Hours(0.0), ..Default::default() };
        let r = Rates::derive(&p, &g);
        assert_eq!(r.effective_pspf(), 0.0);
        assert_eq!(r.effective_service_error(), 0.0);
    }
}
