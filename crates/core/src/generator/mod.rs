//! Automatic Markov-chain generation from block parameters.
//!
//! This module implements the paper's Section 4: each MG block is
//! translated to one of five Markov chain templates. [`generate_block`]
//! dispatches on redundancy and scenario:
//!
//! | Template | Condition |
//! |---|---|
//! | Type 0 | `N == K` (no redundancy) |
//! | Type 1 | `N > K`, transparent recovery, transparent repair |
//! | Type 2 | `N > K`, transparent recovery, nontransparent repair |
//! | Type 3 | `N > K`, nontransparent recovery, transparent repair |
//! | Type 4 | `N > K`, nontransparent recovery, nontransparent repair |
//!
//! Redundant blocks with more than
//! [`birth_death::BIRTH_DEATH_MIN_UNITS`] units expand to the
//! k-out-of-n [`birth_death`] chain instead — `N + 1` occupancy levels
//! with per-level failure and parallel-repair rates — which scales to
//! thousands of units where the level-replicated templates cannot.
//!
//! States that cannot be entered (zero probability or zero rate) and
//! zero-duration sojourns are elided, so the generated chain is always
//! minimal; "due to the variation on the model size, the internal matrix
//! representation … of the Markov models are generated" — here the
//! internal representation is [`rascad_markov::Ctmc`].

pub mod birth_death;
pub mod rates;
pub mod redundant;
pub mod type0;

use rascad_markov::{Ctmc, CtmcBuilder, StateId};
use rascad_spec::{BlockParams, GlobalParams};

use crate::error::CoreError;
pub use rates::Rates;

/// A generated per-block availability model.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockModel {
    /// Block name the model was generated for.
    pub name: String,
    /// The Markov model type (0–4) selected by the parameters.
    pub model_type: u8,
    /// Quantity `N`.
    pub quantity: u32,
    /// Minimum required quantity `K`.
    pub min_quantity: u32,
    /// The generated chain; state `0` is always `Ok` (everything
    /// working).
    pub chain: Ctmc,
}

impl BlockModel {
    /// Number of states in the generated chain.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.chain.len()
    }

    /// Number of transitions in the generated chain.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.chain.transition_count()
    }

    /// Id of the fully-working initial state.
    #[must_use]
    pub fn ok_state(&self) -> StateId {
        0
    }
}

/// Generates the availability Markov chain for one block.
///
/// # Errors
///
/// Returns [`CoreError::Markov`] if the assembled chain fails builder
/// validation (cannot happen for parameter sets that pass
/// [`rascad_spec::validate`], but malformed hand-built parameters are
/// caught here too).
pub fn generate_block(
    params: &BlockParams,
    globals: &GlobalParams,
) -> Result<BlockModel, CoreError> {
    let rates = Rates::derive(params, globals);
    let model_type =
        params.redundancy.as_ref().map_or(0, rascad_spec::RedundancyParams::model_type);
    let mut span = rascad_obs::span("core.generate_block");
    span.record("block", params.name.as_str());
    span.record("chain_type", u64::from(model_type));
    span.record("n", params.quantity);
    span.record("k", params.min_quantity);
    let mut mb = ModelBuilder::new();
    if params.is_redundant() {
        if params.quantity > birth_death::BIRTH_DEATH_MIN_UNITS {
            span.record("template", "birth-death");
            birth_death::build(&mut mb, params, &rates);
        } else {
            redundant::build(&mut mb, params, &rates);
        }
    } else {
        type0::build(&mut mb, params, &rates);
    }
    let chain =
        mb.finish().map_err(|source| CoreError::Markov { block: params.name.clone(), source })?;
    span.record("states", chain.len());
    span.record("transitions", chain.transition_count());
    rascad_obs::counter("core.blocks_generated", 1);
    rascad_obs::record_value("core.block_states", chain.len() as f64);
    Ok(BlockModel {
        name: params.name.clone(),
        model_type,
        quantity: params.quantity,
        min_quantity: params.min_quantity,
        chain,
    })
}

/// A [`CtmcBuilder`] wrapper with get-or-create states addressed by
/// label, used by the chain templates.
#[derive(Debug, Default)]
pub(crate) struct ModelBuilder {
    builder: CtmcBuilder,
    index: std::collections::HashMap<String, (StateId, f64)>,
    exits_added: std::collections::HashSet<StateId>,
}

impl ModelBuilder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Returns the state with the given label, creating it with the
    /// given reward if needed.
    ///
    /// # Panics
    ///
    /// Panics if an existing label is requested with a different reward —
    /// that would indicate a template bug.
    #[allow(clippy::float_cmp)] // a reused label must carry the exact same reward
    pub(crate) fn state(&mut self, label: &str, reward: f64) -> StateId {
        if let Some(&(id, r)) = self.index.get(label) {
            assert_eq!(r, reward, "state {label} requested with conflicting rewards");
            return id;
        }
        let id = self.builder.add_state(label, reward);
        self.index.insert(label.to_string(), (id, reward));
        id
    }

    /// Marks that the fixed exit transitions of `state` have been
    /// installed; returns `true` exactly once per state.
    pub(crate) fn mark_exits_added(&mut self, state: StateId) -> bool {
        self.exits_added.insert(state)
    }

    /// Adds a transition; zero rates are dropped by the underlying
    /// builder.
    pub(crate) fn transition(&mut self, from: StateId, to: StateId, rate: f64) {
        if from != to && rate > 0.0 {
            self.builder.add_transition(from, to, rate);
        }
    }

    pub(crate) fn finish(&self) -> Result<Ctmc, rascad_markov::MarkovError> {
        self.builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::{RedundancyParams, Scenario};

    fn globals() -> GlobalParams {
        GlobalParams::default()
    }

    #[test]
    fn dispatches_type0_for_non_redundant() {
        let p = BlockParams::new("X", 2, 2);
        let m = generate_block(&p, &globals()).unwrap();
        assert_eq!(m.model_type, 0);
        assert_eq!(m.chain.states()[0].label, "Ok");
    }

    #[test]
    fn dispatches_types_1_to_4() {
        for (recovery, repair, expect) in [
            (Scenario::Transparent, Scenario::Transparent, 1),
            (Scenario::Transparent, Scenario::Nontransparent, 2),
            (Scenario::Nontransparent, Scenario::Transparent, 3),
            (Scenario::Nontransparent, Scenario::Nontransparent, 4),
        ] {
            let r = RedundancyParams { recovery, repair, ..Default::default() };
            let p = BlockParams::new("X", 2, 1).with_redundancy(r);
            let m = generate_block(&p, &globals()).unwrap();
            assert_eq!(m.model_type, expect);
            assert_eq!(m.ok_state(), 0);
        }
    }

    #[test]
    fn generated_chains_are_solvable() {
        let r = RedundancyParams {
            p_latent_fault: 0.05,
            p_spf: 0.01,
            recovery: Scenario::Nontransparent,
            repair: Scenario::Nontransparent,
            ..Default::default()
        };
        let p = BlockParams::new("X", 4, 2)
            .with_mtbf(Hours(80_000.0))
            .with_transient_fit(Fit(1_000.0))
            .with_mttr_parts(Minutes(20.0), Minutes(30.0), Minutes(10.0))
            .with_p_correct_diagnosis(0.97)
            .with_redundancy(r);
        let m = generate_block(&p, &globals()).unwrap();
        let pi = m.chain.steady_state(rascad_markov::SteadyStateMethod::Gth).unwrap();
        let a = m.chain.expected_reward(&pi);
        assert!(a > 0.999 && a < 1.0, "a={a}");
    }
}
