//! Birth–death expansion for large k-out-of-n blocks.
//!
//! The Type 1–4 templates replicate a constant group of states (TF, AR,
//! PF, Latent, …) per redundancy level, which is exactly right for the
//! paper's small blocks (N ≤ 8 or so) but models only `N − K + 1`
//! failure levels: once the margin is exhausted the whole remaining
//! population is folded into a single down state. For large populations
//! (disk shelves, blade pools, N in the hundreds or thousands) the
//! standard availability model is instead the **k-out-of-n birth–death
//! chain**: one level per number of failed units, `j = 0 ..= N`, with
//!
//! * failure `j → j+1` at rate `(N − j)·λp` — each of the `N − j`
//!   surviving units fails independently, and
//! * repair `j → j−1` at rate `j·μ` — units are repaired in parallel,
//!   each by its own service action.
//!
//! The repair rate per unit is `1/(MTTM + Tresp + MTTR)` while the
//! system is up (deferred, scheduled service — the paper's policy for
//! redundant spares) and `1/(Tresp + MTTR)` once the system is down
//! (an immediate service call). Level `j` is up exactly when at least
//! `K` units survive, i.e. `j ≤ N − K`.
//!
//! This chain is the *exact lump* of the `2^N` independent-unit product
//! space onto occupancy levels (see [`rascad_markov::lump`]) whenever
//! the per-unit repair rate is level-independent, which here means
//! `MTTM = 0`; with a nonzero service restriction time the up levels
//! repair slower, a refinement the product space cannot express without
//! breaking unit independence.
//!
//! **Scope.** The expansion models permanent faults only: transient
//! faults, latent faults, failed automatic recovery (SPF) and service
//! error are elided. Those mechanisms contribute per-*event* downtimes
//! that do not scale with N, while the template's per-level replication
//! of them is what makes large N intractable; eliding them is the
//! documented approximation that buys `O(N)` states instead of `O(2^N)`
//! behavioural fidelity nobody can solve. Blocks at or below
//! [`BIRTH_DEATH_MIN_UNITS`] units keep the full-fidelity templates.

use rascad_markov::StateId;
use rascad_spec::BlockParams;

use super::{ModelBuilder, Rates};

/// Unit count above which a redundant block expands to the birth–death
/// chain instead of the level-replicated Type 1–4 template. At and
/// below this size the templates stay tractable and keep their full
/// transient/latent/SPF fidelity.
pub const BIRTH_DEATH_MIN_UNITS: u32 = 8;

/// Builds the k-out-of-n birth–death chain into `mb`.
///
/// # Panics
///
/// Panics if called for a non-redundant block (`N == K`); the
/// dispatcher guarantees this cannot happen.
pub(crate) fn build(mb: &mut ModelBuilder, params: &BlockParams, r: &Rates) {
    let n = params.quantity as usize;
    let k = params.min_quantity as usize;
    assert!(n > k, "birth–death template requires N > K");
    let margin = n - k;

    // Level j = j units permanently failed. `Ok` is state 0, matching
    // every other template.
    let levels: Vec<StateId> = (0..=n)
        .map(|j| {
            if j == 0 {
                mb.state("Ok", 1.0)
            } else {
                mb.state(&format!("PF{j}"), if j <= margin { 1.0 } else { 0.0 })
            }
        })
        .collect();

    let mu_scheduled = 1.0 / r.scheduled_repair_time();
    let mu_immediate = 1.0 / r.immediate_repair_time();
    for j in 0..n {
        // Each of the N − j survivors can fail.
        mb.transition(levels[j], levels[j + 1], (n - j) as f64 * r.lambda_p);
    }
    for j in 1..=n {
        // Parallel repair: j failed units, each being serviced. Up
        // levels wait for scheduled service; down levels get the
        // immediate call.
        let mu = if j <= margin { mu_scheduled } else { mu_immediate };
        mb.transition(levels[j], levels[j - 1], j as f64 * mu);
    }
}

#[cfg(test)]
mod tests {
    use crate::generator::generate_block;
    use rascad_markov::{identical_units_product, lump, occupancy_partition, SteadyStateMethod};
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{BlockParams, GlobalParams, RedundancyParams, Scenario};

    fn params(n: u32, k: u32) -> BlockParams {
        BlockParams::new("X", n, k)
            .with_mtbf(Hours(20_000.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.95)
            .with_redundancy(RedundancyParams {
                recovery: Scenario::Nontransparent,
                failover_time: Minutes(6.0),
                ..Default::default()
            })
    }

    /// Globals with no service restriction time, making the scheduled
    /// and immediate repair rates equal (the exact-lump regime).
    fn flat_repair_globals() -> GlobalParams {
        GlobalParams { mttm: Hours(0.0), ..Default::default() }
    }

    #[test]
    fn dispatch_boundary_sits_at_min_units() {
        let g = GlobalParams::default();
        // N = 8: the Type 1–4 template, with its AR states (recovery is
        // nontransparent above).
        let small = generate_block(&params(8, 1), &g).unwrap();
        assert!(small.chain.state_by_label("AR1").is_some());
        // N = 9: birth–death — exactly N + 1 occupancy levels, no AR.
        let large = generate_block(&params(9, 1), &g).unwrap();
        assert!(large.chain.state_by_label("AR1").is_none());
        assert_eq!(large.state_count(), 10);
        for lbl in ["Ok", "PF1", "PF5", "PF9"] {
            assert!(large.chain.state_by_label(lbl).is_some(), "missing {lbl}");
        }
    }

    #[test]
    fn flat_repair_stationary_is_binomial() {
        // With MTTM = 0 every unit is an independent 2-state chain, so
        // the level occupancy is Binomial(N, λ/(λ+μ)).
        let g = flat_repair_globals();
        let m = generate_block(&params(12, 10), &g).unwrap();
        let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let lambda = 1.0 / 20_000.0;
        let mu = 1.0 / 5.0; // Tresp 4 h + MTTR 1 h
        let p = lambda / (lambda + mu);
        let mut binom = 1.0_f64; // C(12, 0) p^0 (1-p)^12 built incrementally
        for _ in 0..12 {
            binom *= 1.0 - p;
        }
        for (j, &level) in pi.iter().enumerate() {
            assert!(
                (level - binom).abs() <= 1e-12 + 1e-9 * binom,
                "level {j}: {level} vs binomial {binom}"
            );
            binom *= (12 - j) as f64 / (j + 1) as f64 * p / (1.0 - p);
        }
    }

    #[test]
    fn matches_the_lumped_product_space() {
        // The generated chain must be the exact occupancy lump of the
        // 2^N independent-unit product space when repair is flat.
        let (n, k) = (10u32, 8u32);
        let g = flat_repair_globals();
        let m = generate_block(&params(n, k), &g).unwrap();
        assert_eq!(m.state_count(), n as usize + 1);

        let lambda = 1.0 / 20_000.0;
        let mu = 1.0 / 5.0;
        let product = identical_units_product(n, k, lambda, mu).unwrap();
        let quotient = lump(&product, &occupancy_partition(n).unwrap()).unwrap();

        let pi_gen = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let pi_lump = quotient.steady_state(SteadyStateMethod::Gth).unwrap();
        for (j, (a, b)) in pi_gen.iter().zip(&pi_lump).enumerate() {
            assert!((a - b).abs() < 1e-12, "level {j}: {a} vs {b}");
        }
        let a_gen = m.chain.expected_reward(&pi_gen);
        let a_lump = quotient.expected_reward(&pi_lump);
        assert!((a_gen - a_lump).abs() < 1e-12, "{a_gen} vs {a_lump}");
    }

    #[test]
    fn thousand_unit_block_solves_on_the_sparse_rung() {
        // 1001 states is far beyond the dense templates but routine for
        // the sparse rung via the ladder.
        let g = GlobalParams::default();
        let m = generate_block(&params(1000, 900), &g).unwrap();
        assert_eq!(m.state_count(), 1001);
        let out = crate::solve::steady_state_ladder_outcome(
            &m.chain,
            SteadyStateMethod::Gth,
            &rascad_markov::SolveOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(out.method, "sparse");
        let a = m.chain.expected_reward(&out.pi);
        assert!(a > 0.999 && a < 1.0, "availability {a}");
    }

    #[test]
    fn deferred_repair_slows_up_levels() {
        // With the default 48 h service restriction, up levels repair
        // slower than down levels, so availability drops versus the
        // flat-repair chain.
        let deferred = generate_block(&params(16, 12), &GlobalParams::default()).unwrap();
        let flat = generate_block(&params(16, 12), &flat_repair_globals()).unwrap();
        let a = |m: &crate::generator::BlockModel| {
            let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            m.chain.expected_reward(&pi)
        };
        assert!(a(&deferred) < a(&flat));
    }
}
