//! Markov Model Types 1–4 — redundant blocks (paper Figure 4 shows
//! Type 3).
//!
//! States are organized in *levels*: level `j` means `j` components have
//! permanently failed (and been recovered around), `j = 0 ..= M` with
//! `M = N − K` the redundancy margin; the system is up at every level
//! `≤ M` and down at level `M + 1`. The paper notes "the number of
//! states in the model is determined by N and K. For example, if
//! N − K > 1, states TF1, AR1, PF1 and Latent1 will be repeated in the
//! model" — exactly the replication performed here.
//!
//! Per level (entered from up-state `U_j`, which is `Ok` for `j = 0` and
//! `PFj` otherwise, with `n_j = N − j` survivors):
//!
//! * detected permanent fault → `AR(j+1)` (down for `Tfo` under
//!   nontransparent recovery; elided under transparent recovery), then
//!   `PF(j+1)` or, with probability `Pspf`, `SPF(j+1)` (down `Tspf`);
//! * latent fault (probability `Plf`) → `Latent(j+1)` (up), detected
//!   after `MTTDLF`, then through the AR path;
//! * transient fault → `TF(j+1)` (down `Tfo`, returns to `U_j`;
//!   `Pspf` branch lands in `SPF`), or — under transparent recovery —
//!   no downtime at all except the `Pspf` branch through `TSPFj` (down
//!   `Tspf`, returns to `U_j`);
//! * scheduled repair from `PFj` after `MTTM + Tresp + MTTR`, with
//!   imperfect diagnosis routing through `ServiceError_j` (down
//!   `MTTRFID`) and — under nontransparent repair — reintegration
//!   through `RIj` (down `Treint`);
//! * at level `M` any further permanent fault is system-down
//!   (`PF(M+1)`), repaired with an *immediate* service call
//!   (`Tresp + MTTR`, plus `Treint` under nontransparent repair).
//!
//! For `N = 2, K = 1`, Type 3 yields exactly the paper's nine states:
//! `Ok, TF1, AR1, SPF, Latent1, PF1, TF2, PF2, ServiceError`.

use rascad_markov::StateId;
use rascad_spec::BlockParams;

use super::{ModelBuilder, Rates};

/// Builds a Type 1–4 chain into `mb`.
///
/// # Panics
///
/// Panics if called for a non-redundant block (`N == K`); the dispatcher
/// guarantees this cannot happen.
pub(crate) fn build(mb: &mut ModelBuilder, params: &BlockParams, r: &Rates) {
    let n = params.quantity;
    let k = params.min_quantity;
    assert!(n > k, "redundant template requires N > K");
    let margin = (n - k) as usize;

    let g = Gen { mb, r, n, margin };
    g.build();
}

struct Gen<'a> {
    mb: &'a mut ModelBuilder,
    r: &'a Rates,
    n: u32,
    margin: usize,
}

impl Gen<'_> {
    fn build(self) {
        let Gen { mb, r, n, margin } = self;
        let pspf = r.effective_pspf();
        let p_se = r.effective_service_error();

        // Pre-create the up states in level order so `Ok` is state 0 and
        // the level structure reads naturally in dumps.
        let up: Vec<StateId> = (0..=margin)
            .map(|j| if j == 0 { mb.state("Ok", 1.0) } else { mb.state(&format!("PF{j}"), 1.0) })
            .collect();
        let down = mb.state(&format!("PF{}", margin + 1), 0.0);

        // SPF state of level j (down, Tspf, exits to PFj). Created lazily.
        let spf = |mb: &mut ModelBuilder, j: usize| -> StateId {
            let label = if margin == 1 { "SPF".to_string() } else { format!("SPF{j}") };

            mb.state(&label, 0.0)
        };

        // --- Failure arcs out of each up level -----------------------
        for j in 0..=margin {
            let nj = f64::from(n) - j as f64;
            let perm = nj * r.lambda_p;
            let trans = nj * r.lambda_t;

            if j < margin {
                // Detected permanent fault -> AR path into level j+1.
                let detected = perm * (1.0 - r.plf);
                self_enter_ar(mb, r, up[j], detected, j + 1, up[j + 1], pspf, &spf, margin);

                // Latent fault -> Latent(j+1).
                if r.plf > 0.0 {
                    let latent = mb.state(&format!("Latent{}", j + 1), 1.0);
                    mb.transition(up[j], latent, perm * r.plf);
                    // Detection after MTTDLF -> AR path into level j+1
                    // (the latent component is at level j+1 already).
                    if r.mttdlf > 0.0 {
                        self_enter_ar(
                            mb,
                            r,
                            latent,
                            1.0 / r.mttdlf,
                            j + 1,
                            up[j + 1],
                            pspf,
                            &spf,
                            margin,
                        );
                    }
                    // Further faults while latent.
                    let nj1 = f64::from(n) - (j + 1) as f64;
                    if j + 2 <= margin {
                        self_enter_ar(
                            mb,
                            r,
                            latent,
                            nj1 * r.lambda_p,
                            j + 2,
                            up[j + 2],
                            pspf,
                            &spf,
                            margin,
                        );
                    } else {
                        mb.transition(latent, down, nj1 * r.lambda_p);
                    }
                    if r.lambda_t > 0.0 {
                        self_enter_tf(
                            mb,
                            r,
                            latent,
                            nj1 * r.lambda_t,
                            j + 2,
                            up[j + 1],
                            pspf,
                            &spf,
                            margin,
                        );
                    }
                }
            } else {
                // Level M: margin exhausted — any further permanent
                // fault takes the system down, detected or not.
                mb.transition(up[j], down, perm);
            }

            // Transient fault at level j.
            if trans > 0.0 {
                self_enter_tf(mb, r, up[j], trans, j + 1, up[j], pspf, &spf, margin);
            }
        }

        // --- Repair arcs ---------------------------------------------
        let trep = r.scheduled_repair_time();
        for j in 1..=margin {
            let target = up[j - 1];
            let success_rate = (1.0 - p_se) / trep;
            if r.treint > 0.0 {
                let ri = mb.state(&format!("RI{j}"), 0.0);
                mb.transition(up[j], ri, success_rate);
                mb.transition(ri, target, 1.0 / r.treint);
            } else {
                mb.transition(up[j], target, success_rate);
            }
            if p_se > 0.0 {
                let label = if margin == 1 {
                    "ServiceError".to_string()
                } else {
                    format!("ServiceError{j}")
                };
                let se = mb.state(&label, 0.0);
                mb.transition(up[j], se, p_se / trep);
                mb.transition(se, target, 1.0 / r.mttrfid);
            }
        }

        // Down-state repair: immediate service call; reintegration time
        // is spent while already down, so it extends the sojourn.
        let tdown = r.immediate_repair_time() + r.treint;
        mb.transition(down, up[margin], 1.0 / tdown);
    }
}

/// Adds the automatic-recovery path from `from` (at `rate`) into level
/// `level`: through `AR{level}` when the recovery is nontransparent
/// (`Tfo > 0`), splitting on `Pspf` into `SPF{level}`.
#[allow(clippy::too_many_arguments)]
fn self_enter_ar(
    mb: &mut ModelBuilder,
    r: &Rates,
    from: StateId,
    rate: f64,
    level: usize,
    level_up: StateId,
    pspf: f64,
    spf: &impl Fn(&mut ModelBuilder, usize) -> StateId,
    _margin: usize,
) {
    if rate <= 0.0 {
        return;
    }
    if r.tfo > 0.0 {
        let ar = mb.state(&format!("AR{level}"), 0.0);
        mb.transition(from, ar, rate);
        // AR exits are added idempotently: ModelBuilder dedupes states,
        // and duplicate exit transitions are avoided by adding them only
        // when the state is first created. Simplest correct approach:
        // add exits every call but guard with a marker label; instead we
        // rely on `add_ar_exits` tracking below.
        add_exit_once(mb, ar, |mb| {
            let sp = if pspf > 0.0 { Some(spf(mb, level)) } else { None };
            let mut exits = vec![(level_up, (1.0 - pspf) / r.tfo)];
            if let Some(s) = sp {
                exits.push((s, pspf / r.tfo));
                add_exit_once(mb, s, |mb| vec![(level_up_of(mb, level), 1.0 / r.tspf)]);
            }
            exits
        });
    } else {
        // Transparent (or zero-time) recovery: no AR state.
        mb.transition(from, level_up, rate * (1.0 - pspf));
        if pspf > 0.0 {
            let s = spf(mb, level);
            mb.transition(from, s, rate * pspf);
            add_exit_once(mb, s, |mb| vec![(level_up_of(mb, level), 1.0 / r.tspf)]);
        }
    }
}

/// Adds the transient-fault path from `from` (at `rate`), indexed
/// `TF{tf_index}`, returning to `return_to`. Under nontransparent
/// recovery the TF state is down for `Tfo`; under transparent recovery
/// only the `Pspf` branch materializes, through `TSPF` back to
/// `return_to`.
#[allow(clippy::too_many_arguments)]
fn self_enter_tf(
    mb: &mut ModelBuilder,
    r: &Rates,
    from: StateId,
    rate: f64,
    tf_index: usize,
    return_to: StateId,
    pspf: f64,
    spf: &impl Fn(&mut ModelBuilder, usize) -> StateId,
    margin: usize,
) {
    if rate <= 0.0 {
        return;
    }
    let spf_level = tf_index.min(margin);
    if r.tfo > 0.0 {
        let tf = mb.state(&format!("TF{tf_index}"), 0.0);
        mb.transition(from, tf, rate);
        add_exit_once(mb, tf, |mb| {
            let mut exits = vec![(return_to, (1.0 - pspf) / r.tfo)];
            if pspf > 0.0 {
                let s = spf(mb, spf_level);
                exits.push((s, pspf / r.tfo));
                add_exit_once(mb, s, |mb| vec![(level_up_of(mb, spf_level), 1.0 / r.tspf)]);
            }
            exits
        });
    } else if pspf > 0.0 {
        // Transparent recovery: the transient itself is free; only the
        // failed-AR branch costs time, returning to where we came from.
        let label = format!("TSPF{}", tf_index - 1);
        let t = mb.state(&label, 0.0);
        mb.transition(from, t, rate * pspf);
        add_exit_once(mb, t, |_| vec![(return_to, 1.0 / r.tspf)]);
    }
}

/// The up state of a level (used by SPF exits).
fn level_up_of(mb: &mut ModelBuilder, level: usize) -> StateId {
    if level == 0 {
        mb.state("Ok", 1.0)
    } else {
        mb.state(&format!("PF{level}"), 1.0)
    }
}

/// Runs `exits` and installs the produced transitions only the first
/// time it is called for `state` (subsequent calls are no-ops), keyed by
/// a per-builder marker set.
fn add_exit_once(
    mb: &mut ModelBuilder,
    state: StateId,
    exits: impl FnOnce(&mut ModelBuilder) -> Vec<(StateId, f64)>,
) {
    if mb.mark_exits_added(state) {
        let list = exits(mb);
        for (to, rate) in list {
            mb.transition(state, to, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use rascad_markov::SteadyStateMethod;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::{GlobalParams, RedundancyParams, Scenario};

    fn redundancy(recovery: Scenario, repair: Scenario) -> RedundancyParams {
        RedundancyParams {
            p_latent_fault: 0.05,
            mttdlf: Hours(24.0),
            recovery,
            failover_time: Minutes(6.0),
            p_spf: 0.02,
            spf_recovery_time: Minutes(12.0),
            repair,
            reintegration_time: Minutes(10.0),
        }
    }

    fn params(n: u32, k: u32, recovery: Scenario, repair: Scenario) -> BlockParams {
        BlockParams::new("X", n, k)
            .with_mtbf(Hours(20_000.0))
            .with_transient_fit(Fit(5_000.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.95)
            .with_redundancy(redundancy(recovery, repair))
    }

    #[test]
    fn type3_two_of_one_matches_paper_state_set() {
        // N = 2, K = 1, Type 3: the paper's Figure 4 state set.
        let p = params(2, 1, Scenario::Nontransparent, Scenario::Transparent);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        let mut labels: Vec<_> = m.chain.states().iter().map(|s| s.label.clone()).collect();
        labels.sort();
        let mut expect =
            vec!["Ok", "TF1", "AR1", "SPF", "Latent1", "PF1", "TF2", "PF2", "ServiceError"];
        expect.sort_unstable();
        assert_eq!(labels, expect);
        assert_eq!(m.state_count(), 9);
    }

    #[test]
    fn type2_has_reintegration_but_no_ar_states() {
        // Transparent recovery elides AR/TF downtime states;
        // nontransparent repair adds RI.
        let p = params(2, 1, Scenario::Transparent, Scenario::Nontransparent);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        assert!(m.chain.state_by_label("AR1").is_none());
        assert!(m.chain.state_by_label("TF1").is_none());
        assert!(m.chain.state_by_label("RI1").is_some());
        // Transient SPF branches survive as TSPF states.
        assert!(m.chain.state_by_label("TSPF0").is_some());
    }

    #[test]
    fn type1_minimal_structure() {
        let p = params(2, 1, Scenario::Transparent, Scenario::Transparent);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        for absent in ["AR1", "TF1", "TF2", "RI1"] {
            assert!(m.chain.state_by_label(absent).is_none(), "{absent} should be elided");
        }
        for present in ["Ok", "PF1", "PF2", "Latent1", "SPF", "ServiceError"] {
            assert!(m.chain.state_by_label(present).is_some(), "missing {present}");
        }
    }

    #[test]
    fn type4_adds_reintegration_state() {
        let p = params(2, 1, Scenario::Nontransparent, Scenario::Nontransparent);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        assert!(m.chain.state_by_label("RI1").is_some());
        assert_eq!(m.state_count(), 10);
    }

    #[test]
    fn type1_is_smallest_type4_is_largest() {
        // The paper: "the complexity of the model increases from type 1
        // to type 4".
        let sizes: Vec<usize> = [
            (Scenario::Transparent, Scenario::Transparent),
            (Scenario::Transparent, Scenario::Nontransparent),
            (Scenario::Nontransparent, Scenario::Transparent),
            (Scenario::Nontransparent, Scenario::Nontransparent),
        ]
        .iter()
        .map(|&(rec, rep)| {
            generate_block(&params(2, 1, rec, rep), &GlobalParams::default()).unwrap().state_count()
        })
        .collect();
        assert!(sizes[0] <= sizes[1], "{sizes:?}");
        assert!(sizes[1] <= sizes[3], "{sizes:?}");
        assert!(sizes[0] <= sizes[2], "{sizes:?}");
        assert!(sizes[2] <= sizes[3], "{sizes:?}");
    }

    #[test]
    fn states_replicate_with_margin() {
        // N-K > 1 replicates TF/AR/PF/Latent per level, as the paper
        // states.
        let p = params(4, 1, Scenario::Nontransparent, Scenario::Transparent);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        for lbl in [
            "PF1", "PF2", "PF3", "AR1", "AR2", "AR3", "Latent1", "Latent2", "Latent3", "TF1",
            "TF2", "TF3", "TF4", "PF4",
        ] {
            assert!(m.chain.state_by_label(lbl).is_some(), "missing {lbl}");
        }
    }

    #[test]
    fn all_types_solve_to_high_availability() {
        for (rec, rep) in [
            (Scenario::Transparent, Scenario::Transparent),
            (Scenario::Transparent, Scenario::Nontransparent),
            (Scenario::Nontransparent, Scenario::Transparent),
            (Scenario::Nontransparent, Scenario::Nontransparent),
        ] {
            for (n, k) in [(2, 1), (3, 2), (4, 2), (6, 3)] {
                let p = params(n, k, rec, rep);
                let m = generate_block(&p, &GlobalParams::default()).unwrap();
                let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
                let a = m.chain.expected_reward(&pi);
                assert!(a > 0.99 && a < 1.0, "N={n} K={k} type {} gave {a}", m.model_type);
            }
        }
    }

    #[test]
    fn transparent_recovery_beats_nontransparent() {
        let g = GlobalParams::default();
        let a = |rec, rep| {
            let m = generate_block(&params(2, 1, rec, rep), &g).unwrap();
            let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            m.chain.expected_reward(&pi)
        };
        let a1 = a(Scenario::Transparent, Scenario::Transparent);
        let a2 = a(Scenario::Transparent, Scenario::Nontransparent);
        let a3 = a(Scenario::Nontransparent, Scenario::Transparent);
        let a4 = a(Scenario::Nontransparent, Scenario::Nontransparent);
        assert!(a1 > a2 && a1 > a3 && a2 > a4 && a3 > a4, "{a1} {a2} {a3} {a4}");
    }

    #[test]
    fn redundancy_beats_no_redundancy() {
        let g = GlobalParams::default();
        let redundant =
            generate_block(&params(2, 1, Scenario::Transparent, Scenario::Transparent), &g)
                .unwrap();
        let single = generate_block(
            &BlockParams::new("X", 1, 1)
                .with_mtbf(Hours(20_000.0))
                .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
                .with_service_response(Hours(4.0))
                .with_p_correct_diagnosis(0.95),
            &g,
        )
        .unwrap();
        let a_red = {
            let pi = redundant.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            redundant.chain.expected_reward(&pi)
        };
        let a_single = {
            let pi = single.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            single.chain.expected_reward(&pi)
        };
        assert!(a_red > a_single, "{a_red} vs {a_single}");
    }

    #[test]
    fn zero_probability_states_elided() {
        let mut red = redundancy(Scenario::Nontransparent, Scenario::Transparent);
        red.p_latent_fault = 0.0;
        red.p_spf = 0.0;
        let p = BlockParams::new("X", 2, 1)
            .with_p_correct_diagnosis(1.0)
            .with_transient_fit(Fit(0.0))
            .with_redundancy(red);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        for lbl in ["Latent1", "SPF", "ServiceError", "TF1", "TF2"] {
            assert!(m.chain.state_by_label(lbl).is_none(), "{lbl} should be elided");
        }
        // Just Ok, AR1, PF1, PF2.
        assert_eq!(m.state_count(), 4);
    }

    #[test]
    fn growth_is_linear_in_margin() {
        let g = GlobalParams::default();
        let count = |n: u32| {
            generate_block(&params(n, 1, Scenario::Nontransparent, Scenario::Nontransparent), &g)
                .unwrap()
                .state_count()
        };
        let (c2, c4, c8) = (count(2), count(4), count(8));
        // Linear: each extra unit of margin adds a constant state group.
        assert_eq!(c4 - c2, 2 * (c8 - c4) / 4, "c2={c2} c4={c4} c8={c8}");
        assert!(c8 > c4 && c4 > c2);
    }
}
