//! Markov Model Type 0 — non-redundant blocks (paper Figure 3).
//!
//! `N == K`: every unit is required, so any permanent fault takes the
//! system down until service arrives and the repair completes, and any
//! transient fault costs a reboot. State set (states elided when
//! unreachable):
//!
//! ```text
//! Ok ──(N·λp)──▶ Waiting ──(1/Tresp)──▶ Repair ──(Pcd/MTTR)──▶ Ok
//!                                         │
//!                                         └─((1−Pcd)/MTTR)──▶ ServiceError ──(1/MTTRFID)──▶ Ok
//! Ok ──(N·λt)──▶ Reboot ──(1/Tboot)──▶ Ok
//! ```

use rascad_spec::BlockParams;

use super::{ModelBuilder, Rates};

/// State labels used by the Type 0 template.
pub mod labels {
    /// Everything working.
    pub const OK: &str = "Ok";
    /// Down, waiting for service (duration `Tresp`).
    pub const WAITING: &str = "Waiting";
    /// Down, repair in progress (duration MTTR).
    pub const REPAIR: &str = "Repair";
    /// Down, repair went wrong (duration MTTRFID).
    pub const SERVICE_ERROR: &str = "ServiceError";
    /// Down, rebooting after a transient fault (duration `Tboot`).
    pub const REBOOT: &str = "Reboot";
}

/// Builds the Type 0 chain into `mb`.
pub(crate) fn build(mb: &mut ModelBuilder, params: &BlockParams, r: &Rates) {
    let n = f64::from(params.quantity);
    let ok = mb.state(labels::OK, 1.0);

    // Permanent-fault path.
    let repair = mb.state(labels::REPAIR, 0.0);
    let perm_rate = n * r.lambda_p;
    if r.tresp > 0.0 {
        let waiting = mb.state(labels::WAITING, 0.0);
        mb.transition(ok, waiting, perm_rate);
        mb.transition(waiting, repair, 1.0 / r.tresp);
    } else {
        mb.transition(ok, repair, perm_rate);
    }
    let p_se = r.effective_service_error();
    mb.transition(repair, ok, (1.0 - p_se) / r.mttr);
    if p_se > 0.0 {
        let se = mb.state(labels::SERVICE_ERROR, 0.0);
        mb.transition(repair, se, p_se / r.mttr);
        mb.transition(se, ok, 1.0 / r.mttrfid);
    }

    // Transient-fault path.
    if r.lambda_t > 0.0 && r.tboot > 0.0 {
        let reboot = mb.state(labels::REBOOT, 0.0);
        mb.transition(ok, reboot, n * r.lambda_t);
        mb.transition(reboot, ok, 1.0 / r.tboot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_block;
    use rascad_markov::SteadyStateMethod;
    use rascad_spec::units::{Fit, Hours, Minutes};
    use rascad_spec::GlobalParams;

    fn base_params() -> BlockParams {
        BlockParams::new("X", 1, 1)
            .with_mtbf(Hours(10_000.0))
            .with_transient_fit(Fit(2_000.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0))
            .with_p_correct_diagnosis(0.95)
    }

    #[test]
    fn full_state_set_matches_figure() {
        let m = generate_block(&base_params(), &GlobalParams::default()).unwrap();
        let labels: Vec<_> = m.chain.states().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["Ok", "Repair", "Waiting", "ServiceError", "Reboot"]);
        assert_eq!(m.chain.up_states(), vec![0]);
    }

    #[test]
    fn perfect_diagnosis_elides_service_error() {
        let p = base_params().with_p_correct_diagnosis(1.0);
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        assert!(m.chain.state_by_label("ServiceError").is_none());
    }

    #[test]
    fn no_transients_elides_reboot() {
        let p = base_params().with_transient_fit(Fit(0.0));
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        assert!(m.chain.state_by_label("Reboot").is_none());
    }

    #[test]
    fn zero_response_time_elides_waiting() {
        let p = base_params().with_service_response(Hours(0.0));
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        assert!(m.chain.state_by_label("Waiting").is_none());
    }

    #[test]
    fn availability_matches_renewal_closed_form() {
        // With Pcd = 1 and no transients, the model is an alternating
        // renewal process: A = MTBF/N / (MTBF/N + Tresp + MTTR).
        let p = base_params().with_p_correct_diagnosis(1.0).with_transient_fit(Fit(0.0));
        let m = generate_block(&p, &GlobalParams::default()).unwrap();
        let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let a = m.chain.expected_reward(&pi);
        let up = 10_000.0;
        let down = 4.0 + 1.0;
        assert!((a - up / (up + down)).abs() < 1e-12);
    }

    #[test]
    fn quantity_scales_failure_rate() {
        // N units in series: N times the failure frequency.
        let one = generate_block(&base_params(), &GlobalParams::default()).unwrap();
        let mut p3 = base_params();
        p3.quantity = 3;
        p3.min_quantity = 3;
        let three = generate_block(&p3, &GlobalParams::default()).unwrap();
        let pi1 = one.chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let pi3 = three.chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let f1 = one.chain.failure_rate(&pi1);
        let f3 = three.chain.failure_rate(&pi3);
        // Not exactly 3x because availability of Ok differs slightly.
        assert!(f3 / f1 > 2.9 && f3 / f1 < 3.0 + 1e-9, "ratio {}", f3 / f1);
    }

    #[test]
    fn imperfect_diagnosis_lowers_availability() {
        let perfect = base_params().with_p_correct_diagnosis(1.0);
        let sloppy = base_params().with_p_correct_diagnosis(0.8);
        let g = GlobalParams::default();
        let a_perfect = {
            let m = generate_block(&perfect, &g).unwrap();
            let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            m.chain.expected_reward(&pi)
        };
        let a_sloppy = {
            let m = generate_block(&sloppy, &g).unwrap();
            let pi = m.chain.steady_state(SteadyStateMethod::Gth).unwrap();
            m.chain.expected_reward(&pi)
        };
        assert!(a_sloppy < a_perfect);
    }
}
