//! Parallel + memoizing solve engine.
//!
//! The paper's analysis workflows — hierarchy roll-up, parametric
//! sweeps, ablation suites — decompose into independent block solves:
//! every block's chain is generated and solved in isolation, and only
//! the cheap serial-RBD combination couples them. The [`Engine`]
//! exploits both halves of that structure:
//!
//! * **Memoization** — every block solve is routed through a
//!   [`SolveCache`] keyed by the chain's content fingerprint, so a sweep
//!   that mutates one parameter re-solves only the blocks whose chains
//!   actually changed (see [`crate::cache`]).
//! * **Parallelism** — independent units (sweep points, blocks of one
//!   hierarchy, ablation variants) are evaluated on a
//!   [`std::thread::scope`] worker pool and reassembled in input order.
//!
//! # Determinism
//!
//! Results are bit-identical to the sequential path regardless of thread
//! count or cache state: workers compute pure per-item results into
//! per-index slots, the system-level combination runs sequentially in
//! the exact arithmetic order of the original recursive solver, and a
//! cache hit returns the exact `f64`s a fresh solve of the same chain
//! would produce. The thread count only changes wall-clock time.
//!
//! The pool never nests: a worker that reaches another `par_map` (e.g. a
//! parallel sweep whose points each solve a hierarchy) runs the inner
//! loop inline, so a sweep uses exactly `threads` OS threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use rascad_markov::{MarkovError, SolveOptions, SteadyStateMethod};
use rascad_spec::{Block, BlockParams, Diagram, GlobalParams, SystemSpec};

use crate::cache::{CacheStats, MissionMeasures, SolveCache};
use crate::certify::SolutionCertificate;
use crate::error::{CoreError, EngineError};
use crate::generator::{generate_block, BlockModel};
use crate::hierarchy::{BlockSolution, FailedBlock, SystemMeasures, SystemSolution};
use crate::measures::{
    steady_state_measures_certified, steady_state_measures_with_certificate_opts, BlockMeasures,
};
use crate::solve::ForcedFailure;
use crate::sweep::SweepPoint;

/// Process-wide thread-count override (0 = unset), set by the CLI
/// `--threads` flag ahead of any engine use.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default worker count for engines that don't pin one
/// ([`Engine::new`] and the global engine). `0` clears the override.
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The worker count an unpinned engine resolves to right now:
/// the [`set_thread_override`] value, else the `RASCAD_THREADS`
/// environment variable, else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("RASCAD_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

thread_local! {
    /// True on pool worker threads; makes nested `par_map` calls run
    /// inline instead of spawning a second pool.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. Falls back to an inline loop for one thread,
/// one item, or when already running on a pool worker.
///
/// Each item's result is computed exactly once into its own slot, so the
/// output is independent of scheduling; a panicking worker propagates
/// the panic through the scope join.
pub(crate) fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    rascad_obs::counter("core.pool.batches", 1);
    rascad_obs::counter("core.pool.tasks", n as u64);
    rascad_obs::record_value("core.pool.workers", workers as f64);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let _ = slots[i].set(f(i, &items[i]));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("worker filled slot")).collect()
}

thread_local! {
    /// True while this thread is inside a `par_map_caught` item: the
    /// wrapped panic hook stays silent because the panic is about to be
    /// converted into a typed per-item error, not a crash.
    static PANIC_IS_CAUGHT: Cell<bool> = const { Cell::new(false) };
}

/// Wraps the process panic hook (once) so panics raised inside a
/// `par_map_caught` item do not spray the default backtrace onto
/// stderr. Panics anywhere else still reach the previous hook
/// untouched.
fn install_quiet_panic_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_IS_CAUGHT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// [`par_map`] with per-item panic isolation: each closure call runs
/// under [`std::panic::catch_unwind`], so one poisoned item yields
/// `Err(panic message)` in its own slot instead of tearing down the
/// whole scope. Surviving items are untouched — their results are
/// bit-identical to a run without the panicking item.
pub(crate) fn par_map_caught<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    install_quiet_panic_hook();
    par_map(items, threads, |i, t| {
        let prev = PANIC_IS_CAUGHT.with(|c| c.replace(true));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)));
        PANIC_IS_CAUGHT.with(|c| c.set(prev));
        match caught {
            Ok(r) => Ok(r),
            Err(payload) => {
                rascad_obs::counter("engine.worker_panics", 1);
                let msg = panic_message(payload.as_ref());
                rascad_obs::incident("worker_panic", &msg);
                Err(msg)
            }
        }
    })
}

/// Best-effort extraction of a panic payload (almost always a `&str` or
/// `String` from `panic!`/`assert!`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Core-local mirror of `rascad_fault::FaultKind`, so engine code stays
/// free of `cfg` noise whether or not the `fault-inject` feature is
/// compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
pub(crate) enum InjectedFault {
    /// Panic inside the worker closure (exercises `catch_unwind`).
    Panic,
    /// Force every ladder rung to fail retryably.
    NotConverged,
    /// Corrupt the generated chain with a NaN rate.
    NanRate,
    /// Force every ladder rung to report a wall-clock timeout.
    Timeout,
    /// Stall the worker for a real wall-clock delay before solving —
    /// the chaos probe for request deadlines and cancellation.
    Delay(std::time::Duration),
}

/// The fault the active plan injects at `path`, if any; records the
/// firing in the fault registry. Compiled to a constant `None` (and
/// fully optimized out) without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
fn injected_fault(path: &str) -> Option<InjectedFault> {
    let kind = rascad_fault::fault_for(path)?;
    let fault = match kind {
        rascad_fault::FaultKind::Panic => InjectedFault::Panic,
        rascad_fault::FaultKind::NotConverged => InjectedFault::NotConverged,
        rascad_fault::FaultKind::NanRate => InjectedFault::NanRate,
        rascad_fault::FaultKind::Timeout => InjectedFault::Timeout,
        rascad_fault::FaultKind::Delay => InjectedFault::Delay(rascad_fault::delay_for(path)?),
        _ => return None,
    };
    rascad_fault::note_fired(path, kind);
    Some(fault)
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn injected_fault(_path: &str) -> Option<InjectedFault> {
    None
}

/// The parallel + memoizing solver. See the module docs for the
/// determinism contract.
pub struct Engine {
    /// Pinned worker count; `None` resolves [`default_threads`] at each
    /// call so a late `--threads` flag still applies to the global
    /// engine.
    fixed_threads: Option<usize>,
    /// `None` disables memoization entirely (the sequential reference
    /// configuration).
    cache: Option<SolveCache>,
    /// Monotonic solve-batch counter. Every `solve_spec*` batch gets
    /// its own generation, tagged onto cache inserts so a panicked
    /// batch can be evicted without touching warm entries (see
    /// [`SolveCache::evict_generation`]).
    generation: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads())
            .field("cache", &self.cache)
            .finish()
    }
}

impl Engine {
    /// Engine with caching on and the dynamic default worker count.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            fixed_threads: None,
            cache: Some(SolveCache::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Engine with caching on and a pinned worker count (`0` is clamped
    /// to 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            fixed_threads: Some(threads.max(1)),
            cache: Some(SolveCache::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// The sequential reference configuration: one thread, no cache.
    /// Reproduces the pre-engine solve path; equivalence tests and the
    /// benchmark baseline measure against this.
    #[must_use]
    pub fn sequential() -> Self {
        Engine { fixed_threads: Some(1), cache: None, generation: AtomicU64::new(0) }
    }

    /// The shared process-wide engine used by the module-level
    /// `solve_spec` / `sweep` / `solve_block` entry points.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::new)
    }

    /// Worker count this engine would use right now.
    pub fn threads(&self) -> usize {
        self.fixed_threads.unwrap_or_else(default_threads).max(1)
    }

    /// Cache counters (zeros when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(SolveCache::stats).unwrap_or_default()
    }

    /// Drops all cached solutions (no-op without a cache).
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }

    #[doc(hidden)]
    pub fn cache(&self) -> Option<&SolveCache> {
        self.cache.as_ref()
    }

    /// The next solve-batch generation (monotonic per engine, never 0
    /// so the cache's "no generation" default is never evictable by a
    /// real batch).
    fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn cached_steady(
        &self,
        model: &BlockModel,
        method: SteadyStateMethod,
        options: &SolveOptions,
        generation: u64,
    ) -> Result<(BlockMeasures, SolutionCertificate), CoreError> {
        match &self.cache {
            Some(c) => c.steady_certified_with(model, method, options, generation),
            None => steady_state_measures_with_certificate_opts(model, method, options),
        }
    }

    fn cached_mission(
        &self,
        model: &BlockModel,
        mission_hours: f64,
        generation: u64,
    ) -> Result<MissionMeasures, CoreError> {
        match &self.cache {
            Some(c) => c.mission_with(model, mission_hours, generation),
            None => crate::cache::compute_mission_measures(model, mission_hours),
        }
    }

    /// Solves one block: generate, then cached steady state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on generation or solver failure.
    pub fn solve_block_with(
        &self,
        params: &BlockParams,
        globals: &GlobalParams,
        method: SteadyStateMethod,
    ) -> Result<(BlockModel, BlockMeasures), CoreError> {
        let model = generate_block(params, globals)?;
        let (measures, _) =
            self.cached_steady(&model, method, &SolveOptions::default(), self.next_generation())?;
        Ok((model, measures))
    }

    /// Solves a complete specification with the default (GTH) method.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the spec is invalid or any chain fails
    /// to solve.
    pub fn solve_spec(&self, spec: &SystemSpec) -> Result<SystemSolution, CoreError> {
        self.solve_spec_with(spec, SteadyStateMethod::Gth)
    }

    /// [`solve_spec`](Self::solve_spec) with an explicit steady-state
    /// method. Sibling blocks are solved concurrently; the roll-up runs
    /// sequentially in diagram order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the spec is invalid or any chain fails
    /// to solve (the first failure in walk order, including a caught
    /// worker panic as [`EngineError::WorkerPanicked`]).
    pub fn solve_spec_with(
        &self,
        spec: &SystemSpec,
        method: SteadyStateMethod,
    ) -> Result<SystemSolution, CoreError> {
        self.solve_spec_mode(spec, method, &SolveOptions::default(), false)
    }

    /// [`solve_spec_with`](Self::solve_spec_with) under caller-supplied
    /// solve budgets: per-request wall-clock deadlines and cooperative
    /// cancellation tokens propagate into every solver loop of the
    /// batch. Cache hits are served regardless of budget (they cost no
    /// solver work); misses solve under the caller's budgets, and a
    /// tripped deadline or token surfaces as [`CoreError::Markov`]
    /// wrapping the typed `Timeout`/`Cancelled` error.
    ///
    /// # Errors
    ///
    /// As [`solve_spec_with`](Self::solve_spec_with).
    pub fn solve_spec_with_options(
        &self,
        spec: &SystemSpec,
        method: SteadyStateMethod,
        options: &SolveOptions,
    ) -> Result<SystemSolution, CoreError> {
        self.solve_spec_mode(spec, method, options, false)
    }

    /// [`solve_spec_with`](Self::solve_spec_with) in degraded
    /// (best-effort) mode: per-block failures — typed solver errors and
    /// caught worker panics alike — become [`FailedBlock`] entries in
    /// the returned [`SystemSolution::failed`] list instead of aborting
    /// the solve. System measures roll up *optimistically* (a failed
    /// block is treated as always-up, contributing availability 1 and
    /// failure rate 0), so [`SystemSolution::availability_bounds`]
    /// brackets the truth between 0 and the reported value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] only if the spec itself is invalid;
    /// individual block failures are reported in the solution.
    pub fn solve_spec_best_effort(
        &self,
        spec: &SystemSpec,
        method: SteadyStateMethod,
    ) -> Result<SystemSolution, CoreError> {
        self.solve_spec_mode(spec, method, &SolveOptions::default(), true)
    }

    /// [`solve_spec_best_effort`](Self::solve_spec_best_effort) under
    /// caller-supplied solve budgets (see
    /// [`solve_spec_with_options`](Self::solve_spec_with_options)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] only if the spec itself is invalid.
    pub fn solve_spec_best_effort_with_options(
        &self,
        spec: &SystemSpec,
        method: SteadyStateMethod,
        options: &SolveOptions,
    ) -> Result<SystemSolution, CoreError> {
        self.solve_spec_mode(spec, method, options, true)
    }

    fn solve_spec_mode(
        &self,
        spec: &SystemSpec,
        method: SteadyStateMethod,
        options: &SolveOptions,
        best_effort: bool,
    ) -> Result<SystemSolution, CoreError> {
        let mut span = rascad_obs::span("core.solve_spec");
        span.record("blocks", spec.root.total_blocks());
        span.record("depth", spec.root.depth());
        span.record("threads", self.threads());
        spec.validate()?;
        let mission = spec.globals.mission_time.0;
        let generation = self.next_generation();

        // Flatten the tree in walk (= solve) order, solve every block
        // independently (with per-item panic isolation), then recombine
        // sequentially.
        let mut flat: Vec<(usize, String, &Block)> = Vec::new();
        spec.root.walk(&mut |level, path, block| flat.push((level, path.to_string(), block)));
        let results = par_map_caught(&flat, self.threads(), |_, (level, path, block)| {
            self.solve_one(*level, path, block, &spec.globals, method, mission, options, generation)
        });
        let mut any_panic = false;
        let mut tasks: Vec<Option<Result<SolvedBlock, FailedBlock>>> =
            Vec::with_capacity(results.len());
        for (walk_index, (r, (level, path, _))) in results.into_iter().zip(&flat).enumerate() {
            let item = match r {
                Ok(Ok(solved)) => Ok(solved),
                Ok(Err(error)) => {
                    Err(FailedBlock { path: path.clone(), level: *level, walk_index, error })
                }
                Err(message) => {
                    any_panic = true;
                    Err(FailedBlock {
                        path: path.clone(),
                        level: *level,
                        walk_index,
                        error: CoreError::Engine(EngineError::WorkerPanicked {
                            path: path.clone(),
                            message,
                        }),
                    })
                }
            };
            tasks.push(Some(item));
        }
        // A panicking worker may have died midway through a cache
        // insert path; entries inserted by this batch's generation are
        // never served again, while warm entries from earlier clean
        // batches keep their hits.
        if any_panic {
            if let Some(cache) = &self.cache {
                cache.evict_generation(generation);
            }
        }
        if !best_effort {
            if let Some(f) =
                tasks.iter().filter_map(|t| t.as_ref().and_then(|r| r.as_ref().err())).next()
            {
                return Err(f.error.clone());
            }
        }
        span.record(
            "total_states",
            tasks
                .iter()
                .map(|t| {
                    t.as_ref().and_then(|r| r.as_ref().ok()).map_or(0, |t| t.model.state_count())
                })
                .sum::<usize>(),
        );

        let mut blocks = Vec::with_capacity(tasks.len());
        let mut failed = Vec::new();
        let mut cursor = 0usize;
        let agg = assemble_diagram(&spec.root, &mut tasks, &mut cursor, &mut blocks, &mut failed);
        debug_assert_eq!(cursor, blocks.len() + failed.len());
        if !failed.is_empty() {
            span.record("failed_blocks", failed.len());
            rascad_obs::counter("core.degraded_solves", 1);
            let paths: Vec<&str> = failed.iter().map(|f| f.path.as_str()).collect();
            rascad_obs::incident("degraded_solve", &paths.join(", "));
        }

        // Mission measures across every chain, multiplied in the same
        // block order as the sequential path.
        let mission_span = rascad_obs::span("core.mission_measures");
        let mut interval = 1.0;
        let mut reliability = 1.0;
        let mut inv_mttf = 0.0;
        for b in &blocks {
            let m = b.1;
            interval *= m.interval_availability;
            reliability *= m.reliability_at_mission;
            if m.mttf_hours.is_finite() && m.mttf_hours > 0.0 {
                inv_mttf += 1.0 / m.mttf_hours;
            }
        }
        drop(mission_span);
        let blocks: Vec<BlockSolution> = blocks.into_iter().map(|(b, _)| b).collect();

        let mean_downtime =
            if agg.failure_rate > 0.0 { (1.0 - agg.availability) / agg.failure_rate } else { 0.0 };
        let system = SystemMeasures {
            availability: agg.availability,
            unavailability: 1.0 - agg.availability,
            yearly_downtime_minutes: (1.0 - agg.availability) * crate::measures::MINUTES_PER_YEAR,
            failure_rate: agg.failure_rate,
            recovery_rate: if mean_downtime > 0.0 { 1.0 / mean_downtime } else { 0.0 },
            mtbf_hours: if agg.failure_rate > 0.0 { 1.0 / agg.failure_rate } else { f64::INFINITY },
            interval_availability: interval,
            reliability_at_mission: reliability,
            mttf_hours: if inv_mttf > 0.0 { 1.0 / inv_mttf } else { f64::INFINITY },
            mission_hours: mission,
        };
        span.record("availability", system.availability);
        rascad_obs::counter("core.specs_solved", 1);
        Ok(SystemSolution { system, blocks, failed })
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_one(
        &self,
        level: usize,
        path: &str,
        block: &Block,
        globals: &GlobalParams,
        method: SteadyStateMethod,
        mission: f64,
        options: &SolveOptions,
        generation: u64,
    ) -> Result<SolvedBlock, CoreError> {
        let mut span = rascad_obs::span("core.solve_block");
        span.record("path", path);
        span.record("level", level);
        let fault = injected_fault(path);
        if fault == Some(InjectedFault::Panic) {
            panic!("injected fault: forced worker panic at {path}");
        }
        if let Some(InjectedFault::Delay(stall)) = fault {
            // A delay fault is a stall, not a failure: the worker sleeps
            // (exercising deadlines, admission queues, and slow-path
            // telemetry downstream) and then solves normally.
            span.record("delay_ms", stall.as_millis() as f64);
            std::thread::sleep(stall);
        }
        let model = generate_block(&block.params, globals)?;
        span.record("states", model.state_count());
        // Injected solver faults bypass the cache entirely: no read (the
        // fault must fire even when an identical clean chain is cached)
        // and no write (a forced failure must never poison clean runs).
        let (measures, certificate) = match fault {
            Some(InjectedFault::NotConverged) => steady_state_measures_certified(
                &model,
                method,
                options,
                Some(ForcedFailure::NotConverged),
            )?,
            Some(InjectedFault::Timeout) => steady_state_measures_certified(
                &model,
                method,
                options,
                Some(ForcedFailure::Timeout),
            )?,
            Some(InjectedFault::NanRate) => {
                // Simulate numerical corruption the solver itself cannot
                // see: the solve succeeds, the distribution is poisoned
                // to NaN, and residual certification must catch it as a
                // fail-verdict certificate (CoreError::Certification).
                steady_state_measures_certified(
                    &model,
                    method,
                    options,
                    Some(ForcedFailure::NanPi),
                )?
            }
            _ => self.cached_steady(&model, method, options, generation)?,
        };
        if options.cancel.as_ref().is_some_and(rascad_markov::CancelToken::is_cancelled) {
            return Err(CoreError::Markov {
                block: model.name.clone(),
                source: MarkovError::Cancelled { method: "mission", iterations: 0 },
            });
        }
        let mission_measures = self.cached_mission(&model, mission, generation)?;
        Ok(SolvedBlock {
            level,
            path: path.to_string(),
            model,
            measures,
            mission_measures,
            certificate,
        })
    }

    /// Sweeps a parameter, solving the points concurrently. The `apply`
    /// closure runs sequentially (it may capture mutable state), then
    /// the mutated specs are solved on the pool; unchanged blocks hit
    /// the solve cache across points. Results are in `values` order and
    /// bit-identical to a sequential sweep.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidRequest`] when `values` is empty.
    /// * The first (in input order) solve error among the points.
    pub fn sweep(
        &self,
        base: &SystemSpec,
        values: &[f64],
        mut apply: impl FnMut(&mut SystemSpec, f64),
    ) -> Result<Vec<SweepPoint>, CoreError> {
        if values.is_empty() {
            return Err(CoreError::InvalidRequest {
                what: "sweep over an empty value list".into(),
            });
        }
        let mut span = rascad_obs::span("core.sweep");
        span.record("points", values.len());
        span.record("threads", self.threads());
        let specs: Vec<(f64, SystemSpec)> = values
            .iter()
            .map(|&value| {
                let mut spec = base.clone();
                apply(&mut spec, value);
                rascad_obs::counter("core.sweep_points", 1);
                (value, spec)
            })
            .collect();
        let solved = par_map(&specs, self.threads(), |_, (value, spec)| {
            let mut point_span = rascad_obs::span("core.sweep_point");
            point_span.record("value", *value);
            self.solve_spec(spec)
        });
        let mut points = Vec::with_capacity(solved.len());
        for (r, &value) in solved.into_iter().zip(values) {
            points.push(SweepPoint { value, solution: r? });
        }
        Ok(points)
    }

    /// Solves the baseline spec plus every ablation transform (see
    /// [`crate::ablate`]) concurrently, sharing the block cache — blocks
    /// a transform leaves untouched are solved once across the whole
    /// suite.
    ///
    /// # Errors
    ///
    /// The first (in suite order) solve error among the variants.
    pub fn ablation_suite(
        &self,
        spec: &SystemSpec,
    ) -> Result<Vec<(&'static str, SystemSolution)>, CoreError> {
        let mut span = rascad_obs::span("core.ablation_suite");
        let variants: Vec<(&'static str, SystemSpec)> = vec![
            ("baseline", spec.clone()),
            ("perfect_diagnosis", crate::ablate::perfect_diagnosis(spec)),
            ("no_latent_faults", crate::ablate::no_latent_faults(spec)),
            ("no_transients", crate::ablate::no_transients(spec)),
            ("perfect_recovery", crate::ablate::perfect_recovery(spec)),
            ("instant_logistics", crate::ablate::instant_logistics(spec)),
            ("strip_redundancy", crate::ablate::strip_redundancy(spec)),
        ];
        span.record("variants", variants.len());
        let solved = par_map(&variants, self.threads(), |_, (_, v)| self.solve_spec(v));
        let mut out = Vec::with_capacity(variants.len());
        for (r, (name, _)) in solved.into_iter().zip(&variants) {
            out.push((*name, r?));
        }
        Ok(out)
    }
}

/// One block's independently-computed results, in walk order.
struct SolvedBlock {
    level: usize,
    path: String,
    model: BlockModel,
    measures: BlockMeasures,
    mission_measures: MissionMeasures,
    certificate: SolutionCertificate,
}

/// Serial-RBD aggregate of a (sub)diagram — the same combination the
/// recursive solver used, reproduced operation-for-operation so the
/// engine's output is bit-identical to the sequential reference.
struct Aggregate {
    availability: f64,
    failure_rate: f64,
}

fn assemble_diagram(
    diagram: &Diagram,
    tasks: &mut [Option<Result<SolvedBlock, FailedBlock>>],
    cursor: &mut usize,
    out: &mut Vec<(BlockSolution, MissionMeasures)>,
    failed: &mut Vec<FailedBlock>,
) -> Aggregate {
    let mut avail = 1.0;
    let mut rate_over_avail = 0.0; // sum of f_i / A_i
    for block in &diagram.blocks {
        let combined = assemble_block(block, tasks, cursor, out, failed);
        avail *= combined.availability;
        if combined.availability > 0.0 {
            rate_over_avail += combined.failure_rate / combined.availability;
        }
    }
    Aggregate { availability: avail, failure_rate: avail * rate_over_avail }
}

fn assemble_block(
    block: &Block,
    tasks: &mut [Option<Result<SolvedBlock, FailedBlock>>],
    cursor: &mut usize,
    out: &mut Vec<(BlockSolution, MissionMeasures)>,
    failed: &mut Vec<FailedBlock>,
) -> Aggregate {
    let t = tasks[*cursor].take().expect("walk order matches assembly order");
    *cursor += 1;
    let t = match t {
        Ok(t) => t,
        Err(f) => {
            // Degraded leaf (best-effort mode): the block's own chain
            // contributes the *optimistic* identity — availability 1,
            // rate 0 — and the failure is reported explicitly. Its
            // subdiagram solved independently and still rolls up.
            failed.push(f);
            let mut avail = 1.0;
            let mut rate = 0.0;
            if let Some(sub) = &block.subdiagram {
                let sub_agg = assemble_diagram(sub, tasks, cursor, out, failed);
                avail = sub_agg.availability;
                rate = sub_agg.failure_rate;
            }
            return Aggregate { availability: avail, failure_rate: rate };
        }
    };
    let my_index = out.len();
    let measures = t.measures;
    out.push((
        BlockSolution {
            path: t.path,
            level: t.level,
            model: t.model,
            measures,
            combined_availability: measures.availability,
            combined_failure_rate: measures.failure_rate,
            certificate: t.certificate,
        },
        t.mission_measures,
    ));

    let mut avail = measures.availability;
    let mut rate = measures.failure_rate;
    if let Some(sub) = &block.subdiagram {
        let sub_agg = assemble_diagram(sub, tasks, cursor, out, failed);
        // Both the enclosure chain and the subdiagram must be up.
        let combined_avail = avail * sub_agg.availability;
        let combined_rate = rate * sub_agg.availability + sub_agg.failure_rate * avail;
        avail = combined_avail;
        rate = combined_rate;
        out[my_index].0.combined_availability = avail;
        out[my_index].0.combined_failure_rate = rate;
    }
    Aggregate { availability: avail, failure_rate: rate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;

    fn spec(blocks: usize) -> SystemSpec {
        let mut d = Diagram::new("Sys");
        for i in 0..blocks {
            d.push(
                BlockParams::new(format!("B{i}"), 2, 1)
                    .with_mtbf(Hours(10_000.0 + 1_000.0 * i as f64)),
            );
        }
        SystemSpec::new(d, rascad_spec::GlobalParams::default())
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_caught_isolates_panics_per_item() {
        let items: Vec<usize> = (0..10).collect();
        for threads in [1, 4] {
            let out = par_map_caught(&items, threads, |_, &x| {
                if x == 3 {
                    panic!("boom {x}");
                }
                x * 2
            });
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => {
                        assert_ne!(i, 3);
                        assert_eq!(*v, i * 2);
                    }
                    Err(msg) => {
                        assert_eq!(i, 3);
                        assert_eq!(msg, "boom 3");
                    }
                }
            }
        }
    }

    #[test]
    fn par_map_runs_inline_when_nested() {
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(&outer, 4, |_, &x| {
            let inner: Vec<usize> = (0..4).collect();
            // Inner call must not spawn (it runs on a pool worker).
            let inner_out = par_map(&inner, 8, |_, &y| y + x);
            inner_out.iter().sum::<usize>()
        });
        assert_eq!(out, vec![6, 10, 14, 18]);
    }

    #[test]
    fn engine_matches_sequential_reference() {
        let s = spec(5);
        let reference = Engine::sequential().solve_spec(&s).unwrap();
        for threads in [1, 2, 8] {
            let got = Engine::with_threads(threads).solve_spec(&s).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn repeated_solves_hit_the_cache() {
        let e = Engine::with_threads(1);
        let s = spec(4);
        let a = e.solve_spec(&s).unwrap();
        let first = e.cache_stats();
        let b = e.solve_spec(&s).unwrap();
        let second = e.cache_stats();
        assert_eq!(a, b);
        assert_eq!(first.hits, 0);
        // Second solve: every steady + mission lookup hits.
        assert_eq!(second.hits, first.misses);
        assert_eq!(second.misses, first.misses);
    }

    #[test]
    fn thread_override_feeds_default() {
        // Serialized against other env-sensitive tests by running in
        // its own process (cargo test uses one process per crate — this
        // only touches the override atomic, not the env var).
        set_thread_override(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(Engine::new().threads(), 3);
        assert_eq!(Engine::with_threads(7).threads(), 7);
        set_thread_override(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn ablation_suite_shares_the_cache() {
        let e = Engine::with_threads(2);
        let s = spec(3);
        let suite = e.ablation_suite(&s).unwrap();
        assert_eq!(suite.len(), 7);
        assert_eq!(suite[0].0, "baseline");
        // Variants that don't touch these simple blocks resolve to the
        // baseline chains, so the cache must have been hit.
        assert!(e.cache_stats().hits > 0, "{:?}", e.cache_stats());
        // strip_redundancy changes every chain; its solution differs.
        let strip = suite.iter().find(|(n, _)| *n == "strip_redundancy").unwrap();
        assert!(strip.1.system.availability < suite[0].1.system.availability);
    }
}
