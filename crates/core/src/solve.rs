//! One-block solve convenience: generate + steady state in one call.

use rascad_markov::SteadyStateMethod;
use rascad_spec::{BlockParams, GlobalParams};

use crate::error::CoreError;
use crate::generator::BlockModel;
use crate::measures::BlockMeasures;

/// Generates the Markov model for one block and solves its steady
/// state.
///
/// # Errors
///
/// Returns [`CoreError`] on generation or solver failure.
///
/// # Example
///
/// ```
/// use rascad_core::solve_block;
/// use rascad_spec::{BlockParams, GlobalParams};
/// use rascad_spec::units::Hours;
///
/// # fn main() -> Result<(), rascad_core::CoreError> {
/// let p = BlockParams::new("Power Supply", 2, 1).with_mtbf(Hours(200_000.0));
/// let (model, measures) = solve_block(&p, &GlobalParams::default())?;
/// assert_eq!(model.model_type, 1); // transparent/transparent default
/// assert!(measures.availability > 0.9999);
/// # Ok(())
/// # }
/// ```
pub fn solve_block(
    params: &BlockParams,
    globals: &GlobalParams,
) -> Result<(BlockModel, BlockMeasures), CoreError> {
    solve_block_with(params, globals, SteadyStateMethod::Gth)
}

/// [`solve_block`] with an explicit steady-state method (used by the
/// validation experiments to cross-check GTH against LU).
///
/// # Errors
///
/// Returns [`CoreError`] on generation or solver failure.
pub fn solve_block_with(
    params: &BlockParams,
    globals: &GlobalParams,
    method: SteadyStateMethod,
) -> Result<(BlockModel, BlockMeasures), CoreError> {
    crate::engine::Engine::global().solve_block_with(params, globals, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::{Hours, Minutes};

    #[test]
    fn solves_redundant_block() {
        let p = BlockParams::new("PSU", 3, 2).with_mtbf(Hours(150_000.0)).with_mttr_parts(
            Minutes(10.0),
            Minutes(15.0),
            Minutes(5.0),
        );
        let (model, m) = solve_block(&p, &GlobalParams::default()).unwrap();
        assert!(model.state_count() >= 3);
        assert!(m.availability > 0.99999);
        assert!(m.yearly_downtime_minutes < 10.0);
    }

    #[test]
    fn methods_agree_to_validation_threshold() {
        // The paper's validation bar: < 0.2% relative error in yearly
        // downtime between independent solvers.
        let p = BlockParams::new("X", 2, 1).with_mtbf(Hours(30_000.0));
        let g = GlobalParams::default();
        let (_, a) = solve_block_with(&p, &g, SteadyStateMethod::Gth).unwrap();
        let (_, b) = solve_block_with(&p, &g, SteadyStateMethod::Lu).unwrap();
        let rel = (a.yearly_downtime_minutes - b.yearly_downtime_minutes).abs()
            / a.yearly_downtime_minutes;
        assert!(rel < 0.002, "relative error {rel}");
    }
}
