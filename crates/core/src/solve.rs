//! One-block solve convenience and the solver fallback ladder.
//!
//! # Fallback ladder
//!
//! A production solve must not die on the first numerical hiccup: a
//! power iteration that stalls on a stiff chain, or an LU factorization
//! that goes singular to working precision, are both recoverable by a
//! more robust method. [`steady_state_ladder`] encodes that policy as a
//! fixed rung order — **sparse → power → LU → GTH** — starting at the
//! requested method and falling through only on *retryable* failures
//! (non-convergence, singularity, wall-clock timeout). GTH is the last
//! rung because its subtraction-free elimination is the numerically
//! strongest method this crate has; there is nothing to fall back to
//! after it.
//!
//! # State-count selection
//!
//! Rung choice is state-count aware. At or above
//! [`SPARSE_STATE_THRESHOLD`] states any requested method is upgraded
//! to the sparse Gauss–Seidel rung (`O(nnz)` per sweep, three-vector
//! working set), because the dense direct methods cost `O(n²)` memory
//! and `O(n³)` time there. Above [`DENSE_STATE_CAP`] the dense rungs
//! (LU, GTH) are removed from the ladder entirely — at that size a
//! dense factorization would not finish inside any reasonable wall
//! clock, so failing over to it would only convert a typed sparse error
//! into a timeout. Small chains keep the historical power → LU → GTH
//! ladder unchanged.
//!
//! Every attempt is bounded by the iteration and wall-clock budgets in
//! [`SolveOptions`], every fallback increments the `solve.fallbacks`
//! counter, and an exhausted ladder returns
//! [`MarkovError::FallbackExhausted`] carrying the full per-rung
//! attempt trail (method, iterations, residual) for diagnostics.

use rascad_markov::{Ctmc, MarkovError, SolveAttempt, SolveOptions, SteadyStateMethod};
use rascad_spec::{BlockParams, GlobalParams};

use crate::error::CoreError;
use crate::generator::BlockModel;
use crate::measures::BlockMeasures;

/// Rung order of the fallback ladder, weakest to strongest.
const LADDER: [SteadyStateMethod; 4] = [
    SteadyStateMethod::Sparse,
    SteadyStateMethod::Power,
    SteadyStateMethod::Lu,
    SteadyStateMethod::Gth,
];

/// State count at which every solve is routed to the sparse iterative
/// rung regardless of the requested method. Mirrored by lint RAS106
/// (the lint crates do not depend on this one).
pub const SPARSE_STATE_THRESHOLD: usize = 512;

/// State count above which the dense direct rungs (LU, GTH) are
/// dropped from the ladder: an `O(n³)` factorization at this size
/// cannot finish inside a production wall clock, so keeping the rungs
/// would only turn typed iterative errors into timeouts.
pub const DENSE_STATE_CAP: usize = 2048;

/// Stable lowercase name of a method (matches the `method` field of
/// [`MarkovError::NotConverged`] / [`MarkovError::Timeout`]).
#[must_use]
pub fn method_name(method: SteadyStateMethod) -> &'static str {
    match method {
        SteadyStateMethod::Sparse => "sparse",
        SteadyStateMethod::Power => "power",
        SteadyStateMethod::Lu => "lu",
        SteadyStateMethod::Gth => "gth",
    }
}

/// The method the ladder actually starts from for an `n`-state chain:
/// the request verbatim below [`SPARSE_STATE_THRESHOLD`], the sparse
/// rung at or above it.
#[must_use]
pub fn select_method(n: usize, requested: SteadyStateMethod) -> SteadyStateMethod {
    if n >= SPARSE_STATE_THRESHOLD {
        SteadyStateMethod::Sparse
    } else {
        requested
    }
}

/// Whether a rung is usable on an `n`-state chain (dense direct rungs
/// are capped at [`DENSE_STATE_CAP`] states).
fn rung_fits(method: SteadyStateMethod, n: usize) -> bool {
    match method {
        SteadyStateMethod::Lu | SteadyStateMethod::Gth => n <= DENSE_STATE_CAP,
        SteadyStateMethod::Sparse | SteadyStateMethod::Power => true,
    }
}

/// A failure mode forced onto every ladder rung by fault injection.
/// The ladder machinery (attempt recording, counters, exhaustion) runs
/// for real; only the numerical solve is replaced by a synthesized
/// failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ForcedFailure {
    /// Iterative rungs report budget exhaustion, direct rungs report
    /// singularity.
    NotConverged,
    /// Every rung reports a wall-clock timeout (without spending one).
    Timeout,
    /// The solve itself succeeds; the *result* is poisoned to NaN
    /// afterwards (by [`crate::measures::steady_state_measures_certified`])
    /// so the failure must be caught by residual certification, not by
    /// any solver-internal check.
    NanPi,
}

/// Whether an error should fall through to the next ladder rung.
/// Structural problems (reducible chain, bad rates) would fail on every
/// method, so they surface immediately instead.
fn retryable(e: &MarkovError) -> bool {
    matches!(
        e,
        MarkovError::NotConverged { .. } | MarkovError::Singular | MarkovError::Timeout { .. }
    )
}

fn run_rung(
    chain: &Ctmc,
    method: SteadyStateMethod,
    options: &SolveOptions,
    forced: Option<ForcedFailure>,
) -> Result<Vec<f64>, MarkovError> {
    match forced {
        None | Some(ForcedFailure::NanPi) => chain.steady_state_with(method, options),
        Some(ForcedFailure::NotConverged) => Err(match method {
            SteadyStateMethod::Power => MarkovError::NotConverged {
                method: "power",
                iterations: options.power_iteration_budget(chain.len()),
                residual: 1.0,
                tolerance: options.tolerance,
            },
            SteadyStateMethod::Sparse => MarkovError::NotConverged {
                method: "sparse",
                iterations: options.sparse_sweep_budget(),
                residual: 1.0,
                tolerance: options.tolerance,
            },
            _ => MarkovError::Singular,
        }),
        Some(ForcedFailure::Timeout) => {
            let budget_ms = options.wall_clock.map_or(0, |d| d.as_millis() as u64);
            Err(MarkovError::Timeout {
                method: method_name(method),
                iterations: 0,
                elapsed_ms: budget_ms,
                budget_ms,
            })
        }
    }
}

/// Stationary distribution via the fallback ladder: the selected
/// method first (see [`select_method`]), then every stronger remaining
/// rung of sparse → power → LU → GTH, each attempt bounded by
/// `options`.
///
/// # Errors
///
/// * A non-retryable error (e.g. [`MarkovError::Reducible`]) from any
///   rung, immediately.
/// * The single rung's own error when the requested method is the last
///   rung (GTH, the default, has no fallback).
/// * [`MarkovError::FallbackExhausted`] with the full attempt trail
///   when two or more rungs all failed retryably.
pub fn steady_state_ladder(
    chain: &Ctmc,
    method: SteadyStateMethod,
    options: &SolveOptions,
) -> Result<Vec<f64>, MarkovError> {
    steady_state_ladder_forced(chain, method, options, None)
}

/// A successful ladder solve plus its provenance: which rung won and
/// the human-readable attempt trail that certification stamps into the
/// [`crate::certify::SolutionCertificate`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LadderOutcome {
    /// The stationary distribution.
    pub pi: Vec<f64>,
    /// Stable name of the rung that produced `pi`.
    pub method: &'static str,
    /// One entry per attempt, failed rungs first, e.g.
    /// `["power: not converged after 1000 iterations, residual 2.1e-3",
    ///   "lu: ok"]`.
    pub trail: Vec<String>,
}

fn describe_attempt(a: &SolveAttempt) -> String {
    match (&*a.error, a.iterations, a.residual) {
        (MarkovError::NotConverged { .. }, Some(i), Some(r)) => {
            format!("{}: not converged after {i} iterations, residual {r:.3e}", a.method)
        }
        (MarkovError::Timeout { .. }, Some(i), _) => {
            format!("{}: timed out after {i} iterations", a.method)
        }
        (MarkovError::Singular, ..) => format!("{}: singular", a.method),
        (e, ..) => format!("{}: {e}", a.method),
    }
}

pub(crate) fn steady_state_ladder_forced(
    chain: &Ctmc,
    method: SteadyStateMethod,
    options: &SolveOptions,
    forced: Option<ForcedFailure>,
) -> Result<Vec<f64>, MarkovError> {
    steady_state_ladder_outcome(chain, method, options, forced).map(|o| o.pi)
}

pub(crate) fn steady_state_ladder_outcome(
    chain: &Ctmc,
    method: SteadyStateMethod,
    options: &SolveOptions,
    forced: Option<ForcedFailure>,
) -> Result<LadderOutcome, MarkovError> {
    let n = chain.len();
    let method = select_method(n, method);
    let start = LADDER.iter().position(|m| *m == method).unwrap_or(LADDER.len() - 1);
    let rungs: Vec<SteadyStateMethod> =
        LADDER[start..].iter().copied().filter(|&m| rung_fits(m, n)).collect();
    let mut attempts: Vec<SolveAttempt> = Vec::new();
    for (i, &rung) in rungs.iter().enumerate() {
        if i > 0 {
            let from = attempts.last().map_or("?", |a| a.method);
            let to = method_name(rung);
            rascad_obs::counter_with("solve.fallbacks", &[("from", from), ("to", to)], 1);
            let mut span = rascad_obs::span("core.solve_fallback");
            span.record("from", from);
            span.record("to", to);
        }
        match run_rung(chain, rung, options, forced) {
            Ok(pi) => {
                let winner = method_name(rung);
                let mut trail: Vec<String> = attempts.iter().map(describe_attempt).collect();
                trail.push(format!("{winner}: ok"));
                return Ok(LadderOutcome { pi, method: winner, trail });
            }
            Err(e) => {
                if matches!(e, MarkovError::Timeout { .. }) {
                    rascad_obs::counter("solve.timeouts", 1);
                }
                let (iterations, residual) = match &e {
                    MarkovError::NotConverged { iterations, residual, .. } => {
                        (Some(*iterations), Some(*residual))
                    }
                    MarkovError::Timeout { iterations, .. } => (Some(*iterations), None),
                    _ => (None, None),
                };
                let keep_going = retryable(&e);
                attempts.push(SolveAttempt {
                    method: method_name(rung),
                    iterations,
                    residual,
                    error: Box::new(e.clone()),
                });
                if !keep_going {
                    return Err(e);
                }
            }
        }
    }
    // Exhausted. A single attempt keeps its own error type (so a plain
    // GTH solve reports `Singular`, exactly as before the ladder); two
    // or more attempts return the full trail.
    if attempts.len() == 1 {
        return Err(*attempts.remove(0).error);
    }
    Err(MarkovError::FallbackExhausted { attempts })
}

/// Generates the Markov model for one block and solves its steady
/// state.
///
/// # Errors
///
/// Returns [`CoreError`] on generation or solver failure.
///
/// # Example
///
/// ```
/// use rascad_core::solve_block;
/// use rascad_spec::{BlockParams, GlobalParams};
/// use rascad_spec::units::Hours;
///
/// # fn main() -> Result<(), rascad_core::CoreError> {
/// let p = BlockParams::new("Power Supply", 2, 1).with_mtbf(Hours(200_000.0));
/// let (model, measures) = solve_block(&p, &GlobalParams::default())?;
/// assert_eq!(model.model_type, 1); // transparent/transparent default
/// assert!(measures.availability > 0.9999);
/// # Ok(())
/// # }
/// ```
pub fn solve_block(
    params: &BlockParams,
    globals: &GlobalParams,
) -> Result<(BlockModel, BlockMeasures), CoreError> {
    solve_block_with(params, globals, SteadyStateMethod::Gth)
}

/// [`solve_block`] with an explicit steady-state method (used by the
/// validation experiments to cross-check GTH against LU).
///
/// # Errors
///
/// Returns [`CoreError`] on generation or solver failure.
pub fn solve_block_with(
    params: &BlockParams,
    globals: &GlobalParams,
    method: SteadyStateMethod,
) -> Result<(BlockModel, BlockMeasures), CoreError> {
    crate::engine::Engine::global().solve_block_with(params, globals, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_markov::CtmcBuilder;
    use rascad_spec::units::{Hours, Minutes};

    fn two_state() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, 1e-4);
        b.add_transition(down, up, 1e-1);
        b.build().unwrap()
    }

    #[test]
    fn ladder_falls_back_from_starved_power_to_lu() {
        let chain = two_state();
        // One iteration can never converge; the ladder must recover via
        // LU and produce the same distribution a direct solve gives.
        let opts =
            SolveOptions { max_iterations: Some(1), wall_clock: None, ..SolveOptions::default() };
        let pi = steady_state_ladder(&chain, SteadyStateMethod::Power, &opts).unwrap();
        let direct = chain.steady_state(SteadyStateMethod::Lu).unwrap();
        assert_eq!(pi, direct);
    }

    #[test]
    fn ladder_outcome_carries_method_and_trail() {
        let chain = two_state();
        let opts =
            SolveOptions { max_iterations: Some(1), wall_clock: None, ..SolveOptions::default() };
        let out =
            steady_state_ladder_outcome(&chain, SteadyStateMethod::Power, &opts, None).unwrap();
        assert_eq!(out.method, "lu");
        assert_eq!(out.trail.len(), 2);
        assert!(
            out.trail[0].starts_with("power: not converged after 1 iterations"),
            "{:?}",
            out.trail
        );
        assert_eq!(out.trail[1], "lu: ok");
        // NanPi leaves the solve itself untouched.
        let clean = steady_state_ladder_outcome(
            &chain,
            SteadyStateMethod::Gth,
            &SolveOptions::default(),
            Some(ForcedFailure::NanPi),
        )
        .unwrap();
        assert_eq!(clean.method, "gth");
        assert_eq!(clean.trail, ["gth: ok"]);
        assert!(clean.pi.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn exhausted_ladder_reports_every_rung() {
        let chain = two_state();
        let opts = SolveOptions::default();
        let err = steady_state_ladder_forced(
            &chain,
            SteadyStateMethod::Power,
            &opts,
            Some(ForcedFailure::NotConverged),
        )
        .unwrap_err();
        match &err {
            MarkovError::FallbackExhausted { attempts } => {
                let methods: Vec<_> = attempts.iter().map(|a| a.method).collect();
                assert_eq!(methods, ["power", "lu", "gth"]);
                assert!(attempts[0].iterations.is_some());
                assert!(attempts[0].residual.is_some());
                assert!(matches!(*attempts[1].error, MarkovError::Singular));
            }
            other => panic!("expected FallbackExhausted, got {other:?}"),
        }
    }

    #[test]
    fn forced_timeouts_exhaust_every_rung_without_waiting() {
        let chain = two_state();
        let t0 = std::time::Instant::now();
        let err = steady_state_ladder_forced(
            &chain,
            SteadyStateMethod::Power,
            &SolveOptions::default(),
            Some(ForcedFailure::Timeout),
        )
        .unwrap_err();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        match &err {
            MarkovError::FallbackExhausted { attempts } => {
                assert_eq!(attempts.len(), 3);
                for a in attempts {
                    assert!(matches!(*a.error, MarkovError::Timeout { .. }), "{a}");
                }
            }
            other => panic!("expected FallbackExhausted, got {other:?}"),
        }
    }

    #[test]
    fn last_rung_failure_keeps_its_own_error_type() {
        // GTH is the last rung: a forced failure there must surface as
        // plain Singular, exactly as before the ladder existed.
        let chain = two_state();
        let err = steady_state_ladder_forced(
            &chain,
            SteadyStateMethod::Gth,
            &SolveOptions::default(),
            Some(ForcedFailure::NotConverged),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::Singular);
    }

    #[test]
    fn non_retryable_errors_skip_the_ladder() {
        // Two disconnected components: reducible on *every* method, so
        // the ladder must not mask the structural error by retrying.
        let mut b = CtmcBuilder::new();
        let a0 = b.add_state("a0", 1.0);
        let a1 = b.add_state("a1", 0.0);
        let b0 = b.add_state("b0", 1.0);
        let b1 = b.add_state("b1", 0.0);
        b.add_transition(a0, a1, 1.0);
        b.add_transition(a1, a0, 1.0);
        b.add_transition(b0, b1, 1.0);
        b.add_transition(b1, b0, 1.0);
        let chain = b.build().unwrap();
        let err = steady_state_ladder(&chain, SteadyStateMethod::Power, &SolveOptions::default())
            .unwrap_err();
        assert!(matches!(err, MarkovError::Reducible { .. }), "{err:?}");
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(method_name(SteadyStateMethod::Sparse), "sparse");
        assert_eq!(method_name(SteadyStateMethod::Power), "power");
        assert_eq!(method_name(SteadyStateMethod::Lu), "lu");
        assert_eq!(method_name(SteadyStateMethod::Gth), "gth");
    }

    /// Birth–death test chain with `n + 1` levels.
    fn birth_death(n: usize) -> Ctmc {
        let mut b = CtmcBuilder::new();
        for j in 0..=n {
            b.add_state(format!("L{j}"), if j == 0 { 1.0 } else { 0.0 });
        }
        for j in 0..n {
            b.add_transition(j, j + 1, (n - j) as f64 * 1e-4);
            b.add_transition(j + 1, j, (j + 1) as f64 * 0.1);
        }
        b.build().unwrap()
    }

    #[test]
    fn selection_is_state_count_aware() {
        for m in [
            SteadyStateMethod::Sparse,
            SteadyStateMethod::Power,
            SteadyStateMethod::Lu,
            SteadyStateMethod::Gth,
        ] {
            // Below the threshold the request passes through verbatim.
            assert_eq!(select_method(SPARSE_STATE_THRESHOLD - 1, m), m);
            // At and above it everything routes to the sparse rung.
            assert_eq!(select_method(SPARSE_STATE_THRESHOLD, m), SteadyStateMethod::Sparse);
        }
    }

    #[test]
    fn large_chains_solve_on_the_sparse_rung() {
        // 600 levels ≥ SPARSE_STATE_THRESHOLD: a requested GTH solve is
        // upgraded to the sparse rung, and the result matches a direct
        // GTH solve (the chain is still small enough to cross-check).
        let chain = birth_death(600);
        let out = steady_state_ladder_outcome(
            &chain,
            SteadyStateMethod::Gth,
            &SolveOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(out.method, "sparse");
        assert_eq!(out.trail, ["sparse: ok"]);
        let gth = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        for (a, b) in out.pi.iter().zip(&gth) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_rungs_are_dropped_above_the_cap() {
        // Above DENSE_STATE_CAP a forced exhaustion must show only the
        // sparse and power rungs in the trail — falling over to a dense
        // factorization at this size would just become a timeout.
        let chain = birth_death(DENSE_STATE_CAP + 10);
        let err = steady_state_ladder_forced(
            &chain,
            SteadyStateMethod::Gth,
            &SolveOptions::default(),
            Some(ForcedFailure::NotConverged),
        )
        .unwrap_err();
        match &err {
            MarkovError::FallbackExhausted { attempts } => {
                let methods: Vec<_> = attempts.iter().map(|a| a.method).collect();
                assert_eq!(methods, ["sparse", "power"]);
            }
            other => panic!("expected FallbackExhausted, got {other:?}"),
        }
    }

    #[test]
    fn solves_redundant_block() {
        let p = BlockParams::new("PSU", 3, 2).with_mtbf(Hours(150_000.0)).with_mttr_parts(
            Minutes(10.0),
            Minutes(15.0),
            Minutes(5.0),
        );
        let (model, m) = solve_block(&p, &GlobalParams::default()).unwrap();
        assert!(model.state_count() >= 3);
        assert!(m.availability > 0.99999);
        assert!(m.yearly_downtime_minutes < 10.0);
    }

    #[test]
    fn methods_agree_to_validation_threshold() {
        // The paper's validation bar: < 0.2% relative error in yearly
        // downtime between independent solvers.
        let p = BlockParams::new("X", 2, 1).with_mtbf(Hours(30_000.0));
        let g = GlobalParams::default();
        let (_, a) = solve_block_with(&p, &g, SteadyStateMethod::Gth).unwrap();
        let (_, b) = solve_block_with(&p, &g, SteadyStateMethod::Lu).unwrap();
        let rel = (a.yearly_downtime_minutes - b.yearly_downtime_minutes).abs()
            / a.yearly_downtime_minutes;
        assert!(rel < 0.002, "relative error {rel}");
    }
}
