//! Hierarchical solution of a full diagram/block tree.
//!
//! "Each MG diagram is modeled by a serial RBD which consists of all the
//! MG blocks in the diagram. Each block is then modeled by a Markov
//! chain. … The overall model is a hierarchy of RBDs and Markov chains.
//! The system availability of an MG diagram containing n blocks is the
//! product of individual block availability" (paper Section 4).
//!
//! A block with a subdiagram contributes its own chain availability
//! *times* the subdiagram's availability (both must be up for the
//! component to be up); a leaf block contributes its chain availability.
//! All blocks are independent, so system-level rates combine as
//! `f_sys = Σ_i f_i · Π_{j≠i} A_j`.

use rascad_markov::SteadyStateMethod;
use rascad_rbd::{ComponentTable, Rbd};
use rascad_spec::{Diagram, SystemSpec};

use crate::error::CoreError;
use crate::generator::{generate_block, BlockModel};
use crate::measures::BlockMeasures;

/// Per-block solution inside a system solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSolution {
    /// Slash path from the root diagram, e.g.
    /// `"Data Center System/Server Box/CPU Module"`.
    pub path: String,
    /// Diagram level (root = 1, as the paper numbers them).
    pub level: usize,
    /// The generated Markov model.
    pub model: BlockModel,
    /// Steady-state measures of the block's own chain.
    pub measures: BlockMeasures,
    /// Chain availability × subdiagram availability (equals
    /// `measures.availability` for leaf blocks).
    pub combined_availability: f64,
    /// Combined failure frequency (chain + subdiagram contributions).
    pub combined_failure_rate: f64,
    /// Accuracy evidence for the steady-state solve behind `measures`:
    /// independent residual checks, condition estimate, method trail.
    pub certificate: crate::certify::SolutionCertificate,
}

/// System-level measures of a full specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemMeasures {
    /// Steady-state system availability (product over the root
    /// diagram).
    pub availability: f64,
    /// `1 − availability`.
    pub unavailability: f64,
    /// Expected system downtime per year, minutes.
    pub yearly_downtime_minutes: f64,
    /// System failure frequency (per hour).
    pub failure_rate: f64,
    /// Reciprocal mean downtime per system failure (per hour).
    pub recovery_rate: f64,
    /// Mean time between system failures, hours.
    pub mtbf_hours: f64,
    /// Interval availability over `(0, mission_time)`, computed as the
    /// product of per-chain interval availabilities (exact pointwise
    /// under independence; the time-average product is a documented
    /// approximation, see DESIGN.md).
    pub interval_availability: f64,
    /// Probability of no system failure before the mission time,
    /// `Π R_i(T)`.
    pub reliability_at_mission: f64,
    /// System MTTF, hours, from the competing-risk combination
    /// `1 / Σ (1/MTTF_i)`.
    pub mttf_hours: f64,
    /// The mission time used for the interval measures, hours.
    pub mission_hours: f64,
}

/// One block that failed to solve in a best-effort (degraded) run.
///
/// A failed block rolls up as an explicit leaf: its own chain
/// contributes the optimistic identity (availability 1, failure rate 0)
/// to the system aggregate, and the true system availability is
/// bracketed by [`SystemSolution::availability_bounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailedBlock {
    /// Slash path from the root diagram.
    pub path: String,
    /// Diagram level (root = 1).
    pub level: usize,
    /// Position in the depth-first walk order, for interleaving with
    /// the solved blocks (see [`SystemSolution::outcomes`]).
    pub walk_index: usize,
    /// Why the block failed (typed solver error or caught worker
    /// panic).
    pub error: CoreError,
}

/// One walk position of a solved system: either a solved block or, in a
/// best-effort run, an explicit failure leaf.
#[derive(Debug, Clone, Copy)]
pub enum BlockOutcome<'a> {
    /// The block solved normally.
    Solved(&'a BlockSolution),
    /// The block failed and was rolled up optimistically.
    Failed(&'a FailedBlock),
}

/// A solved system: system-level measures plus every block's solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSolution {
    /// System-level measures. In a degraded run these are the
    /// *optimistic* values (failed blocks treated as always-up); see
    /// [`availability_bounds`](Self::availability_bounds).
    pub system: SystemMeasures,
    /// One entry per solved block, depth-first in diagram order.
    pub blocks: Vec<BlockSolution>,
    /// Blocks that failed to solve, in walk order. Always empty in
    /// strict mode (the default), possibly non-empty after
    /// `solve_spec_best_effort`.
    pub failed: Vec<FailedBlock>,
}

impl SystemSolution {
    /// Finds a block solution by its slash path.
    #[must_use]
    pub fn block(&self, path: &str) -> Option<&BlockSolution> {
        self.blocks.iter().find(|b| b.path == path)
    }

    /// Whether any block failed (best-effort mode only).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }

    /// `(pessimistic, optimistic)` bounds on the true system
    /// availability. Equal for a clean solve; for a degraded solve the
    /// pessimistic bound is 0 (a failed block may be always-down) and
    /// the optimistic bound is the reported availability (failed blocks
    /// treated as always-up).
    #[must_use]
    pub fn availability_bounds(&self) -> (f64, f64) {
        if self.failed.is_empty() {
            (self.system.availability, self.system.availability)
        } else {
            (0.0, self.system.availability)
        }
    }

    /// Every walk position in depth-first diagram order, interleaving
    /// solved blocks and failure leaves.
    #[must_use]
    pub fn outcomes(&self) -> Vec<BlockOutcome<'_>> {
        let total = self.blocks.len() + self.failed.len();
        let mut out = Vec::with_capacity(total);
        let mut solved = self.blocks.iter();
        let mut failed = self.failed.iter().peekable();
        for idx in 0..total {
            match failed.peek() {
                Some(f) if f.walk_index == idx => {
                    out.push(BlockOutcome::Failed(failed.next().expect("peeked")));
                }
                _ => {
                    out.push(BlockOutcome::Solved(
                        solved.next().expect("walk positions partition into solved and failed"),
                    ));
                }
            }
        }
        out
    }

    /// Builds the serial RBD of the root diagram (one component per
    /// top-level block with its combined availability) — the
    /// "hierarchy of RBDs and Markov chains" view.
    #[must_use]
    pub fn root_rbd(&self) -> (ComponentTable, Rbd) {
        let mut table = ComponentTable::new();
        let mut children = Vec::new();
        for b in self.blocks.iter().filter(|b| b.level == 1) {
            let id = table.add(b.path.clone(), b.combined_availability);
            children.push(Rbd::component(id));
        }
        (table, Rbd::series(children))
    }

    /// The *flat* RBD over every chain in the tree (one component per
    /// block, all in series, with the block's own chain availability).
    /// Equivalent to [`root_rbd`](Self::root_rbd) in value but exposes
    /// every block for importance analysis.
    #[must_use]
    pub fn flat_rbd(&self) -> (ComponentTable, Rbd) {
        let mut table = ComponentTable::new();
        let mut children = Vec::new();
        for b in &self.blocks {
            let id = table.add(b.path.clone(), b.measures.availability);
            children.push(Rbd::component(id));
        }
        (table, Rbd::series(children))
    }

    /// Ranks every block by its system-level importance (Birnbaum,
    /// improvement potential, criticality) over the flat RBD view.
    ///
    /// # Errors
    ///
    /// Propagates RBD evaluation errors (cannot occur for a solved
    /// system).
    pub fn block_importance(
        &self,
    ) -> Result<Vec<(String, rascad_rbd::importance::ComponentImportance)>, CoreError> {
        let (table, rbd) = self.flat_rbd();
        let report = rascad_rbd::importance::importance(&rbd, &table)?;
        Ok(report.components.into_iter().map(|c| (c.name.clone(), c)).collect())
    }
}

/// Solves a complete specification with the default (GTH) method.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid or any chain fails to
/// solve.
pub fn solve_spec(spec: &SystemSpec) -> Result<SystemSolution, CoreError> {
    solve_spec_with(spec, SteadyStateMethod::Gth)
}

/// [`solve_spec`] with an explicit steady-state method.
///
/// Delegates to the process-wide [`crate::engine::Engine`], so repeated
/// solves of overlapping specs reuse cached block solutions and sibling
/// blocks are solved concurrently; the result is bit-identical to the
/// sequential single-solve path (see the engine's determinism contract).
///
/// # Errors
///
/// Returns [`CoreError`] if the spec is invalid or any chain fails to
/// solve.
pub fn solve_spec_with(
    spec: &SystemSpec,
    method: SteadyStateMethod,
) -> Result<SystemSolution, CoreError> {
    crate::engine::Engine::global().solve_spec_with(spec, method)
}

/// [`solve_spec_with`] in best-effort (degraded) mode: block failures
/// become [`FailedBlock`] entries instead of aborting the solve (see
/// [`crate::engine::Engine::solve_spec_best_effort`]).
///
/// # Errors
///
/// Returns [`CoreError`] only if the spec itself is invalid.
pub fn solve_spec_best_effort(
    spec: &SystemSpec,
    method: SteadyStateMethod,
) -> Result<SystemSolution, CoreError> {
    crate::engine::Engine::global().solve_spec_best_effort(spec, method)
}

/// Exact system interval availability over `(0, horizon)`.
///
/// The per-solution `interval_availability` multiplies per-block
/// interval availabilities, which swaps a time average with a product
/// (a tiny, documented approximation). This computes the true value:
/// the pointwise product of point availabilities `Π_b A_b(t)` on a
/// composite-Simpson grid (one shared uniformization pass per chain via
/// [`rascad_markov::transient::solve_grid`]), integrated over the
/// horizon.
///
/// `points` is the number of grid intervals (>= 8). The grid is
/// *geometric* (graded toward zero) so the fast initial transient —
/// repair-scale dynamics that relax within hours against a horizon of
/// months — is resolved without an astronomical uniform grid; the
/// integral uses the trapezoid rule per segment.
///
/// # Errors
///
/// * [`CoreError::InvalidRequest`] for a bad grid or horizon.
/// * Generation/solver errors for the spec's chains.
pub fn interval_availability_exact(
    spec: &SystemSpec,
    horizon_hours: f64,
    points: usize,
) -> Result<f64, CoreError> {
    if points < 8 {
        return Err(CoreError::InvalidRequest {
            what: format!("grid needs at least 8 intervals, got {points}"),
        });
    }
    if !horizon_hours.is_finite() || horizon_hours <= 0.0 {
        return Err(CoreError::InvalidRequest {
            what: format!("horizon {horizon_hours} must be positive"),
        });
    }
    spec.validate()?;
    let mut span = rascad_obs::span("core.interval_availability_exact");
    span.record("horizon_hours", horizon_hours);
    span.record("grid_points", points);

    // Geometric grid from T·1e-8 to T, plus t = 0.
    let lo = horizon_hours * 1e-8;
    let ratio = (horizon_hours / lo).powf(1.0 / (points - 1) as f64);
    let mut times = Vec::with_capacity(points + 1);
    times.push(0.0);
    let mut t = lo;
    for _ in 0..points {
        times.push(t.min(horizon_hours));
        t *= ratio;
    }
    *times.last_mut().expect("nonempty") = horizon_hours;
    // Pointwise product of block availabilities across the whole tree.
    let mut product = vec![1.0; times.len()];
    let mut stack: Vec<&Diagram> = vec![&spec.root];
    while let Some(d) = stack.pop() {
        for block in &d.blocks {
            let model = generate_block(&block.params, &spec.globals)?;
            let mut p0 = vec![0.0; model.chain.len()];
            p0[model.ok_state()] = 1.0;
            let sols = rascad_markov::transient::solve_grid(
                &model.chain,
                &p0,
                &times,
                rascad_markov::TransientOptions::default(),
            )
            .map_err(|source| CoreError::Markov { block: block.params.name.clone(), source })?;
            for (acc, sol) in product.iter_mut().zip(&sols) {
                *acc *= sol.point_reward;
            }
            if let Some(sub) = &block.subdiagram {
                stack.push(sub);
            }
        }
    }

    // Trapezoid over the graded grid.
    let mut integral = 0.0;
    for i in 1..times.len() {
        integral += 0.5 * (product[i] + product[i - 1]) * (times[i] - times[i - 1]);
    }
    Ok((integral / horizon_hours).clamp(0.0, 1.0))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use rascad_spec::units::{Hours, Minutes};
    use rascad_spec::{Block, BlockParams, GlobalParams};

    fn two_block_spec() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(
            BlockParams::new("A", 1, 1)
                .with_mtbf(Hours(10_000.0))
                .with_mttr_parts(Minutes(60.0), Minutes(0.0), Minutes(0.0))
                .with_service_response(Hours(0.0)),
        );
        d.push(
            BlockParams::new("B", 1, 1)
                .with_mtbf(Hours(20_000.0))
                .with_mttr_parts(Minutes(120.0), Minutes(0.0), Minutes(0.0))
                .with_service_response(Hours(0.0)),
        );
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn series_availability_is_product() {
        let spec = two_block_spec();
        let sol = solve_spec(&spec).unwrap();
        let a1 = 10_000.0 / 10_001.0;
        let a2 = 20_000.0 / 20_002.0;
        assert!((sol.system.availability - a1 * a2).abs() < 1e-12);
        assert_eq!(sol.blocks.len(), 2);
        assert!(sol.block("Sys/A").is_some());
        assert!(sol.block("Sys/Nope").is_none());
    }

    #[test]
    fn series_failure_rate_combines() {
        let spec = two_block_spec();
        let sol = solve_spec(&spec).unwrap();
        let a = sol.block("Sys/A").unwrap().measures;
        let b = sol.block("Sys/B").unwrap().measures;
        let expect = a.failure_rate * b.availability + b.failure_rate * a.availability;
        assert!((sol.system.failure_rate - expect).abs() < 1e-15);
    }

    #[test]
    fn hierarchy_multiplies_through_subdiagrams() {
        let mut sub = Diagram::new("Internals");
        sub.push(
            BlockParams::new("CPU", 1, 1)
                .with_mtbf(Hours(50_000.0))
                .with_service_response(Hours(0.0)),
        );
        let mut root = Diagram::new("Sys");
        root.push_block(Block::with_subdiagram(
            BlockParams::new("Box", 1, 1).with_mtbf(Hours(1e9)),
            sub,
        ));
        let spec = SystemSpec::new(root, GlobalParams::default());
        let sol = solve_spec(&spec).unwrap();
        let box_sol = sol.block("Sys/Box").unwrap();
        let cpu_sol = sol.block("Sys/Box/CPU").unwrap();
        assert_eq!(cpu_sol.level, 2);
        assert!(
            (box_sol.combined_availability
                - box_sol.measures.availability * cpu_sol.measures.availability)
                .abs()
                < 1e-15
        );
        assert!((sol.system.availability - box_sol.combined_availability).abs() < 1e-15);
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = SystemSpec::new(Diagram::new("Empty"), GlobalParams::default());
        assert!(matches!(solve_spec(&spec), Err(CoreError::Spec(_))));
    }

    #[test]
    fn mission_measures_are_consistent() {
        let spec = two_block_spec();
        let sol = solve_spec(&spec).unwrap();
        let m = &sol.system;
        assert!(m.interval_availability >= m.availability - 1e-12);
        assert!(m.interval_availability <= 1.0);
        assert!(m.reliability_at_mission > 0.0 && m.reliability_at_mission < 1.0);
        // MTTF combines like parallel resistors of the block MTTFs
        // (~1/(1/10000+1/20000) = 6667 h).
        assert!((m.mttf_hours - 6667.0).abs() < 20.0, "{}", m.mttf_hours);
        assert_eq!(m.mission_hours, 8760.0);
    }

    #[test]
    fn block_importance_ranks_the_weak_block_first() {
        let mut d = Diagram::new("Sys");
        d.push(
            BlockParams::new("Weak", 1, 1)
                .with_mtbf(Hours(2_000.0))
                .with_mttr_parts(Minutes(240.0), Minutes(0.0), Minutes(0.0))
                .with_service_response(Hours(0.0)),
        );
        d.push(
            BlockParams::new("Strong", 1, 1)
                .with_mtbf(Hours(100_000.0))
                .with_mttr_parts(Minutes(30.0), Minutes(0.0), Minutes(0.0))
                .with_service_response(Hours(0.0)),
        );
        let sol = solve_spec(&SystemSpec::new(d, GlobalParams::default())).unwrap();
        let ranking = sol.block_importance().unwrap();
        assert_eq!(ranking.len(), 2);
        let weak = ranking.iter().find(|(n, _)| n == "Sys/Weak").unwrap();
        let strong = ranking.iter().find(|(n, _)| n == "Sys/Strong").unwrap();
        // The weak block owns almost all the criticality.
        assert!(weak.1.criticality > strong.1.criticality * 10.0);
        assert!(weak.1.improvement_potential > strong.1.improvement_potential);
        // Flat RBD availability equals the system availability.
        let (table, rbd) = sol.flat_rbd();
        assert!((rbd.availability(&table).unwrap() - sol.system.availability).abs() < 1e-12);
    }

    #[test]
    fn root_rbd_reproduces_availability() {
        let spec = two_block_spec();
        let sol = solve_spec(&spec).unwrap();
        let (table, rbd) = sol.root_rbd();
        let a = rbd.availability(&table).unwrap();
        assert!((a - sol.system.availability).abs() < 1e-12);
    }

    #[test]
    fn exact_interval_availability_brackets() {
        let spec = two_block_spec();
        let sol = solve_spec(&spec).unwrap();
        let exact = interval_availability_exact(&spec, 8760.0, 64).unwrap();
        // Between steady state and 1, and close to the product
        // approximation already reported.
        assert!(exact >= sol.system.availability - 1e-9, "{exact}");
        assert!(exact <= 1.0);
        assert!(
            (exact - sol.system.interval_availability).abs() < 1e-6,
            "exact {exact} vs product {}",
            sol.system.interval_availability
        );
    }

    #[test]
    fn exact_interval_availability_rejects_bad_grid() {
        let spec = two_block_spec();
        assert!(interval_availability_exact(&spec, 8760.0, 4).is_err());
        assert!(interval_availability_exact(&spec, 8760.0, 0).is_err());
        assert!(interval_availability_exact(&spec, -1.0, 4).is_err());
    }

    #[test]
    fn gth_and_lu_agree_end_to_end() {
        let spec = two_block_spec();
        let g = solve_spec_with(&spec, SteadyStateMethod::Gth).unwrap();
        let l = solve_spec_with(&spec, SteadyStateMethod::Lu).unwrap();
        let rel = (g.system.yearly_downtime_minutes - l.system.yearly_downtime_minutes).abs()
            / g.system.yearly_downtime_minutes;
        assert!(rel < 0.002, "relative error {rel}");
    }
}
