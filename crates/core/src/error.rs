//! Error type for model generation and solution.

use std::fmt;

use rascad_markov::MarkovError;
use rascad_rbd::RbdError;
use rascad_spec::SpecError;

/// Error produced by the Model Generator pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The input specification failed validation.
    Spec(SpecError),
    /// A generated Markov chain could not be built or solved.
    Markov {
        /// Path of the block whose chain failed.
        block: String,
        /// The underlying solver error.
        source: MarkovError,
    },
    /// An RBD evaluation failed.
    Rbd(RbdError),
    /// The parallel engine failed outside the numerical pipeline.
    Engine(EngineError),
    /// A sweep or measure request was malformed.
    InvalidRequest {
        /// Description of the problem.
        what: String,
    },
    /// A solve *completed* but its result failed residual
    /// certification: the independent `‖πQ‖∞` / `Σπ−1` checks landed on
    /// [`crate::certify::Verdict::Fail`], so the number must not be
    /// reported as if it were trustworthy.
    Certification {
        /// Path of the block whose solution failed certification.
        block: String,
        /// The relative stationarity residual `‖πQ‖∞ / ‖Q‖∞`.
        residual: f64,
        /// The probability-mass error `|Σπ − 1|`.
        prob_mass_error: f64,
    },
}

/// Failure of the parallel engine itself (as opposed to the numerical
/// pipeline it runs).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A worker closure panicked while solving one block. The panic was
    /// caught at the item boundary, so every other block's result is
    /// unaffected (and bit-identical to a clean run).
    WorkerPanicked {
        /// Walk path of the block whose solve panicked.
        path: String,
        /// The panic payload, when it was a string (the common case);
        /// a placeholder otherwise.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanicked { path, message } => {
                write!(f, "worker panicked while solving block \"{path}\": {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Spec(e) => write!(f, "specification error: {e}"),
            CoreError::Markov { block, source } => {
                write!(f, "markov solver error in block \"{block}\": {source}")
            }
            CoreError::Rbd(e) => write!(f, "rbd error: {e}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::InvalidRequest { what } => write!(f, "invalid request: {what}"),
            CoreError::Certification { block, residual, prob_mass_error } => write!(
                f,
                "solution for block \"{block}\" failed certification: \
                 residual {residual:.3e}, probability mass error {prob_mass_error:.3e}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Spec(e) => Some(e),
            CoreError::Markov { source, .. } => Some(source),
            CoreError::Rbd(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::InvalidRequest { .. } => None,
            CoreError::Certification { .. } => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<SpecError> for CoreError {
    fn from(e: SpecError) -> Self {
        CoreError::Spec(e)
    }
}

impl From<RbdError> for CoreError {
    fn from(e: RbdError) -> Self {
        CoreError::Rbd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::Markov { block: "Sys/CPU".into(), source: MarkovError::Singular };
        assert!(e.to_string().contains("Sys/CPU"));
        assert!(e.source().is_some());
        let e2 = CoreError::InvalidRequest { what: "negative horizon".into() };
        assert!(e2.source().is_none());
        assert!(!e2.to_string().is_empty());
    }
}
