//! Independent residual certification of solved distributions.
//!
//! A solver reporting success is not evidence the number is right: an
//! ill-conditioned system can converge to garbage without tripping any
//! internal check. This module re-verifies every steady-state solution
//! *from outside the solver* — `‖πQ‖∞` (is it actually stationary?)
//! and `|Σπ − 1|` (is it actually a distribution?) against fixed
//! tolerances — and stamps the result into a [`SolutionCertificate`]
//! carried by every solved block. For small chains the certificate also
//! includes a Hager 1-norm condition estimate of the steady-state
//! system, so a fragile solve is distinguishable from a robust one even
//! when both residuals look clean.
//!
//! Certification is deterministic and runs on every solve (cached
//! entries store their certificate alongside the measures), so
//! telemetry on/off and thread count cannot change a certificate bit.
//! Each fresh certification records `solve.certified{verdict=...}`.

use rascad_markov::dense::DenseMatrix;
use rascad_markov::{Ctmc, TransientSolution};

/// Relative residual (and probability-mass error) at or below which a
/// solve certifies [`Verdict::Ok`].
pub const RESIDUAL_OK: f64 = 1e-9;

/// Upper bound of the [`Verdict::Warn`] band; beyond it (or on any
/// non-finite residual) the certificate is [`Verdict::Fail`].
pub const RESIDUAL_WARN: f64 = 1e-6;

/// Chains larger than this skip the condition estimate: the estimator
/// needs an `O(n³)` dense factorization, which stops being free well
/// before the sizes the sparse iterative rung handles. Certification
/// itself stays `O(nnz)` — the residual check is one sparse SpMV — so
/// every solve, including 10^5-state sparse ones, gets a certificate.
pub const CONDEST_MAX_STATES: usize = 128;

/// Certification outcome, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Both residuals within [`RESIDUAL_OK`].
    Ok,
    /// A residual in the ([`RESIDUAL_OK`], [`RESIDUAL_WARN`]] band —
    /// usable, but the accuracy margin is thin.
    Warn,
    /// A residual beyond [`RESIDUAL_WARN`], or non-finite: the number
    /// must not be trusted.
    Fail,
}

impl Verdict {
    /// Stable lowercase name (the `verdict` label of
    /// `solve.certified`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Fail => "fail",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Independent accuracy evidence attached to a solved distribution.
#[derive(Debug, Clone)]
pub struct SolutionCertificate {
    /// `‖πQ‖∞ / ‖Q‖∞` — the stationarity residual, scaled by the
    /// generator's norm so stiff and gentle chains gate identically.
    /// For transient certificates this is the truncation error instead.
    pub residual_inf: f64,
    /// `|Σπ − 1|`.
    pub prob_mass_error: f64,
    /// Hager 1-norm condition estimate of the steady-state system
    /// (`Qᵀ` with the normalization row); `None` for chains above
    /// [`CONDEST_MAX_STATES`] or when the factorization is singular.
    pub condition_estimate: Option<f64>,
    /// The method that produced the certified distribution.
    pub method: String,
    /// The solve's method trail: one entry per ladder attempt, e.g.
    /// `["power: not converged after 1000 iterations", "lu: ok"]`.
    pub trail: Vec<String>,
    /// The gate decision.
    pub verdict: Verdict,
}

/// Bit-exact equality: certificates ride inside solution types whose
/// determinism tests compare across thread counts and telemetry states,
/// so `NaN == NaN` must hold and `-0.0 != 0.0` must be visible.
impl PartialEq for SolutionCertificate {
    fn eq(&self, other: &Self) -> bool {
        self.residual_inf.to_bits() == other.residual_inf.to_bits()
            && self.prob_mass_error.to_bits() == other.prob_mass_error.to_bits()
            && self.condition_estimate.map(f64::to_bits)
                == other.condition_estimate.map(f64::to_bits)
            && self.method == other.method
            && self.trail == other.trail
            && self.verdict == other.verdict
    }
}

fn verdict_for(residual: f64, mass_error: f64) -> Verdict {
    if !(residual.is_finite() && mass_error.is_finite()) {
        return Verdict::Fail;
    }
    let worst = residual.max(mass_error);
    if worst <= RESIDUAL_OK {
        Verdict::Ok
    } else if worst <= RESIDUAL_WARN {
        Verdict::Warn
    } else {
        Verdict::Fail
    }
}

/// Certifies a steady-state distribution against its chain: computes
/// `‖πQ‖∞ / ‖Q‖∞` and `|Σπ − 1|` independently of whatever solver
/// produced `pi`, estimates the system's condition number for small
/// chains, and records `solve.certified{verdict}`.
///
/// # Panics
///
/// Panics if `pi.len() != chain.len()`.
#[must_use]
pub fn certify_steady(
    chain: &Ctmc,
    pi: &[f64],
    method: &str,
    trail: Vec<String>,
) -> SolutionCertificate {
    assert_eq!(pi.len(), chain.len(), "dimension mismatch");
    let generator = chain.generator();
    // ‖πQ‖∞, scaled by ‖Q‖∞ = 2·max|q_ii| (row sums of a generator
    // vanish, so each row's absolute sum is twice its diagonal).
    let residual_abs =
        generator
            .vec_mul(pi)
            .iter()
            .fold(0.0f64, |acc, r| if r.abs() > acc { r.abs() } else { acc });
    let scale = 2.0 * generator.max_abs_diagonal();
    let residual_inf = if scale > 0.0 { residual_abs / scale } else { residual_abs };
    let prob_mass_error = (pi.iter().sum::<f64>() - 1.0).abs();

    let n = chain.len();
    let condition_estimate = if n <= CONDEST_MAX_STATES {
        // The steady-state system the direct rungs solve: Qᵀ with the
        // last equation replaced by Σπ = 1.
        let q = generator.to_dense();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = q[(j, i)];
            }
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        a.condest_1norm().ok()
    } else {
        None
    };

    let verdict = verdict_for(residual_inf, prob_mass_error);
    rascad_obs::counter_with("solve.certified", &[("verdict", verdict.as_str())], 1);
    SolutionCertificate {
        residual_inf,
        prob_mass_error,
        condition_estimate,
        method: method.to_string(),
        trail,
        verdict,
    }
}

/// Certifies a transient (uniformization) solution: the residual is the
/// truncation error of the Poisson series — the probability mass the
/// truncated sum failed to capture — and the mass error is checked on
/// the (renormalized) returned distribution. Records
/// `solve.certified{verdict}`.
#[must_use]
pub fn certify_transient(sol: &TransientSolution) -> SolutionCertificate {
    let prob_mass_error = (sol.probabilities.iter().sum::<f64>() - 1.0).abs();
    let verdict = verdict_for(sol.truncation, prob_mass_error);
    rascad_obs::counter_with("solve.certified", &[("verdict", verdict.as_str())], 1);
    SolutionCertificate {
        residual_inf: sol.truncation,
        prob_mass_error,
        condition_estimate: None,
        method: "transient".to_string(),
        trail: vec![format!("transient: uniformization to t={}", sol.time)],
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_markov::CtmcBuilder;

    fn two_state() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, 1e-4);
        b.add_transition(down, up, 1e-1);
        b.build().unwrap()
    }

    #[test]
    fn exact_solution_certifies_ok() {
        let chain = two_state();
        let pi = chain.steady_state(rascad_markov::SteadyStateMethod::Gth).unwrap();
        let cert = certify_steady(&chain, &pi, "gth", vec!["gth: ok".into()]);
        assert_eq!(cert.verdict, Verdict::Ok);
        assert!(cert.residual_inf <= RESIDUAL_OK, "{}", cert.residual_inf);
        assert!(cert.prob_mass_error <= RESIDUAL_OK);
        assert!(cert.condition_estimate.is_some_and(|c| c >= 1.0));
        assert_eq!(cert.method, "gth");
    }

    #[test]
    fn condition_estimate_matches_hand_computed_chain() {
        // Symmetric two-state chain with rate 1 both ways:
        // A = [[-1, 1], [1, 1]] (Qᵀ with normalization row).
        // ‖A‖₁ = 2, A⁻¹ = ¼·[[-2, 2], [2, 2]], ‖A⁻¹‖₁ = 1, κ₁ = 2.
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, 1.0);
        b.add_transition(down, up, 1.0);
        let chain = b.build().unwrap();
        let cert = certify_steady(&chain, &[0.5, 0.5], "gth", vec![]);
        let c = cert.condition_estimate.unwrap();
        assert!((c - 2.0).abs() < 1e-12, "{c}");
        assert_eq!(cert.verdict, Verdict::Ok);
    }

    #[test]
    fn poisoned_distribution_certifies_fail() {
        let chain = two_state();
        let cert = certify_steady(&chain, &[f64::NAN, f64::NAN], "gth", vec![]);
        assert_eq!(cert.verdict, Verdict::Fail);
        assert!(cert.residual_inf.is_nan() || cert.prob_mass_error.is_nan());
        // NaN-safe equality: the certificate still equals itself.
        assert_eq!(cert, cert.clone());
    }

    #[test]
    fn sloppy_distribution_lands_in_the_warn_band() {
        let chain = two_state();
        let exact = chain.steady_state(rascad_markov::SteadyStateMethod::Gth).unwrap();
        // Perturb within (1e-9, 1e-6]: a usable but thin result.
        let sloppy: Vec<f64> = exact.iter().map(|p| p + 5e-8).collect();
        let cert = certify_steady(&chain, &sloppy, "power", vec![]);
        assert_eq!(cert.verdict, Verdict::Warn, "{cert:?}");
        // And far beyond the band: fail.
        let garbage: Vec<f64> = exact.iter().map(|p| p + 0.25).collect();
        let cert = certify_steady(&chain, &garbage, "power", vec![]);
        assert_eq!(cert.verdict, Verdict::Fail);
    }

    #[test]
    fn big_chains_skip_the_condition_estimate() {
        let mut b = CtmcBuilder::new();
        let n = CONDEST_MAX_STATES + 1;
        for i in 0..n {
            b.add_state(format!("s{i}"), 1.0);
        }
        for i in 0..n {
            b.add_transition(i, (i + 1) % n, 1.0);
            b.add_transition((i + 1) % n, i, 2.0);
        }
        let chain = b.build().unwrap();
        let pi = chain.steady_state(rascad_markov::SteadyStateMethod::Gth).unwrap();
        let cert = certify_steady(&chain, &pi, "gth", vec![]);
        assert_eq!(cert.condition_estimate, None);
        assert_eq!(cert.verdict, Verdict::Ok);
    }

    #[test]
    fn verdict_ordering_and_names() {
        assert!(Verdict::Ok < Verdict::Warn);
        assert!(Verdict::Warn < Verdict::Fail);
        assert_eq!(Verdict::Ok.as_str(), "ok");
        assert_eq!(Verdict::Warn.to_string(), "warn");
        assert_eq!(Verdict::Fail.as_str(), "fail");
    }
}
