//! Span-tree aggregation: depth-aware, deterministic span statistics.
//!
//! Live span events carry a parent id but no depth; this module
//! reconstructs the nesting level from the start/end stream and folds
//! every closed span into a per-`(depth, name)` aggregate with a
//! duration histogram, so consumers get a stable, emission-order-free
//! view of where the time went. The benchmark harness (`rascad bench`)
//! serializes the aggregate into the `spans` section of its
//! `BENCH_*.json` artifact, and [`crate::SummarySink`] prints it as the
//! `--timings` table.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use crate::agg::Histogram;
use crate::json::Value;
use crate::sink::Event;

/// Aggregate of every closed span sharing one `(depth, name)` key.
#[derive(Debug, Clone, Default)]
pub struct SpanNodeStat {
    /// Number of spans folded in.
    pub count: u64,
    /// Sum of wall-clock durations.
    pub total: Duration,
    /// Longest single duration.
    pub max: Duration,
    /// Duration distribution in microseconds (for p50/p90/p99).
    pub durations: Histogram,
}

impl SpanNodeStat {
    /// Mean duration (zero when empty).
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX).max(1)
        }
    }
}

/// Folds a span event stream into per-`(depth, name)` statistics.
///
/// Feed every event to [`observe`](Self::observe); read the result via
/// [`iter`](Self::iter) (sorted by depth, then name — deterministic
/// regardless of emission interleaving) or [`to_json`](Self::to_json).
///
/// Depth is the nesting level on the emitting thread: a span whose
/// parent is unknown (or absent) is depth 0. Spans that are still open
/// when the aggregate is read are simply not counted yet.
#[derive(Debug, Default)]
pub struct SpanTreeAgg {
    /// Depth of every currently-open span, by id.
    live: HashMap<u64, usize>,
    stats: BTreeMap<(usize, &'static str), SpanNodeStat>,
}

impl SpanTreeAgg {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in. Metrics events are ignored.
    pub fn observe(&mut self, event: &Event) {
        match event {
            Event::SpanStart { id, parent, .. } => {
                let depth = parent.and_then(|p| self.live.get(&p).copied()).map_or(0, |d| d + 1);
                self.live.insert(*id, depth);
            }
            Event::SpanEnd { id, name, elapsed, .. } => {
                let depth = self.live.remove(id).unwrap_or(0);
                let stat = self.stats.entry((depth, name)).or_default();
                stat.count += 1;
                stat.total += *elapsed;
                stat.max = stat.max.max(*elapsed);
                stat.durations.record(elapsed.as_secs_f64() * 1e6);
            }
            Event::Metrics { .. } => {}
        }
    }

    /// Whether no span has closed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Closed-span aggregates in `(depth, name)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, &'static str), &SpanNodeStat)> {
        self.stats.iter()
    }

    /// Drops the closed-span statistics, keeping knowledge of spans
    /// that are still open (so their eventual ends still get a depth).
    pub fn clear(&mut self) {
        self.stats.clear();
    }

    /// Serializes the aggregate as a JSON array sorted by
    /// `(depth, name)`, durations in microseconds.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Arr(
            self.stats
                .iter()
                .map(|(&(depth, name), s)| {
                    let snap = s.durations.snapshot();
                    Value::Obj(vec![
                        ("name".into(), Value::from(name)),
                        ("depth".into(), Value::from(depth)),
                        ("count".into(), Value::from(s.count)),
                        ("total_us".into(), Value::Num(s.total.as_secs_f64() * 1e6)),
                        ("mean_us".into(), Value::Num(s.mean().as_secs_f64() * 1e6)),
                        ("max_us".into(), Value::Num(s.max.as_secs_f64() * 1e6)),
                        ("p50_us".into(), Value::Num(snap.p50)),
                        ("p90_us".into(), Value::Num(snap.p90)),
                        ("p99_us".into(), Value::Num(snap.p99)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: Option<u64>, name: &'static str) -> Event {
        Event::SpanStart { id, parent, name, at: Duration::ZERO, tid: 0 }
    }

    fn end(id: u64, name: &'static str, us: u64) -> Event {
        Event::SpanEnd {
            id,
            name,
            at: Duration::ZERO,
            elapsed: Duration::from_micros(us),
            fields: Vec::new(),
            tid: 0,
        }
    }

    #[test]
    fn depth_follows_parent_links() {
        let mut agg = SpanTreeAgg::new();
        agg.observe(&start(1, None, "outer"));
        agg.observe(&start(2, Some(1), "mid"));
        agg.observe(&start(3, Some(2), "leaf"));
        agg.observe(&end(3, "leaf", 10));
        agg.observe(&end(2, "mid", 30));
        agg.observe(&end(1, "outer", 100));
        let keys: Vec<(usize, &str)> = agg.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![(0, "outer"), (1, "mid"), (2, "leaf")]);
    }

    #[test]
    fn ordering_is_independent_of_emission_order() {
        // Two interleavings of the same spans must aggregate
        // identically: (depth, name) keys, not arrival order.
        let mut a = SpanTreeAgg::new();
        let mut b = SpanTreeAgg::new();
        for ev in [
            start(1, None, "zeta"),
            end(1, "zeta", 5),
            start(2, None, "alpha"),
            start(3, Some(2), "beta"),
            end(3, "beta", 1),
            end(2, "alpha", 9),
        ] {
            a.observe(&ev);
        }
        for ev in [
            start(11, None, "alpha"),
            start(12, Some(11), "beta"),
            end(12, "beta", 1),
            end(11, "alpha", 9),
            start(13, None, "zeta"),
            end(13, "zeta", 5),
        ] {
            b.observe(&ev);
        }
        let ka: Vec<(usize, &str)> = a.iter().map(|(&k, _)| k).collect();
        let kb: Vec<(usize, &str)> = b.iter().map(|(&k, _)| k).collect();
        assert_eq!(ka, kb);
        assert_eq!(ka, vec![(0, "alpha"), (0, "zeta"), (1, "beta")]);
    }

    #[test]
    fn unknown_parent_lands_at_depth_zero() {
        let mut agg = SpanTreeAgg::new();
        agg.observe(&start(7, Some(999), "orphan"));
        agg.observe(&end(7, "orphan", 2));
        // An end with no recorded start is tolerated too.
        agg.observe(&end(8, "ghost", 3));
        let keys: Vec<(usize, &str)> = agg.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![(0, "ghost"), (0, "orphan")]);
    }

    #[test]
    fn stats_and_quantiles_accumulate() {
        let mut agg = SpanTreeAgg::new();
        for (id, us) in [(1, 100u64), (2, 200), (3, 300)] {
            agg.observe(&start(id, None, "work"));
            agg.observe(&end(id, "work", us));
        }
        let (_, s) = agg.iter().next().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.total, Duration::from_micros(600));
        assert_eq!(s.max, Duration::from_micros(300));
        assert_eq!(s.mean(), Duration::from_micros(200));
        let snap = s.durations.snapshot();
        assert!((snap.p50 - 200.0).abs() / 200.0 < 0.07, "p50 {}", snap.p50);
    }

    #[test]
    fn json_export_is_sorted_and_complete() {
        let mut agg = SpanTreeAgg::new();
        agg.observe(&start(1, None, "solve"));
        agg.observe(&start(2, Some(1), "gth"));
        agg.observe(&end(2, "gth", 40));
        agg.observe(&end(1, "solve", 90));
        let v = agg.to_json();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("solve"));
        assert_eq!(arr[0].get("depth").unwrap().as_i64(), Some(0));
        assert_eq!(arr[1].get("name").unwrap().as_str(), Some("gth"));
        assert_eq!(arr[1].get("depth").unwrap().as_i64(), Some(1));
        for key in ["count", "total_us", "mean_us", "max_us", "p50_us", "p90_us", "p99_us"] {
            assert!(arr[0].get(key).is_some(), "missing {key}");
        }
        // The export round-trips through the parser.
        let text = v.to_string_compact();
        assert_eq!(crate::json::parse(&text).unwrap(), v);
    }

    #[test]
    fn clear_keeps_live_spans() {
        let mut agg = SpanTreeAgg::new();
        agg.observe(&start(1, None, "outer"));
        agg.observe(&start(2, Some(1), "inner"));
        agg.observe(&end(2, "inner", 1));
        agg.clear();
        assert!(agg.is_empty());
        // `outer` is still live: a child closing after the clear still
        // resolves to depth 1.
        agg.observe(&start(3, Some(1), "late"));
        agg.observe(&end(3, "late", 1));
        let keys: Vec<(usize, &str)> = agg.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![(1, "late")]);
    }
}
