//! Prometheus text exposition (format 0.0.4): encoder and validator.
//!
//! [`encode`] renders a [`RegistrySnapshot`] as a scrape-ready page:
//! dotted metric names become `rascad_`-prefixed underscore names,
//! counters and gauges are emitted per labeled series, and value
//! histograms become native Prometheus histograms — cumulative
//! `_bucket{le="..."}` series over the sparse log-bucket edges, plus
//! `_sum`/`_count` and exact-`_min`/`_max` gauges (the log buckets
//! approximate quantiles, so the exact extremes ride along).
//!
//! [`validate`] is a small hand-rolled checker for the same format —
//! enough to gate CI on "the page parses": comment/TYPE/HELP syntax,
//! metric and label name character sets, label escaping, numeric
//! sample values, TYPE-before-samples ordering, and histogram
//! completeness (`le` labels, an `+Inf` bucket, `_sum`/`_count`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{MetricKind, RegistrySnapshot, SeriesId, CATALOG};

/// Prefix for every exposed metric family.
const PREFIX: &str = "rascad_";

/// Maps a dotted metric name to an exposition family name:
/// `core.cache.hits` → `rascad_core_cache_hits`.
#[must_use]
pub fn family_name(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text (backslash and newline only, per the format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `{k="v",...}` for a series, optionally with an extra label
/// (the histogram `le`) appended.
fn label_block(id: &SeriesId, extra: Option<(&str, &str)>) -> String {
    if id.labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in &id.labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Formats a sample value: integers stay integral, non-finite values
/// use the exposition spellings.
#[allow(clippy::float_cmp)] // exact trunc check decides integer formatting
fn fmt_sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn help_for(name: &str) -> String {
    crate::registry::describe(name)
        .map_or_else(|| format!("rascad metric {name}"), |d| d.help.to_string())
}

fn write_header(out: &mut String, family: &str, name: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {family} {}", escape_help(&help_for(name)));
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// Encodes a registry snapshot as one exposition page.
///
/// Catalogued counters with no recorded series are zero-filled (one
/// unlabeled `0` sample), so a scrape target's metric set is stable
/// from the first request — rates and alerts never see a series pop
/// into existence.
#[must_use]
pub fn encode(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();

    // Group counter series by family so HELP/TYPE appear once.
    let mut counter_families: BTreeMap<&str, Vec<(&SeriesId, u64)>> = BTreeMap::new();
    for (id, v) in &snap.counters {
        counter_families.entry(id.name).or_default().push((id, *v));
    }
    // Zero-fill catalogued counters that never fired.
    let zero = SeriesId::plain("");
    for desc in CATALOG {
        if desc.kind == MetricKind::Counter && !counter_families.contains_key(desc.name) {
            counter_families.insert(desc.name, vec![(&zero, 0)]);
        }
    }
    for (name, series) in &counter_families {
        let family = family_name(name);
        write_header(&mut out, &family, name, "counter");
        for (id, v) in series {
            let labels = if id.name.is_empty() { String::new() } else { label_block(id, None) };
            let _ = writeln!(out, "{family}{labels} {v}");
        }
    }

    let mut gauge_families: BTreeMap<&str, Vec<(&SeriesId, f64)>> = BTreeMap::new();
    for (id, v) in &snap.gauges {
        gauge_families.entry(id.name).or_default().push((id, *v));
    }
    for (name, series) in &gauge_families {
        let family = family_name(name);
        write_header(&mut out, &family, name, "gauge");
        for (id, v) in series {
            let _ = writeln!(out, "{family}{} {}", label_block(id, None), fmt_sample(*v));
        }
    }

    let mut value_families: BTreeMap<&str, Vec<&SeriesId>> = BTreeMap::new();
    let by_id: BTreeMap<&SeriesId, &crate::Histogram> =
        snap.values.iter().map(|(id, h)| (id, h)).collect();
    for (id, _) in &snap.values {
        value_families.entry(id.name).or_default().push(id);
    }
    for (name, ids) in &value_families {
        let family = family_name(name);
        write_header(&mut out, &family, name, "histogram");
        for id in ids {
            let h = by_id[*id];
            let mut cum = 0u64;
            for (upper, n) in h.bucket_counts() {
                cum += n;
                let le = fmt_sample(upper);
                let _ =
                    writeln!(out, "{family}_bucket{} {cum}", label_block(id, Some(("le", &le))));
            }
            let _ =
                writeln!(out, "{family}_bucket{} {}", label_block(id, Some(("le", "+Inf"))), cum);
            let _ = writeln!(out, "{family}_sum{} {}", label_block(id, None), fmt_sample(h.sum()));
            let _ = writeln!(out, "{family}_count{} {}", label_block(id, None), h.count());
        }
        // The log buckets bound quantiles to ~6% relative error; the
        // exact extremes are exported alongside as gauges.
        for (suffix, pick) in [("min", true), ("max", false)] as [(&str, bool); 2] {
            let sub = format!("{family}_{suffix}");
            let _ = writeln!(out, "# TYPE {sub} gauge");
            for id in ids {
                let s = by_id[*id].snapshot();
                let v = if pick { s.min } else { s.max };
                let _ = writeln!(out, "{sub}{} {}", label_block(id, None), fmt_sample(v));
            }
        }
    }
    out
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_name(s: &str) -> Option<(&str, &str)> {
    let mut end = 0;
    for (i, c) in s.char_indices() {
        if i == 0 {
            if !is_name_start(c) {
                return None;
            }
        } else if !is_name_char(c) {
            break;
        }
        end = i + c.len_utf8();
    }
    if end == 0 {
        None
    } else {
        Some((&s[..end], &s[end..]))
    }
}

/// Label pairs plus the unparsed remainder of the sample line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses the `{k="v",...}` block; returns the label pairs and the
/// rest of the line.
fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut rest = s.strip_prefix('{').ok_or("expected '{'")?;
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let (key, r) = parse_name(rest).ok_or_else(|| format!("bad label name at `{rest}`"))?;
        let r = r.trim_start();
        let r = r.strip_prefix('=').ok_or_else(|| format!("missing '=' after label {key}"))?;
        let r = r.trim_start();
        let mut chars = r.strip_prefix('"').ok_or("label value must be quoted")?.chars();
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape \\{other:?} in label {key}")),
                },
                '\n' => return Err(format!("raw newline in label {key}")),
                other => value.push(other),
            }
        }
        if !closed {
            return Err(format!("unterminated label value for {key}"));
        }
        labels.push((key.to_string(), value));
        rest = chars.as_str().trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse::<f64>().map_err(|_| format!("bad sample value `{other}`")),
    }
}

/// Base family of a sample name: strips histogram/summary suffixes
/// when that family was TYPE-declared.
fn sample_family(name: &str, types: &BTreeMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count", "_total"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.contains_key(base) {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

/// Checks one exposition page; returns a description of the first
/// problem found.
///
/// # Errors
///
/// A `line N: <problem>` message on malformed syntax, a sample before
/// its TYPE line, a duplicate TYPE, or an incomplete histogram family.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // family -> (saw +Inf bucket, saw _sum, saw _count)
    let mut histograms: BTreeMap<String, (bool, bool, bool)> = BTreeMap::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let err = |msg: String| format!("line {n}: {msg}");
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, rest) =
                    parse_name(rest).ok_or_else(|| err("bad TYPE metric name".into()))?;
                let kind = rest.trim();
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(err(format!("unknown TYPE `{kind}`")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE for {name}")));
                }
                if kind == "histogram" {
                    histograms.insert(name.to_string(), (false, false, false));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                parse_name(rest).ok_or_else(|| err("bad HELP metric name".into()))?;
            }
            // Other comments are allowed and ignored.
            continue;
        }
        let (name, rest) = parse_name(line).ok_or_else(|| err("bad metric name".into()))?;
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest).map_err(&err)?
        } else {
            (Vec::new(), rest)
        };
        let mut parts = rest.split_whitespace();
        let value = parse_value(parts.next().ok_or_else(|| err("missing sample value".into()))?)
            .map_err(&err)?;
        if let Some(ts) = parts.next() {
            ts.parse::<i64>().map_err(|_| err(format!("bad timestamp `{ts}`")))?;
        }
        if parts.next().is_some() {
            return Err(err("trailing tokens after sample".into()));
        }
        let family = sample_family(name, &types);
        if !types.contains_key(&family) {
            return Err(err(format!("sample `{name}` has no preceding TYPE line")));
        }
        if let Some(flags) = histograms.get_mut(&family) {
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| err(format!("bucket sample `{name}` without le label")))?;
                if le.1 == "+Inf" {
                    flags.0 = true;
                } else {
                    parse_value(&le.1).map_err(&err)?;
                }
                let _ = value;
            } else if name.ends_with("_sum") {
                flags.1 = true;
            } else if name.ends_with("_count") {
                flags.2 = true;
            } else {
                return Err(err(format!("histogram family {family} has plain sample `{name}`")));
            }
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    for (family, (inf, sum, count)) in &histograms {
        if !inf {
            return Err(format!("histogram {family} lacks an le=\"+Inf\" bucket"));
        }
        if !sum || !count {
            return Err(format!("histogram {family} lacks _sum/_count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn sample_snapshot() -> RegistrySnapshot {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 4.0, 100.0] {
            h.record(v);
        }
        RegistrySnapshot {
            counters: vec![
                (SeriesId::with_labels("core.cache.hits", &[("kind", "steady")]), 5),
                (SeriesId::with_labels("core.cache.hits", &[("kind", "mission")]), 2),
                (SeriesId::plain("core.blocks_generated"), 11),
            ],
            gauges: vec![(SeriesId::with_labels("core.cache.entries", &[("kind", "steady")]), 3.0)],
            values: vec![(SeriesId::plain("markov.lu.fill"), h)],
        }
    }

    #[test]
    fn encode_emits_families_and_validates() {
        let text = encode(&sample_snapshot());
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("# TYPE rascad_core_cache_hits counter"), "{text}");
        assert!(text.contains("rascad_core_cache_hits{kind=\"steady\"} 5"), "{text}");
        assert!(text.contains("rascad_core_cache_hits{kind=\"mission\"} 2"), "{text}");
        assert!(text.contains("rascad_core_blocks_generated 11"), "{text}");
        assert!(text.contains("# TYPE rascad_core_cache_entries gauge"), "{text}");
        // Native histogram with cumulative buckets, sum, count, and
        // the exact-extreme gauges.
        assert!(text.contains("# TYPE rascad_markov_lu_fill histogram"), "{text}");
        assert!(text.contains("rascad_markov_lu_fill_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("rascad_markov_lu_fill_sum 107"), "{text}");
        assert!(text.contains("rascad_markov_lu_fill_count 4"), "{text}");
        assert!(text.contains("rascad_markov_lu_fill_min 1"), "{text}");
        assert!(text.contains("rascad_markov_lu_fill_max 100"), "{text}");
    }

    #[test]
    fn encode_zero_fills_catalogued_counters() {
        let text = encode(&RegistrySnapshot::default());
        validate(&text).unwrap();
        // Robustness counters appear as 0 even when nothing fired.
        assert!(text.contains("rascad_engine_worker_panics 0"), "{text}");
        assert!(text.contains("rascad_solve_fallbacks 0"), "{text}");
        assert!(text.contains("rascad_solve_timeouts 0"), "{text}");
        // Histograms/gauges are not zero-filled (no meaningful zero).
        assert!(!text.contains("rascad_markov_lu_fill_bucket"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_cover_count() {
        let text = encode(&sample_snapshot());
        let mut last = 0u64;
        let mut inf = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("rascad_markov_lu_fill_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "buckets must be cumulative: {text}");
                last = v;
                if rest.contains("+Inf") {
                    inf = v;
                }
            }
        }
        assert_eq!(inf, 4);
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = RegistrySnapshot {
            counters: vec![(SeriesId::with_labels("x", &[("path", "a\\b \"q\"\nend")]), 1)],
            gauges: vec![],
            values: vec![],
        };
        let text = encode(&snap);
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("path=\"a\\\\b \\\"q\\\"\\nend\""), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        for (page, why) in [
            ("rascad_x 1\n", "sample without TYPE"),
            ("# TYPE rascad_x counter\nrascad_x one\n", "non-numeric value"),
            ("# TYPE rascad_x counter\n# TYPE rascad_x counter\nrascad_x 1\n", "duplicate TYPE"),
            ("# TYPE rascad_x counter\nrascad_x{k=unquoted} 1\n", "unquoted label"),
            ("# TYPE rascad_x counter\n9bad 1\n", "bad name"),
            ("# TYPE rascad_x widget\nrascad_x 1\n", "unknown type"),
            ("", "empty page"),
            (
                "# TYPE rascad_h histogram\nrascad_h_bucket{le=\"1\"} 1\nrascad_h_sum 1\nrascad_h_count 1\n",
                "histogram without +Inf",
            ),
            (
                "# TYPE rascad_h histogram\nrascad_h_bucket{le=\"+Inf\"} 1\n",
                "histogram without sum/count",
            ),
        ] {
            assert!(validate(page).is_err(), "validator accepted: {why}");
        }
    }

    #[test]
    fn validator_accepts_timestamps_and_comments() {
        let page = "\
# scraped by test
# HELP rascad_x a counter
# TYPE rascad_x counter
rascad_x{a=\"b\"} 4 1700000000
";
        validate(page).unwrap();
    }

    #[test]
    fn family_name_sanitizes() {
        assert_eq!(family_name("core.cache.hits"), "rascad_core_cache_hits");
        assert_eq!(family_name("weird-name 2"), "rascad_weird_name_2");
    }
}
