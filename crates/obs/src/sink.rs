//! Event model and the two built-in sinks.
//!
//! A [`Sink`] receives the live event stream from the subscriber:
//! span starts and ends as they happen, plus one [`Event::Metrics`]
//! per [`crate::drain`] carrying the aggregated counters and value
//! histograms. Sinks run under the subscriber's sink lock, so they can
//! keep plain mutable state.

use std::io::Write;
use std::time::Duration;

use crate::agg::Snapshot;
use crate::json::Value;
use crate::tree::SpanTreeAgg;

/// A typed field attached to a span via [`crate::Span::record`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, magnitudes, probabilities).
    F64(f64),
    /// Text (names, modes).
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    pub(crate) fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::from(*v),
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Num(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
            FieldValue::Bool(v) => Value::Bool(*v),
        }
    }
}

/// One observation delivered to a [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span was opened.
    SpanStart {
        /// Process-unique span id (monotonically assigned).
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name.
        name: &'static str,
        /// Time since the subscriber was created.
        at: Duration,
        /// Ordinal of the emitting thread (0 = first instrumented
        /// thread, normally `main`) — the trace-export lane.
        tid: u64,
    },
    /// A span was closed.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
        /// Span name.
        name: &'static str,
        /// Time since the subscriber was created.
        at: Duration,
        /// Wall-clock time the span was open.
        elapsed: Duration,
        /// Fields recorded on the span, in recording order.
        fields: Vec<(&'static str, FieldValue)>,
        /// Ordinal of the emitting thread.
        tid: u64,
    },
    /// Aggregated registry contents, emitted by [`crate::drain`].
    /// Series names are rendered with their labels
    /// (`cache.hits{kind="steady"}`), sorted.
    Metrics {
        /// Monotonic counters, summed across threads.
        counters: Vec<(String, u64)>,
        /// Gauges (last set value).
        gauges: Vec<(String, f64)>,
        /// Value-series summaries, merged across threads.
        values: Vec<(String, Snapshot)>,
    },
}

fn micros(d: Duration) -> Value {
    Value::Num(d.as_secs_f64() * 1e6)
}

impl Event {
    /// Renders the event as a JSON object — the line format written by
    /// [`JsonLinesSink`]. Durations are in microseconds (`*_us`).
    pub fn to_json(&self) -> Value {
        match self {
            Event::SpanStart { id, parent, name, at, tid } => Value::Obj(vec![
                ("ev".into(), Value::from("span_start")),
                ("id".into(), Value::from(*id)),
                ("parent".into(), parent.map_or(Value::Null, Value::from)),
                ("name".into(), Value::from(*name)),
                ("at_us".into(), micros(*at)),
                ("tid".into(), Value::from(*tid)),
            ]),
            Event::SpanEnd { id, name, at, elapsed, fields, tid } => Value::Obj(vec![
                ("ev".into(), Value::from("span_end")),
                ("id".into(), Value::from(*id)),
                ("name".into(), Value::from(*name)),
                ("at_us".into(), micros(*at)),
                ("elapsed_us".into(), micros(*elapsed)),
                ("tid".into(), Value::from(*tid)),
                (
                    "fields".into(),
                    Value::Obj(
                        fields.iter().map(|(k, v)| ((*k).to_string(), v.to_json())).collect(),
                    ),
                ),
            ]),
            Event::Metrics { counters, gauges, values } => Value::Obj(vec![
                ("ev".into(), Value::from("metrics")),
                (
                    "counters".into(),
                    Value::Obj(
                        counters.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect(),
                    ),
                ),
                (
                    "gauges".into(),
                    Value::Obj(gauges.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect()),
                ),
                (
                    "values".into(),
                    Value::Obj(values.iter().map(|(k, s)| (k.clone(), s.to_json())).collect()),
                ),
            ]),
        }
    }
}

/// Receives the subscriber's event stream.
///
/// Implementations must be `Send` (the subscriber is global and may be
/// drained from any thread). Delivery order is the order events were
/// emitted under the sink lock.
pub trait Sink: Send {
    /// Called for every event while tracing is enabled.
    fn event(&mut self, event: &Event);

    /// Called at [`crate::drain`] / [`crate::uninstall`]; write out
    /// any buffered state.
    fn flush(&mut self) {}
}

/// Streams every event as one compact JSON object per line.
///
/// Non-finite numbers (e.g. an empty histogram's `min`) are written as
/// `null`, so every line is strict JSON. Write errors are swallowed:
/// tracing must never take down the computation it observes.
pub struct JsonLinesSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer (file, stdout lock, `Vec<u8>`, …).
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn event(&mut self, event: &Event) {
        let mut line = event.to_json().to_string_compact();
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// The payload of an [`Event::Metrics`]: aggregated counters, gauges
/// and value snapshots, with series names rendered (labels included).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSummary {
    /// Monotonic counters, summed across threads.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last set value).
    pub gauges: Vec<(String, f64)>,
    /// Value-series summaries, merged across threads.
    pub values: Vec<(String, Snapshot)>,
}

/// Aggregates span timings by `(depth, name)` and prints a plain-text
/// summary table (spans, counters, value statistics) on [`Sink::flush`].
///
/// Rows are sorted by nesting depth then name — not emission order —
/// so repeated runs of the same workload produce byte-identical tables
/// that diff cleanly in test snapshots.
pub struct SummarySink<W: Write + Send> {
    out: W,
    spans: SpanTreeAgg,
    metrics: Option<MetricsSummary>,
}

impl<W: Write + Send> SummarySink<W> {
    /// Wraps a writer; the table is written when the subscriber
    /// flushes (typically `stderr` for the CLI's `--timings`).
    pub fn new(out: W) -> Self {
        SummarySink { out, spans: SpanTreeAgg::new(), metrics: None }
    }
}

/// Formats a duration with an adaptive unit, 4 significant-ish digits.
fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{}ns", d.as_nanos())
    }
}

/// Formats a metric value compactly (integers without a fraction).
#[allow(clippy::float_cmp)] // exact trunc check decides integer formatting
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

impl<W: Write + Send> Sink for SummarySink<W> {
    fn event(&mut self, event: &Event) {
        match event {
            Event::SpanStart { .. } | Event::SpanEnd { .. } => self.spans.observe(event),
            Event::Metrics { counters, gauges, values } => {
                self.metrics = Some(MetricsSummary {
                    counters: counters.clone(),
                    gauges: gauges.clone(),
                    values: values.clone(),
                });
            }
        }
    }

    fn flush(&mut self) {
        // `drain` and `uninstall` both flush; only print a table when
        // something accumulated since the last one.
        if self.spans.is_empty() && self.metrics.is_none() {
            return;
        }
        let out = &mut self.out;
        let _ = writeln!(out, "── rascad timings ──────────────────────────────");
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>10} {:>10} {:>10}",
                "span", "count", "total", "mean", "max"
            );
            for (&(depth, name), s) in self.spans.iter() {
                // Indent by nesting depth: the rows read as a tree while
                // staying sorted by (depth, name).
                let label = format!("{}{name}", "  ".repeat(depth));
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>10} {:>10} {:>10}",
                    label,
                    s.count,
                    fmt_duration(s.total),
                    fmt_duration(s.mean()),
                    fmt_duration(s.max)
                );
            }
        }
        if let Some(m) = &self.metrics {
            if !m.counters.is_empty() {
                let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
                for (name, v) in &m.counters {
                    let _ = writeln!(out, "{name:<40} {v:>12}");
                }
            }
            if !m.gauges.is_empty() {
                let _ = writeln!(out, "{:<40} {:>12}", "gauge", "value");
                for (name, v) in &m.gauges {
                    let _ = writeln!(out, "{name:<40} {:>12}", fmt_value(*v));
                }
            }
            if !m.values.is_empty() {
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    "value", "count", "min", "mean", "p50", "p90", "p99", "max"
                );
                for (name, s) in &m.values {
                    let _ = writeln!(
                        out,
                        "{:<28} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                        name,
                        s.count,
                        fmt_value(s.min),
                        fmt_value(s.mean()),
                        fmt_value(s.p50),
                        fmt_value(s.p90),
                        fmt_value(s.p99),
                        fmt_value(s.max)
                    );
                }
            }
        }
        let _ = writeln!(out, "────────────────────────────────────────────────");
        let _ = out.flush();
        self.spans.clear();
        self.metrics = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_end_event() -> Event {
        Event::SpanEnd {
            id: 7,
            name: "solve",
            at: Duration::from_micros(1500),
            elapsed: Duration::from_micros(250),
            fields: vec![
                ("states", FieldValue::U64(12)),
                ("note", FieldValue::Str("line1\nline2 \"quoted\"".into())),
                ("pivot", FieldValue::F64(f64::NAN)),
            ],
            tid: 3,
        }
    }

    #[test]
    fn json_lines_are_parseable_and_escaped() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.event(&Event::SpanStart {
            id: 7,
            parent: None,
            name: "solve",
            at: Duration::from_micros(1250),
            tid: 3,
        });
        sink.event(&sample_end_event());
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Raw newline/quote must be escaped, keeping one event per line.
        assert!(lines[1].contains("\\n"));
        assert!(lines[1].contains("\\\"quoted\\\""));
        let start = json::parse(lines[0]).unwrap();
        assert_eq!(start.get("ev").unwrap().as_str(), Some("span_start"));
        assert!(start.get("parent").unwrap().is_null());
        let end = json::parse(lines[1]).unwrap();
        assert_eq!(end.get("id").unwrap().as_i64(), Some(7));
        assert_eq!(end.get("elapsed_us").unwrap().as_f64(), Some(250.0));
        assert_eq!(end.get("tid").unwrap().as_i64(), Some(3));
        let fields = end.get("fields").unwrap();
        assert_eq!(fields.get("states").unwrap().as_i64(), Some(12));
        // Non-finite floats serialize as null, keeping strict JSON.
        assert!(fields.get("pivot").unwrap().is_null());
    }

    #[test]
    fn metrics_event_serializes_snapshots() {
        let mut h = crate::agg::Histogram::default();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let ev = Event::Metrics {
            counters: vec![("blocks".into(), 3), ("cache.hits{kind=\"steady\"}".into(), 2)],
            gauges: vec![("pool.size".into(), 4.0)],
            values: vec![("lu_fill".into(), h.snapshot())],
        };
        let v = json::parse(&ev.to_json().to_string_compact()).unwrap();
        assert_eq!(v.get("counters").unwrap().get("blocks").unwrap().as_i64(), Some(3));
        assert_eq!(
            v.get("counters").unwrap().get("cache.hits{kind=\"steady\"}").unwrap().as_i64(),
            Some(2)
        );
        assert_eq!(v.get("gauges").unwrap().get("pool.size").unwrap().as_f64(), Some(4.0));
        let snap = v.get("values").unwrap().get("lu_fill").unwrap();
        assert_eq!(snap.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(snap.get("sum").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn summary_table_lists_spans_counters_values() {
        let mut sink = SummarySink::new(Vec::new());
        for _ in 0..3 {
            sink.event(&sample_end_event());
        }
        let mut h = crate::agg::Histogram::default();
        h.record(0.5);
        sink.event(&Event::Metrics {
            counters: vec![("events_simulated".into(), 1234)],
            gauges: vec![("cache.entries".into(), 9.0)],
            values: vec![("pivot_mag".into(), h.snapshot())],
        });
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.contains("solve"), "{text}");
        assert!(text.contains('3'), "{text}");
        assert!(text.contains("events_simulated"), "{text}");
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("cache.entries"), "{text}");
        assert!(text.contains("pivot_mag"), "{text}");
        assert!(text.contains("0.5"), "{text}");
    }

    #[test]
    fn summary_table_rows_sorted_by_depth_then_name() {
        // Emit spans in an order that disagrees with (depth, name) and
        // confirm the printed rows don't follow emission order.
        let mk_start =
            |id, parent, name| Event::SpanStart { id, parent, name, at: Duration::ZERO, tid: 0 };
        let mk_end = |id, name| Event::SpanEnd {
            id,
            name,
            at: Duration::ZERO,
            elapsed: Duration::from_micros(10),
            fields: Vec::new(),
            tid: 0,
        };
        let run = |events: Vec<Event>| {
            let mut sink = SummarySink::new(Vec::new());
            for e in &events {
                sink.event(e);
            }
            sink.flush();
            String::from_utf8(sink.out).unwrap()
        };
        let a = run(vec![
            mk_start(1, None, "zeta"),
            mk_end(1, "zeta"),
            mk_start(2, None, "alpha"),
            mk_start(3, Some(2), "inner"),
            mk_end(3, "inner"),
            mk_end(2, "alpha"),
        ]);
        let b = run(vec![
            mk_start(4, None, "alpha"),
            mk_start(5, Some(4), "inner"),
            mk_end(5, "inner"),
            mk_end(4, "alpha"),
            mk_start(6, None, "zeta"),
            mk_end(6, "zeta"),
        ]);
        assert_eq!(a, b, "table must not depend on emission order");
        let alpha = a.find("alpha").unwrap();
        let zeta = a.find("zeta").unwrap();
        let inner = a.find("inner").unwrap();
        assert!(alpha < zeta && zeta < inner, "{a}");
        // The depth-1 row is indented under its parents.
        assert!(a.contains("\n  inner"), "{a}");
    }

    #[test]
    fn summary_table_value_quantile_columns() {
        let mut sink = SummarySink::new(Vec::new());
        let mut h = crate::agg::Histogram::default();
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        sink.event(&Event::Metrics {
            counters: vec![],
            gauges: vec![],
            values: vec![("residual".into(), h.snapshot())],
        });
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        for col in ["count", "min", "p50", "p90", "p99", "max"] {
            assert!(text.contains(col), "missing column {col}: {text}");
        }
        // Exact count and exact min/max, not just quantile estimates.
        let row = text.lines().find(|l| l.starts_with("residual")).unwrap();
        assert!(row.contains("100"), "{row}");
        assert!(row.split_whitespace().any(|w| w == "1"), "min column missing: {row}");
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000us");
        assert_eq!(fmt_duration(Duration::from_nanos(42)), "42ns");
    }
}
