//! The convergence trace channel: bounded per-solve recordings of the
//! solver's inner numerics — per-iteration residuals, per-pivot
//! magnitudes, per-term truncation mass — armed explicitly and cheap
//! when disarmed.
//!
//! Mirrors the flight recorder's flags-word discipline
//! ([`crate::flight`]): [`begin`] performs one relaxed atomic load and
//! returns an inert handle when the channel is disarmed, so solver hot
//! loops pay a single branch on a local `Option` per step and allocate
//! nothing (the `overhead` integration test pins this down). When
//! [`arm`]ed, each solve accumulates up to [`STEP_CAPACITY`] of its
//! most recent steps in a private ring (older steps rotate out but stay
//! counted), and the finished trace is committed to a bounded global
//! ring of the last [`SOLVE_CAPACITY`] solves.
//!
//! Committed traces are read back via [`solves`] (typed), [`dump`]
//! (a versioned JSON document, schema [`SCHEMA`]), and checked by
//! [`validate`] — the CLI's `solve --convergence-out` round-trips
//! through the same validator.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Value;
use crate::lock;

/// Version tag of the [`dump`] document; bump on breaking layout
/// changes so stale files are rejected instead of misread.
pub const SCHEMA: &str = "rascad-convergence/v1";

/// Steps kept per solve. A power solve on a stiff chain can run
/// millions of iterations; the trace keeps the most recent window (the
/// part that shows whether the residual was still shrinking) and
/// counts the rest as dropped.
pub const STEP_CAPACITY: usize = 512;

/// Completed solve traces kept in the global ring. A full bench run
/// solves far more chains than anyone reads traces for; the ring keeps
/// the most recent solves.
pub const SOLVE_CAPACITY: usize = 64;

/// One recorded step of a solve: an iteration, a pivot, or a
/// truncation term, with the observed magnitude and its wall-clock
/// offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// Step ordinal within the solve (iteration count, pivot index,
    /// truncation depth) — 1-based, matching solver reporting.
    pub index: u64,
    /// The observed magnitude: residual, delta-norm, pivot value, or
    /// remaining truncation mass, depending on the trace's metric.
    pub value: f64,
    /// Microseconds since the solve began.
    pub at_us: u64,
}

/// A completed solve's trace: identity, the retained step window, and
/// the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveTrace {
    /// Solver path: `power`, `gth`, `lu`, `transient`.
    pub method: &'static str,
    /// What [`TraceStep::value`] measures for this solve: `residual`,
    /// `pivot`, `truncation`, …
    pub metric: &'static str,
    /// Chain size.
    pub states: usize,
    /// The most recent [`STEP_CAPACITY`] steps in order.
    pub steps: Vec<TraceStep>,
    /// Total steps observed, including any rotated out of `steps`.
    pub total_steps: u64,
    /// How the solve ended: `converged`, `not-converged`, `done`,
    /// `singular`, `timeout`, or `abandoned` (handle dropped without
    /// [`ConvergenceTrace::finish`]).
    pub outcome: &'static str,
    /// Wall-clock duration of the traced solve, microseconds.
    pub elapsed_us: u64,
}

impl SolveTrace {
    /// Steps observed but rotated out of the bounded window.
    #[must_use]
    pub fn dropped_steps(&self) -> u64 {
        self.total_steps - self.steps.len() as u64
    }

    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("method".into(), Value::from(self.method)),
            ("metric".into(), Value::from(self.metric)),
            ("states".into(), Value::from(self.states)),
            ("outcome".into(), Value::from(self.outcome)),
            ("total_steps".into(), Value::from(self.total_steps)),
            ("dropped_steps".into(), Value::from(self.dropped_steps())),
            ("elapsed_us".into(), Value::from(self.elapsed_us)),
            (
                "steps".into(),
                Value::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("index".into(), Value::from(s.index)),
                                ("value".into(), Value::Num(s.value)),
                                ("at_us".into(), Value::from(s.at_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

struct TraceState {
    solves: Mutex<VecDeque<SolveTrace>>,
}

static STATE: OnceLock<TraceState> = OnceLock::new();

fn state() -> &'static TraceState {
    STATE.get_or_init(|| TraceState { solves: Mutex::new(VecDeque::new()) })
}

/// Arms the channel: subsequent [`begin`] calls return live handles.
/// Idempotent.
pub fn arm() {
    state();
    crate::set_flag(crate::F_CONV_TRACE);
}

/// Disarms the channel and clears the committed ring. Solves already
/// in flight keep their live handles and still commit; traces begun
/// after this point are inert.
pub fn disarm() {
    crate::clear_flag(crate::F_CONV_TRACE);
    if let Some(s) = STATE.get() {
        lock(&s.solves).clear();
    }
}

/// Whether the channel is currently armed.
#[inline]
#[must_use]
pub fn armed() -> bool {
    crate::flags() & crate::F_CONV_TRACE != 0
}

struct ActiveTrace {
    method: &'static str,
    metric: &'static str,
    states: usize,
    steps: VecDeque<TraceStep>,
    total_steps: u64,
    outcome: &'static str,
    start: Instant,
}

/// Handle for one solve's trace; obtained from [`begin`]. Inert (every
/// method a no-op) when the channel is disarmed, so solvers create one
/// unconditionally and the hot loop branches on a local `Option`.
pub struct ConvergenceTrace {
    inner: Option<Box<ActiveTrace>>,
}

/// Opens a trace for one solve. One relaxed atomic load; allocates
/// nothing when the channel is disarmed.
#[inline]
#[must_use]
pub fn begin(method: &'static str, metric: &'static str, states: usize) -> ConvergenceTrace {
    if crate::flags() & crate::F_CONV_TRACE == 0 {
        return ConvergenceTrace { inner: None };
    }
    begin_slow(method, metric, states)
}

#[cold]
fn begin_slow(method: &'static str, metric: &'static str, states: usize) -> ConvergenceTrace {
    ConvergenceTrace {
        inner: Some(Box::new(ActiveTrace {
            method,
            metric,
            states,
            steps: VecDeque::with_capacity(STEP_CAPACITY.min(64)),
            total_steps: 0,
            outcome: "abandoned",
            start: Instant::now(),
        })),
    }
}

impl ConvergenceTrace {
    /// Whether this handle records anything. Hot loops that compute a
    /// value *only* for the trace should gate on this.
    #[inline]
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one step. `index` is the solver's own 1-based ordinal
    /// (iteration, pivot, truncation term). No-op on an inert handle.
    #[inline]
    pub fn step(&mut self, index: usize, value: f64) {
        if let Some(t) = &mut self.inner {
            t.total_steps += 1;
            if t.steps.len() == STEP_CAPACITY {
                t.steps.pop_front();
            }
            let at_us = t.start.elapsed().as_micros() as u64;
            t.steps.push_back(TraceStep { index: index as u64, value, at_us });
        }
    }

    /// Ends the solve with the given outcome and commits the trace to
    /// the global ring. Dropping the handle without calling this
    /// commits with outcome `abandoned`.
    pub fn finish(mut self, outcome: &'static str) {
        if let Some(t) = &mut self.inner {
            t.outcome = outcome;
        }
        // Drop commits.
    }
}

impl Drop for ConvergenceTrace {
    fn drop(&mut self) {
        let Some(t) = self.inner.take() else { return };
        let trace = SolveTrace {
            method: t.method,
            metric: t.metric,
            states: t.states,
            steps: t.steps.into_iter().collect(),
            total_steps: t.total_steps,
            outcome: t.outcome,
            elapsed_us: t.start.elapsed().as_micros() as u64,
        };
        let solves = &state().solves;
        let mut ring = lock(solves);
        if ring.len() == SOLVE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

/// The committed traces, oldest first.
pub fn solves() -> Vec<SolveTrace> {
    STATE.get().map_or_else(Vec::new, |s| lock(&s.solves).iter().cloned().collect())
}

/// Builds the versioned JSON document of every committed trace.
pub fn dump() -> Value {
    let solves = solves();
    Value::Obj(vec![
        ("schema".into(), Value::from(SCHEMA)),
        ("solves".into(), Value::from(solves.len())),
        ("traces".into(), Value::Arr(solves.iter().map(SolveTrace::to_json).collect())),
    ])
}

/// Structural validation of a [`dump`] document (also applied by the
/// CLI to `--convergence-out` files). Returns the trace count.
///
/// # Errors
///
/// Returns a description of the first structural problem: wrong
/// schema, missing keys, or malformed step records. A `null` step
/// value is accepted — JSON has no representation for the non-finite
/// residual of a diverged solve.
#[allow(clippy::float_cmp, clippy::cast_precision_loss)] // step counts are small integers carried in f64
pub fn validate(doc: &Value) -> Result<usize, String> {
    let schema = doc.get("schema").and_then(Value::as_str).ok_or("missing `schema` key")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` is not `{SCHEMA}`"));
    }
    let declared = doc.get("solves").and_then(Value::as_f64).ok_or("missing numeric `solves`")?;
    let traces = doc.get("traces").and_then(Value::as_array).ok_or("missing `traces` array")?;
    if declared as usize != traces.len() {
        return Err(format!("`solves` says {declared} but `traces` holds {}", traces.len()));
    }
    for (i, t) in traces.iter().enumerate() {
        let method = t
            .get("method")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace {i}: no method"))?;
        for key in ["metric", "outcome"] {
            t.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("trace {i} ({method}): missing `{key}`"))?;
        }
        for key in ["states", "total_steps", "dropped_steps", "elapsed_us"] {
            let v = t
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("trace {i} ({method}): missing numeric `{key}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("trace {i} ({method}): bad `{key}`: {v}"));
            }
        }
        let steps = t
            .get("steps")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("trace {i} ({method}): missing `steps` array"))?;
        let total = t.get("total_steps").and_then(Value::as_f64).unwrap_or(0.0);
        let dropped = t.get("dropped_steps").and_then(Value::as_f64).unwrap_or(0.0);
        if steps.len() as f64 + dropped != total {
            return Err(format!(
                "trace {i} ({method}): {} retained + {dropped} dropped != {total} total",
                steps.len()
            ));
        }
        for (j, s) in steps.iter().enumerate() {
            let idx = s
                .get("index")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("trace {i} step {j}: missing `index`"))?;
            if idx < 1.0 {
                return Err(format!("trace {i} step {j}: index {idx} is not 1-based"));
            }
            let value = s.get("value").ok_or_else(|| format!("trace {i} step {j}: no `value`"))?;
            if !(value.is_null() || value.as_f64().is_some()) {
                return Err(format!("trace {i} step {j}: `value` is neither number nor null"));
            }
            s.get("at_us")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("trace {i} step {j}: missing `at_us`"))?;
        }
    }
    Ok(traces.len())
}

#[cfg(test)]
#[allow(clippy::cast_precision_loss)] // loop counters stay far below 2^52
mod tests {
    use super::*;

    /// The channel is process-global; tests must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_handles_are_inert() {
        let _g = serial();
        disarm();
        assert!(!armed());
        let mut t = begin("power", "residual", 4);
        assert!(!t.is_armed());
        t.step(1, 0.5);
        t.finish("converged");
        assert!(solves().is_empty());
    }

    #[test]
    fn armed_traces_commit_and_roundtrip_through_validate() {
        let _g = serial();
        arm();
        let mut t = begin("power", "residual", 3);
        assert!(t.is_armed());
        for i in 1..=5 {
            t.step(i, 1.0 / i as f64);
        }
        t.finish("converged");
        let mut u = begin("gth", "pivot", 7);
        u.step(1, 2.5);
        drop(u); // no finish: committed as `abandoned`

        let got = solves();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].method, got[0].outcome, got[0].total_steps), ("power", "converged", 5));
        assert_eq!(got[0].steps.len(), 5);
        assert_eq!(
            got[0].steps[4],
            TraceStep { index: 5, value: 0.2, at_us: got[0].steps[4].at_us }
        );
        assert_eq!((got[1].method, got[1].outcome), ("gth", "abandoned"));

        let doc = dump();
        assert_eq!(validate(&doc), Ok(2));
        // Byte-level roundtrip through the JSON writer/parser.
        let back = crate::json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(validate(&back), Ok(2));
        disarm();
        assert!(solves().is_empty());
    }

    #[test]
    fn step_ring_rotates_and_counts_drops() {
        let _g = serial();
        arm();
        let mut t = begin("power", "residual", 2);
        for i in 1..=(STEP_CAPACITY + 25) {
            t.step(i, i as f64);
        }
        t.finish("not-converged");
        let got = solves();
        let last = got.last().unwrap();
        assert_eq!(last.steps.len(), STEP_CAPACITY);
        assert_eq!(last.total_steps, (STEP_CAPACITY + 25) as u64);
        assert_eq!(last.dropped_steps(), 25);
        // The retained window is the most recent one.
        assert_eq!(last.steps[0].index, 26);
        assert_eq!(last.steps.last().unwrap().index, (STEP_CAPACITY + 25) as u64);
        let doc = dump();
        assert!(validate(&doc).is_ok());
        disarm();
    }

    #[test]
    fn solve_ring_is_bounded() {
        let _g = serial();
        arm();
        for i in 0..(SOLVE_CAPACITY + 3) {
            let mut t = begin("lu", "residual", i);
            t.step(1, 0.0);
            t.finish("done");
        }
        let got = solves();
        assert_eq!(got.len(), SOLVE_CAPACITY);
        // The oldest three rotated out.
        assert_eq!(got[0].states, 3);
        disarm();
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let cases = [
            ("{}", "missing `schema`"),
            ("{\"schema\":\"other/v9\"}", "is not"),
            ("{\"schema\":\"rascad-convergence/v1\",\"solves\":1,\"traces\":[]}", "holds 0"),
        ];
        for (text, want) in cases {
            let doc = crate::json::parse(text).unwrap();
            let err = validate(&doc).unwrap_err();
            assert!(err.contains(want), "{text}: {err}");
        }
        // A non-finite step value serializes as null and must pass.
        let _g = serial();
        arm();
        let mut t = begin("power", "residual", 2);
        t.step(1, f64::NAN);
        t.finish("not-converged");
        let doc = dump();
        assert!(doc.to_string_compact().contains("\"value\":null"));
        assert!(validate(&doc).is_ok());
        disarm();
    }
}
