//! Log-bucketed value histograms and their summary snapshots.
//!
//! Recorded values accumulate per thread in the registry shards
//! ([`crate::registry`]), each series backed by one sparse
//! [`Histogram`]; the merged view is summarized into a [`Snapshot`]
//! for drain events and tables, or exported bucket-by-bucket by the
//! Prometheus encoder.

use std::collections::BTreeMap;

/// A sparse base-2 log-bucket histogram over finite `f64` values.
///
/// The bucket key keeps the sign, the 11 exponent bits and the top 4
/// mantissa bits of the value, giving 16 buckets per power of two and
/// a worst-case relative quantile error of about 1/16 (~6%). Memory is
/// proportional to the number of *occupied* buckets, so recording
/// millions of values stays cheap.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Sortable bucket key for a finite value; negative values map below
/// zero so the `BTreeMap` iterates in numeric order.
fn bucket_key(v: f64) -> i32 {
    let bits = v.to_bits();
    let mag = ((bits & 0x7fff_ffff_ffff_ffff) >> 48) as i32;
    if bits >> 63 == 0 {
        mag
    } else {
        -mag - 1
    }
}

/// Upper edge of a bucket — the `le` bound a cumulative exposition
/// (Prometheus `_bucket`) reports for it. Monotone in the key.
fn bucket_upper(key: i32) -> f64 {
    if key >= 0 {
        f64::from_bits(((key as u64) << 48) | 0x0000_ffff_ffff_ffff)
    } else {
        -f64::from_bits(((-(key + 1)) as u64) << 48)
    }
}

/// Midpoint of a bucket, the value reported for quantiles landing in
/// it (clamped to the observed min/max at snapshot time).
fn bucket_mid(key: i32) -> f64 {
    let (neg, mag) = if key >= 0 { (false, key as u64) } else { (true, (-(key + 1)) as u64) };
    let lo = f64::from_bits(mag << 48);
    let hi = f64::from_bits((mag << 48) | 0x0000_ffff_ffff_ffff);
    let mid = lo / 2.0 + hi / 2.0;
    if neg {
        -mid
    } else {
        mid
    }
}

impl Histogram {
    /// Records one observation. Non-finite values are ignored (they
    /// have no bucket and would poison `sum`).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(bucket_key(v)).or_insert(0) += 1;
    }

    /// Folds another histogram (e.g. from a different thread) into
    /// this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (k, n) in &other.buckets {
            *self.buckets.entry(*k).or_insert(0) += n;
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Occupied buckets in ascending value order, as
    /// `(upper_edge, count)` — the raw material for a cumulative
    /// exposition (`le` bounds are the upper edges).
    pub fn bucket_counts(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets.iter().map(|(&k, &n)| (bucket_upper(k), n))
    }

    /// Value at quantile `q` in `[0, 1]`, approximated by the midpoint
    /// of the bucket holding that rank and clamped to the observed
    /// range. Returns `None` for an empty histogram.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // event counts stay far below 2^52
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (k, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return Some(bucket_mid(*k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Freezes the histogram into summary statistics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
            p50: self.quantile(0.50).unwrap_or(f64::NAN),
            p90: self.quantile(0.90).unwrap_or(f64::NAN),
            p99: self.quantile(0.99).unwrap_or(f64::NAN),
        }
    }
}

/// Summary statistics for one recorded value series, as reported in
/// the drain-time metrics event.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`NaN` when empty).
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

impl Snapshot {
    /// Mean of observations (`NaN` when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // event counts stay far below 2^52
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Serializes the snapshot as a JSON object. Non-finite statistics
    /// (an empty histogram's `min`) render as `null`.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        Value::Obj(vec![
            ("count".into(), Value::from(self.count)),
            ("sum".into(), Value::Num(self.sum)),
            ("min".into(), Value::Num(self.min)),
            ("max".into(), Value::Num(self.max)),
            ("p50".into(), Value::Num(self.p50)),
            ("p90".into(), Value::Num(self.p90)),
            ("p99".into(), Value::Num(self.p99)),
        ])
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // histogram statistics are exact for these inputs
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.min.is_nan() && s.p50.is_nan());
        assert!(s.mean().is_nan());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::default();
        h.record(42.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        // Clamped to the observed range, so exact for a single value.
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::default();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        for (got, want) in [(s.p50, 5000.0), (s.p90, 9000.0), (s.p99, 9900.0)] {
            let rel = (got - want).abs() / want;
            assert!(rel < 0.07, "got {got}, want {want} (rel {rel})");
        }
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10_000.0);
    }

    #[test]
    fn negative_and_mixed_values_ordered() {
        let mut h = Histogram::default();
        for v in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, -100.0);
        assert_eq!(s.max, 100.0);
        // Median bucket must be the zero bucket.
        assert!(s.p50.abs() < 1e-300, "p50 {}", s.p50);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(3.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().sum, 3.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for i in 0..100 {
            let v = (i * 37 % 100) as f64 + 0.5;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        let (sa, sall) = (a.snapshot(), all.snapshot());
        assert_eq!(sa, sall);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::default());
        assert_eq!(a.snapshot(), sall);
    }

    #[test]
    fn bucket_upper_edges_are_monotone_and_contain_values() {
        let mut h = Histogram::default();
        let vals = [-100.0, -1.0, 0.5, 2.0, 1e6];
        for v in vals {
            h.record(v);
        }
        let edges: Vec<(f64, u64)> = h.bucket_counts().collect();
        assert_eq!(edges.iter().map(|(_, n)| n).sum::<u64>(), 5);
        for w in edges.windows(2) {
            assert!(w[0].0 < w[1].0, "{edges:?}");
        }
        // Every recorded value is <= its bucket's upper edge, and the
        // cumulative count over all buckets reaches the total.
        for v in vals {
            let covered = edges.iter().filter(|(upper, _)| v <= *upper).count();
            assert!(covered >= 1, "value {v} above every edge: {edges:?}");
        }
    }

    #[test]
    fn bucket_key_is_monotone() {
        let vals = [-1e9, -2.5, -1.0, -1e-12, 0.0, 1e-12, 1.0, 1.0625, 2.5, 1e9];
        for w in vals.windows(2) {
            assert!(bucket_key(w[0]) <= bucket_key(w[1]), "{w:?}");
        }
        // Midpoint stays inside (or near) its bucket.
        for v in vals {
            let mid = bucket_mid(bucket_key(v));
            if v != 0.0 {
                assert!((mid - v).abs() <= v.abs() * 0.07, "v={v} mid={mid}");
            }
        }
    }
}
