//! The live metrics registry: labeled counters, gauges and value
//! histograms, sharded per thread and mergeable at any time.
//!
//! Each instrumented thread owns one [`Shard`] (a pair of `BTreeMap`s
//! behind a mutex that is only contended when a snapshot is taken).
//! [`MetricsRegistry::snapshot`] merges every shard into one
//! [`RegistrySnapshot`] *without* disturbing the accumulation — a
//! long-running process can be scraped mid-run — while
//! [`MetricsRegistry::drain`] is snapshot-and-reset, so repeated
//! drains partition the event stream losslessly.
//!
//! Series identity is [`SeriesId`]: a static metric name plus a sorted
//! label set, e.g. `core.cache.hits{kind="steady"}`. The unlabeled
//! fast path allocates nothing (an empty label `Vec`), so the
//! pre-existing `counter`/`record_value` API costs what it always did.
//!
//! The [`CATALOG`] lists every metric the workspace emits, so
//! reporting layers can zero-fill absent counters and attach help text
//! without hand-maintained lists going stale.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::agg::Histogram;
use crate::lock;

/// What a catalogued metric is, for exposition TYPE lines and
/// zero-fill decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-set level.
    Gauge,
    /// Value distribution (sparse log-bucket histogram).
    Histogram,
}

/// One entry of the [`CATALOG`].
#[derive(Debug, Clone, Copy)]
pub struct MetricDesc {
    /// Dotted metric name as passed to the instrumentation calls.
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Label keys this metric may carry (empty for unlabeled metrics).
    pub labels: &'static [&'static str],
    /// One-line description, used for Prometheus `# HELP`.
    pub help: &'static str,
}

/// Every metric the workspace emits, in name order. Reporting layers
/// (`rascad stats`, the Prometheus encoder) zero-fill counters from
/// this list so a metric that never fired still shows up as `0`
/// instead of silently going missing.
pub const CATALOG: &[MetricDesc] = &[
    MetricDesc {
        name: "core.block_states",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "State count of each generated Markov chain",
    },
    MetricDesc {
        name: "core.blocks_generated",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Blocks run through the chain generator",
    },
    MetricDesc {
        name: "core.cache.entries",
        kind: MetricKind::Gauge,
        labels: &["kind"],
        help: "Entries resident in the block-solution cache",
    },
    MetricDesc {
        name: "core.cache.hits",
        kind: MetricKind::Counter,
        labels: &["kind"],
        help: "Block-solution cache hits by cache kind",
    },
    MetricDesc {
        name: "core.cache.misses",
        kind: MetricKind::Counter,
        labels: &["kind"],
        help: "Block-solution cache misses by cache kind",
    },
    MetricDesc {
        name: "core.degraded_solves",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Blocks rolled up as availability bounds under --best-effort",
    },
    MetricDesc {
        name: "core.pool.batches",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Parallel map batches dispatched to the worker pool",
    },
    MetricDesc {
        name: "core.pool.tasks",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tasks executed by the worker pool",
    },
    MetricDesc {
        name: "core.pool.workers",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Worker threads used per parallel batch",
    },
    MetricDesc {
        name: "core.specs_solved",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Full system specifications solved",
    },
    MetricDesc {
        name: "core.sweep_points",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Parametric sweep points evaluated",
    },
    MetricDesc {
        name: "engine.worker_panics",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Worker panics caught and isolated by the solve engine",
    },
    MetricDesc {
        name: "fielddata.outages_pooled",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Outage records pooled by the field-data estimator",
    },
    MetricDesc {
        name: "gmb.models_solved",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Generic Markov models solved via the registry",
    },
    MetricDesc {
        name: "library.specs_built",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Library example specifications constructed",
    },
    MetricDesc {
        name: "lint.tier_c.bdd_nodes",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "BDD nodes per Tier C structure-function compilation",
    },
    MetricDesc {
        name: "lint.tier_c.cut_sets",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Minimal cut sets enumerated per Tier C run (order-capped)",
    },
    MetricDesc {
        name: "lint.tier_c.runs",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Tier C structural analysis passes executed",
    },
    MetricDesc {
        name: "markov.gth.min_pivot",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Smallest pivot magnitude per GTH elimination",
    },
    MetricDesc {
        name: "markov.gth.states",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Chain size per GTH solve",
    },
    MetricDesc {
        name: "markov.iterations",
        kind: MetricKind::Histogram,
        labels: &["method"],
        help: "Iterations spent per solve by method (converged or not)",
    },
    MetricDesc {
        name: "markov.lu.condest",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "1-norm condition-number estimate per dense LU solve",
    },
    MetricDesc {
        name: "markov.lu.fill",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Fill-in produced per LU factorization",
    },
    MetricDesc {
        name: "markov.residual",
        kind: MetricKind::Histogram,
        labels: &["method"],
        help: "Final residual per solve by method (converged or not)",
    },
    MetricDesc {
        name: "markov.solves",
        kind: MetricKind::Counter,
        labels: &["method"],
        help: "Steady-state solves by ladder rung (power, lu, gth)",
    },
    MetricDesc {
        name: "markov.transient.grid_solves",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Transient grid evaluations (uniformization)",
    },
    MetricDesc {
        name: "markov.transient.kmax",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Uniformization truncation depth per transient solve",
    },
    MetricDesc {
        name: "markov.transient.solves",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Point transient solves (uniformization)",
    },
    MetricDesc {
        name: "markov.transient.truncation",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Residual truncation mass (1 - captured probability) per transient solve",
    },
    MetricDesc {
        name: "markov.transient.vec_mul_steps",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Matrix-vector products spent in transient solves",
    },
    MetricDesc {
        name: "rbd.evaluations",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Reliability-block-diagram availability evaluations",
    },
    MetricDesc {
        name: "serve.inflight",
        kind: MetricKind::Gauge,
        labels: &[],
        help: "Requests currently admitted and executing in the service",
    },
    MetricDesc {
        name: "serve.latency",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "End-to-end request latency in milliseconds",
    },
    MetricDesc {
        name: "serve.requests",
        kind: MetricKind::Counter,
        labels: &["route", "status"],
        help: "HTTP requests served by route and status class",
    },
    MetricDesc {
        name: "serve.shed",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Requests shed by admission control (429 Retry-After)",
    },
    MetricDesc {
        name: "sim.availability",
        kind: MetricKind::Histogram,
        labels: &[],
        help: "Estimated availability per simulation run",
    },
    MetricDesc {
        name: "sim.events",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Discrete events processed by the simulator",
    },
    MetricDesc {
        name: "sim.replications",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Monte-Carlo replications executed",
    },
    MetricDesc {
        name: "solve.certified",
        kind: MetricKind::Counter,
        labels: &["verdict"],
        help: "Solution certificates issued by verdict (ok, warn, fail)",
    },
    MetricDesc {
        name: "solve.fallbacks",
        kind: MetricKind::Counter,
        labels: &["from", "to"],
        help: "Steady-state ladder fallbacks by edge (from -> to)",
    },
    MetricDesc {
        name: "solve.timeouts",
        kind: MetricKind::Counter,
        labels: &[],
        help: "Ladder rungs abandoned on the iteration budget",
    },
];

/// Looks a metric up in the [`CATALOG`] by its dotted name.
#[must_use]
pub fn describe(name: &str) -> Option<&'static MetricDesc> {
    CATALOG.iter().find(|d| d.name == name)
}

/// Identity of one time series: metric name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Dotted metric name.
    pub name: &'static str,
    /// Label key/value pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesId {
    /// An unlabeled series. Allocates nothing.
    #[must_use]
    pub fn plain(name: &'static str) -> SeriesId {
        SeriesId { name, labels: Vec::new() }
    }

    /// A labeled series; labels are copied and sorted by key.
    #[must_use]
    pub fn with_labels(name: &'static str, labels: &[(&str, &str)]) -> SeriesId {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        labels.sort();
        SeriesId { name, labels }
    }

    /// Renders the series as `name` or `name{k="v",...}` — the form
    /// used in drain events, tables and BENCH documents.
    #[must_use]
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// One thread's accumulated series (the per-thread shard).
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) counters: BTreeMap<SeriesId, u64>,
    pub(crate) values: BTreeMap<SeriesId, Histogram>,
}

impl Shard {
    fn clear(&mut self) {
        self.counters.clear();
        self.values.clear();
    }
}

/// A merged, point-in-time view of every series in the registry.
///
/// Histograms are carried whole (not summarized), so exporters that
/// need bucket detail — the Prometheus encoder — work from the same
/// snapshot as the summary tables.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counters, sorted by series id.
    pub counters: Vec<(SeriesId, u64)>,
    /// Gauges (last set value), sorted by series id.
    pub gauges: Vec<(SeriesId, f64)>,
    /// Value histograms, sorted by series id.
    pub values: Vec<(SeriesId, Histogram)>,
}

impl RegistrySnapshot {
    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.values.is_empty()
    }

    /// Total of every counter series matching the dotted `name`
    /// (summing across label sets). `None` when no series matches.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0;
        for (id, v) in &self.counters {
            if id.name == name {
                found = true;
                total += v;
            }
        }
        found.then_some(total)
    }
}

/// The process-wide registry of per-thread shards and global gauges.
///
/// Obtained via [`MetricsRegistry::global`]; instrumentation writes to
/// it through the free functions in the crate root (`counter`,
/// `counter_with`, …), which are gated on the telemetry flag.
pub struct MetricsRegistry {
    shards: Mutex<Vec<Arc<Mutex<Shard>>>>,
    /// Gauges are set-not-accumulated, so they live globally (last
    /// write wins, under one rarely-taken lock) instead of per shard.
    gauges: Mutex<BTreeMap<SeriesId, f64>>,
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

thread_local! {
    /// This thread's shard, shared with the global registry.
    static SHARD: RefCell<Option<Arc<Mutex<Shard>>>> = const { RefCell::new(None) };
}

impl MetricsRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        REGISTRY.get_or_init(|| MetricsRegistry {
            shards: Mutex::new(Vec::new()),
            gauges: Mutex::new(BTreeMap::new()),
        })
    }

    /// Merges every shard into one view **without** resetting — safe
    /// to call at any point in a run (a scrape), any number of times.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.collect(false)
    }

    /// Merges every shard into one view and resets the accumulation:
    /// consecutive drains partition the recorded series losslessly
    /// (nothing is dropped, nothing is double-counted). Gauges keep
    /// their level — they are a state, not a flow.
    pub fn drain(&self) -> RegistrySnapshot {
        self.collect(true)
    }

    /// Clears every shard and gauge (a fresh install).
    pub(crate) fn reset(&self) {
        for shard in lock(&self.shards).iter() {
            lock(shard).clear();
        }
        lock(&self.gauges).clear();
    }

    fn collect(&self, reset: bool) -> RegistrySnapshot {
        let mut counters: BTreeMap<SeriesId, u64> = BTreeMap::new();
        let mut values: BTreeMap<SeriesId, Histogram> = BTreeMap::new();
        for shard in lock(&self.shards).iter() {
            let mut shard = lock(shard);
            for (id, v) in &shard.counters {
                *counters.entry(id.clone()).or_insert(0) += v;
            }
            for (id, h) in &shard.values {
                values.entry(id.clone()).or_default().merge(h);
            }
            if reset {
                shard.clear();
            }
        }
        let gauges = lock(&self.gauges).iter().map(|(id, v)| (id.clone(), *v)).collect();
        RegistrySnapshot {
            counters: counters.into_iter().collect(),
            gauges,
            values: values.into_iter().collect(),
        }
    }
}

/// Runs `f` on this thread's shard, registering it on first use.
fn with_shard(f: impl FnOnce(&mut Shard)) {
    SHARD.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(Shard::default()));
            lock(&MetricsRegistry::global().shards).push(Arc::clone(&arc));
            arc
        });
        f(&mut lock(arc));
    });
}

pub(crate) fn add_counter(id: SeriesId, delta: u64) {
    with_shard(|s| *s.counters.entry(id).or_insert(0) += delta);
}

pub(crate) fn record(id: SeriesId, v: f64) {
    with_shard(|s| s.values.entry(id).or_default().record(v));
}

pub(crate) fn set_gauge(id: SeriesId, v: f64) {
    lock(&MetricsRegistry::global().gauges).insert(id, v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render_forms() {
        assert_eq!(SeriesId::plain("cache.hits").render(), "cache.hits");
        let id = SeriesId::with_labels("cache.hits", &[("kind", "steady")]);
        assert_eq!(id.render(), "cache.hits{kind=\"steady\"}");
        // Labels sort by key regardless of call-site order, so the
        // same logical series always coalesces.
        let a = SeriesId::with_labels("solve.fallbacks", &[("to", "lu"), ("from", "power")]);
        let b = SeriesId::with_labels("solve.fallbacks", &[("from", "power"), ("to", "lu")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "solve.fallbacks{from=\"power\",to=\"lu\"}");
    }

    #[test]
    fn plain_series_id_allocates_no_labels() {
        let id = SeriesId::plain("x");
        assert_eq!(id.labels.capacity(), 0);
    }

    #[test]
    fn catalog_is_sorted_unique_and_self_describing() {
        for w in CATALOG.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
        for d in CATALOG {
            assert!(!d.help.is_empty(), "{} lacks help", d.name);
        }
        assert!(describe("markov.solves").is_some());
        assert!(describe("no.such.metric").is_none());
    }

    #[test]
    fn snapshot_counter_total_sums_label_sets() {
        let snap = RegistrySnapshot {
            counters: vec![
                (SeriesId::with_labels("cache.hits", &[("kind", "mission")]), 2),
                (SeriesId::with_labels("cache.hits", &[("kind", "steady")]), 3),
            ],
            gauges: Vec::new(),
            values: Vec::new(),
        };
        assert_eq!(snap.counter_total("cache.hits"), Some(5));
        assert_eq!(snap.counter_total("cache.misses"), None);
    }
}
