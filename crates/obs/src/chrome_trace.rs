//! Chrome trace-event exporter: spans as a Perfetto-loadable timeline.
//!
//! [`ChromeTraceSink`] streams the span stream into the Trace Event
//! Format's JSON object form (`{"traceEvents":[...]}`), loadable in
//! Perfetto or `chrome://tracing`. Each closed span becomes one "X"
//! (complete) event with microsecond `ts`/`dur`; the subscriber's
//! thread ordinal becomes the `tid`, so worker pools render as
//! parallel lanes, and each lane gets an "M" `thread_name` metadata
//! record the first time it appears. Span fields ride along in `args`.
//!
//! Events are written as spans *close*, so a parent span appears after
//! its children — the format is explicitly order-independent (viewers
//! sort by `ts`), which is what makes single-pass streaming possible.

use std::collections::BTreeSet;
use std::io::Write;
use std::time::Duration;

use crate::json::Value;
use crate::sink::{Event, Sink};

/// Streams span events as Chrome trace JSON to a writer.
///
/// The array is opened on construction and closed when the sink is
/// dropped (i.e. at [`crate::uninstall`]), so the output is a complete
/// JSON document once the subscriber shuts down. Write errors are
/// swallowed: tracing must never take down the computation it
/// observes.
pub struct ChromeTraceSink<W: Write + Send> {
    out: W,
    /// Thread ordinals that already got a `thread_name` metadata event.
    named: BTreeSet<u64>,
    /// Whether any event has been written (comma bookkeeping).
    wrote_any: bool,
    /// Whether the closing `]}` has been written.
    closed: bool,
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps a writer and opens the `traceEvents` array.
    pub fn new(mut out: W) -> Self {
        let _ = out.write_all(b"{\"traceEvents\":[");
        ChromeTraceSink { out, named: BTreeSet::new(), wrote_any: false, closed: false }
    }

    fn emit(&mut self, value: &Value) {
        if self.closed {
            return;
        }
        if self.wrote_any {
            let _ = self.out.write_all(b",\n");
        } else {
            let _ = self.out.write_all(b"\n");
        }
        self.wrote_any = true;
        let _ = self.out.write_all(value.to_string_compact().as_bytes());
    }

    /// Emits the one-time `thread_name` metadata record for a lane.
    fn name_thread(&mut self, tid: u64) {
        if !self.named.insert(tid) {
            return;
        }
        let label = if tid == 0 { "main".to_string() } else { format!("worker-{tid}") };
        let meta = Value::Obj(vec![
            ("name".into(), Value::from("thread_name")),
            ("ph".into(), Value::from("M")),
            ("pid".into(), Value::from(u64::from(std::process::id()))),
            ("tid".into(), Value::from(tid)),
            ("args".into(), Value::Obj(vec![("name".into(), Value::Str(label))])),
        ]);
        self.emit(&meta);
    }

    /// Writes the closing bracket; further events are ignored. Called
    /// from [`Drop`], but safe to call early.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        let _ = self.out.write_all(b"\n]}\n");
        let _ = self.out.flush();
        self.closed = true;
    }
}

impl<W: Write + Send> Sink for ChromeTraceSink<W> {
    fn event(&mut self, event: &Event) {
        let Event::SpanEnd { name, at, elapsed, fields, tid, .. } = event else {
            return;
        };
        self.name_thread(*tid);
        // `at` is the close time; the viewer wants the open time.
        let ts = (micros(*at) - micros(*elapsed)).max(0.0);
        let mut obj = vec![
            ("name".into(), Value::from(*name)),
            ("cat".into(), Value::from("rascad")),
            ("ph".into(), Value::from("X")),
            ("ts".into(), Value::Num(ts)),
            ("dur".into(), Value::Num(micros(*elapsed))),
            ("pid".into(), Value::from(u64::from(std::process::id()))),
            ("tid".into(), Value::from(*tid)),
        ];
        if !fields.is_empty() {
            obj.push((
                "args".into(),
                Value::Obj(fields.iter().map(|(k, v)| ((*k).to_string(), v.to_json())).collect()),
            ));
        }
        self.emit(&Value::Obj(obj));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> Drop for ChromeTraceSink<W> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Checks that `text` is a well-formed Chrome trace document: a JSON
/// object with a `traceEvents` array whose entries each carry a string
/// `ph` and, for "X" events, numeric `ts`/`dur` and a `name`. Returns
/// the complete-event span names in document order.
///
/// # Errors
///
/// A description of the first structural problem found.
pub fn validate(text: &str) -> Result<Vec<String>, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut names = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "X" {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: X event without name"))?;
        for key in ["ts", "dur"] {
            let v = ev.get(key).and_then(|v| v.as_f64());
            match v {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("event {i} ({name}): bad {key}")),
            }
        }
        ev.get("tid").and_then(|v| v.as_i64()).ok_or_else(|| format!("event {i}: bad tid"))?;
        names.push(name.to_string());
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FieldValue;

    fn end(id: u64, name: &'static str, at_us: u64, dur_us: u64, tid: u64) -> Event {
        Event::SpanEnd {
            id,
            name,
            at: Duration::from_micros(at_us),
            elapsed: Duration::from_micros(dur_us),
            fields: Vec::new(),
            tid,
        }
    }

    #[test]
    fn document_is_valid_json_with_thread_lanes() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.event(&end(1, "gth", 100, 40, 0));
        sink.event(&end(2, "gth", 120, 30, 1));
        sink.event(&end(3, "solve_spec", 200, 180, 0));
        sink.close();
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        let names = validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(names, vec!["gth", "gth", "solve_spec"]);
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // One thread_name metadata record per lane, before its spans.
        let metas: Vec<&Value> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].get("args").unwrap().get("name").unwrap().as_str(), Some("main"));
        assert_eq!(metas[1].get("args").unwrap().get("name").unwrap().as_str(), Some("worker-1"));
        // ts is the open time: close-at minus duration.
        let solve =
            events.iter().find(|e| e.get("name").unwrap().as_str() == Some("solve_spec")).unwrap();
        assert_eq!(solve.get("ts").unwrap().as_f64(), Some(20.0));
        assert_eq!(solve.get("dur").unwrap().as_f64(), Some(180.0));
    }

    #[test]
    fn fields_become_args() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.event(&Event::SpanEnd {
            id: 1,
            name: "solve_block",
            at: Duration::from_micros(50),
            elapsed: Duration::from_micros(10),
            fields: vec![("block", FieldValue::Str("CPU Module".into())), ("states", 12u64.into())],
            tid: 0,
        });
        sink.close();
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        validate(&text).unwrap();
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span = events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).unwrap();
        let args = span.get("args").unwrap();
        assert_eq!(args.get("block").unwrap().as_str(), Some("CPU Module"));
        assert_eq!(args.get("states").unwrap().as_i64(), Some(12));
    }

    #[test]
    fn drop_closes_the_document_and_start_events_are_ignored() {
        let buf: Vec<u8>;
        {
            let mut sink = ChromeTraceSink::new(Vec::new());
            sink.event(&Event::SpanStart {
                id: 1,
                parent: None,
                name: "solve",
                at: Duration::ZERO,
                tid: 0,
            });
            sink.event(&end(1, "solve", 90, 90, 0));
            // No explicit close: Drop must finish the document.
            buf = {
                sink.event(&Event::Metrics { counters: vec![], gauges: vec![], values: vec![] });
                sink.close();
                std::mem::take(&mut sink.out)
            };
        }
        let text = String::from_utf8(buf).unwrap();
        let names = validate(&text).unwrap();
        assert_eq!(names, vec!["solve"]);
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.close();
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        assert_eq!(validate(&text).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, why) in [
            ("[1,2]", "not an object"),
            ("{\"other\":[]}", "missing traceEvents"),
            ("{\"traceEvents\":{}}", "traceEvents not array"),
            ("{\"traceEvents\":[{\"name\":\"x\"}]}", "event without ph"),
            ("{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"dur\":1,\"tid\":0}]}", "X without name"),
            (
                "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"ts\":-5,\"dur\":1,\"tid\":0}]}",
                "negative ts",
            ),
        ] {
            assert!(validate(doc).is_err(), "validator accepted: {why}");
        }
    }
}
