//! Hand-rolled JSON: a value type, a writer, and a parser.
//!
//! The workspace builds without crates.io access, so it cannot use
//! `serde_json`. This module supplies the JSON needed in-tree: the
//! trace sink ([`crate::JsonLinesSink`]) writes events through
//! [`Value::write_compact`], and `rascad-spec` builds its interchange
//! format on [`parse`] / [`Value::to_string_pretty`].
//!
//! Dialect notes:
//!
//! * Writing: strings are escaped per RFC 8259 (`"`, `\`, control
//!   characters as `\n`, `\t`, … or `\u00XX`); non-finite floats have
//!   no JSON representation and are written as `null`.
//! * Parsing: strict JSON with two deliberate liberalities — any
//!   numeric token parseable as `f64` is accepted, and object keys must
//!   be strings but may repeat (later entries are kept alongside
//!   earlier ones; [`Value::get`] returns the first).

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`], guarding recursive
/// descent against stack overflow on adversarial inputs.
const MAX_DEPTH: usize = 128;

/// A JSON document value.
///
/// Integers and floats are kept distinct so that values such as block
/// quantities round-trip as integers while rates keep their full `f64`
/// precision (written via Rust's shortest-roundtrip formatting).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, within `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Numeric accessor: accepts [`Value::Int`] and [`Value::Num`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // JSON numbers tolerate i64 -> f64 rounding
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer accessor ([`Value::Int`] only).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up the first entry named `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes on one line with no extra whitespace.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Appends the compact serialization to `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(o) if !o.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    #[allow(clippy::cast_precision_loss)] // values beyond i64 round like any JSON number
    fn from(u: u64) -> Value {
        i64::try_from(u).map_or(Value::Num(u as f64), Value::Int)
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Int(i64::from(u))
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes an `f64`; non-finite values become `null` (JSON has no
/// representation for them).
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to
        // the identical bit pattern, and always contains a `.` or `e`.
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset into the input plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"').map_err(|_| self.err("expected string"))?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_fraction = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    saw_fraction = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        if !saw_fraction {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => {
                self.pos = start;
                Err(self.err(format!("invalid number `{text}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Int(42)),
            ("-7", Value::Int(-7)),
            ("1.5", Value::Num(1.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn float_precision_roundtrips() {
        for x in [0.1, 1e-300, 12345.6789, 2.2250738585072014e-308, 1.7976931348623157e308] {
            let v = Value::Num(x);
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Value::Num(f64::NEG_INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn string_escaping_roundtrips() {
        let nasty = "a\"b\\c\nd\te\r\u{8}\u{c}\u{1}é✓\u{10348}";
        let v = Value::Str(nasty.into());
        let text = v.to_string_compact();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(parse("\"\\ud800\\udf48\"").unwrap(), Value::Str("\u{10348}".into()));
        assert!(parse("\"\\ud800\"").is_err());
        assert!(parse("\"\\ud800x\"").is_err());
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "d", "a": true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        let back = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "01x",
            "\"\\q\"",
            "[1] garbage",
            "{1: 2}",
            "\"abc",
            "1e",
            "--3",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn big_u64_falls_back_to_float() {
        let v = Value::from(u64::MAX);
        assert!(matches!(v, Value::Num(_)));
        let v = Value::from(u64::from(u32::MAX));
        assert_eq!(v, Value::Int(4294967295));
    }
}
