//! `rascad-obs`: std-only structured tracing and metrics for the
//! RAScad generate→solve pipeline.
//!
//! The build environment has no registry access, so this crate
//! hand-rolls the pieces it would otherwise take from `tracing` /
//! `metrics`:
//!
//! * **Spans** ([`span`]) — RAII wall-clock timings with typed fields
//!   and thread-local parent/child nesting, streamed live to sinks.
//! * **Counters** ([`counter`]) and **value series**
//!   ([`record_value`]) — aggregated per thread (sparse log-bucket
//!   histograms for values), merged and emitted once at [`drain`].
//! * **Sinks** ([`Sink`]) — pluggable consumers; built-ins are
//!   [`JsonLinesSink`] (one JSON object per event per line) and
//!   [`SummarySink`] (human-readable table on flush).
//!
//! # Zero cost when disabled
//!
//! The subscriber is **disabled by default**. Every instrumentation
//! entry point first checks one relaxed atomic load ([`enabled`]) and
//! returns immediately when tracing is off — no allocation, no locks,
//! no clock reads. Instrumented library code therefore stays on its
//! fast path unless a CLI flag (or a test) calls [`install`].
//!
//! # Usage
//!
//! ```
//! struct Count(u64);
//! impl rascad_obs::Sink for Count {
//!     fn event(&mut self, _: &rascad_obs::Event) { self.0 += 1; }
//! }
//!
//! rascad_obs::install(vec![Box::new(Count(0))]);
//! {
//!     let mut span = rascad_obs::span("solve");
//!     span.record("states", 12u64);
//!     rascad_obs::counter("blocks_generated", 1);
//!     rascad_obs::record_value("pivot_magnitude", 0.25);
//! }
//! rascad_obs::drain();     // emits the aggregated metrics event
//! rascad_obs::uninstall(); // disables and drops the sinks
//! ```

pub mod json;
pub mod tree;

mod agg;
mod sink;

pub use agg::{Histogram, Snapshot};
pub use sink::{Event, FieldValue, JsonLinesSink, MetricsSummary, Sink, SummarySink};
pub use tree::{SpanNodeStat, SpanTreeAgg};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use agg::ThreadAgg;

/// The one-atomic-load gate every instrumentation call checks first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global subscriber state; created on first [`install`] and reused
/// (sinks are swapped, ids keep counting) for the process lifetime.
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

struct Collector {
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    /// Every thread that recorded a metric registers its aggregate
    /// here so [`drain`] can merge them without thread cooperation.
    threads: Mutex<Vec<Arc<Mutex<ThreadAgg>>>>,
    next_span_id: AtomicU64,
    epoch: Instant,
}

impl Collector {
    fn new() -> Self {
        Collector {
            sinks: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }
}

thread_local! {
    /// Stack of open span ids on this thread (for parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's metric aggregate, shared with the collector.
    static THREAD_AGG: RefCell<Option<Arc<Mutex<ThreadAgg>>>> =
        const { RefCell::new(None) };
}

/// Ignores mutex poisoning: a panicking instrumented thread must not
/// disable tracing for everyone else, and sink/aggregate state is
/// append-only so partial writes are harmless.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether tracing is currently installed. One relaxed atomic load —
/// this is the entire cost of instrumentation when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the given sinks and enables tracing process-wide.
///
/// Replaces any previously installed sinks and resets all metric
/// aggregates, so consecutive install/drain cycles (e.g. tests) do not
/// observe each other's data. Span ids keep increasing across cycles.
pub fn install(sinks: Vec<Box<dyn Sink>>) {
    let c = COLLECTOR.get_or_init(Collector::new);
    for agg in lock(&c.threads).iter() {
        lock(agg).clear();
    }
    *lock(&c.sinks) = sinks;
    ENABLED.store(true, Ordering::SeqCst);
}

/// Merges all per-thread counters and histograms and emits one
/// [`Event::Metrics`] to every sink, then flushes the sinks. The
/// aggregates are cleared, so a second drain reports only new data.
pub fn drain() {
    let Some(c) = COLLECTOR.get() else { return };
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut values: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for agg in lock(&c.threads).iter() {
        let mut agg = lock(agg);
        for (name, v) in &agg.counters {
            *counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &agg.values {
            values.entry(name).or_default().merge(h);
        }
        agg.clear();
    }
    let event = Event::Metrics {
        counters: counters.into_iter().collect(),
        values: values.into_iter().map(|(name, h)| (name, h.snapshot())).collect(),
    };
    let mut sinks = lock(&c.sinks);
    for s in sinks.iter_mut() {
        s.event(&event);
        s.flush();
    }
}

/// Disables tracing, flushes, and drops the installed sinks.
///
/// Does **not** emit a metrics event; call [`drain`] first if the
/// aggregated metrics should be reported.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(c) = COLLECTOR.get() {
        let mut sinks = lock(&c.sinks);
        for s in sinks.iter_mut() {
            s.flush();
        }
        sinks.clear();
    }
}

/// Sends one event to every installed sink.
fn emit(c: &Collector, event: &Event) {
    for s in lock(&c.sinks).iter_mut() {
        s.event(event);
    }
}

/// Opens a named span. Returns a no-op handle when tracing is
/// disabled. The span closes (emitting [`Event::SpanEnd`] with its
/// wall-clock duration and recorded fields) when the handle drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    let c = COLLECTOR.get_or_init(Collector::new);
    let id = c.next_span_id.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let start = Instant::now();
    emit(c, &Event::SpanStart { id, parent, name, at: start - c.epoch });
    Span { inner: Some(SpanInner { id, name, start, fields: Vec::new() }) }
}

struct SpanInner {
    id: u64,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII handle for an open span; see [`span`].
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a typed field, reported in the span's end event. No-op
    /// on a disabled span.
    #[inline]
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// Whether this handle is live (tracing was enabled at creation).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Spans normally close in LIFO order; tolerate out-of-order
            // drops (e.g. a span stored in a struct) by removing by id.
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != inner.id);
            }
        });
        let Some(c) = COLLECTOR.get() else { return };
        let now = Instant::now();
        emit(
            c,
            &Event::SpanEnd {
                id: inner.id,
                name: inner.name,
                at: now - c.epoch,
                elapsed: now - inner.start,
                fields: inner.fields,
            },
        );
    }
}

/// Runs `f` on this thread's aggregate, registering it with the
/// collector on first use.
fn with_agg(f: impl FnOnce(&mut ThreadAgg)) {
    THREAD_AGG.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(ThreadAgg::default()));
            let c = COLLECTOR.get_or_init(Collector::new);
            lock(&c.threads).push(Arc::clone(&arc));
            arc
        });
        f(&mut lock(arc));
    });
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_agg(|a| *a.counters.entry(name).or_insert(0) += delta);
}

/// Records one observation into the named value series (log-bucket
/// histogram). Non-finite values are dropped. No-op when disabled.
#[inline]
pub fn record_value(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_agg(|a| a.values.entry(name).or_default().record(value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;
    use std::time::Duration;

    /// The subscriber is process-global, so tests that install it must
    /// not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Capturing sink sharing its event log with the test body.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<Event>>>);

    impl Capture {
        fn events(&self) -> Vec<Event> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Sink for Capture {
        fn event(&mut self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn disabled_by_default_and_after_uninstall() {
        let _guard = serial();
        uninstall();
        assert!(!enabled());
        let mut span = span("ignored");
        assert!(!span.is_enabled());
        span.record("x", 1u64);
        counter("ignored", 1);
        record_value("ignored", 1.0);
        drop(span);

        // Now install and confirm the earlier calls left no trace.
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        drain();
        let events = cap.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Metrics { counters, values } => {
                assert!(counters.is_empty(), "{counters:?}");
                assert!(values.is_empty());
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        uninstall();
    }

    #[test]
    fn span_nesting_and_timing_monotonicity() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        {
            let mut outer = span("outer");
            outer.record("depth", 0u64);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        uninstall();

        let events = cap.events();
        let (outer_id, inner_parent) = {
            let mut outer_id = None;
            let mut inner_parent = None;
            for e in &events {
                if let Event::SpanStart { id, parent, name, .. } = e {
                    match *name {
                        "outer" => outer_id = Some(*id),
                        "inner" => inner_parent = *parent,
                        _ => {}
                    }
                }
            }
            (outer_id.unwrap(), inner_parent)
        };
        // Child links to the enclosing span on the same thread.
        assert_eq!(inner_parent, Some(outer_id));

        // Events arrive in causal order: start(outer), start(inner),
        // end(inner), end(outer).
        let order: Vec<(&str, &str)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, .. } => Some(("start", *name)),
                Event::SpanEnd { name, .. } => Some(("end", *name)),
                Event::Metrics { .. } => None,
            })
            .collect();
        assert_eq!(
            order,
            vec![("start", "outer"), ("start", "inner"), ("end", "inner"), ("end", "outer"),]
        );

        // Timing: `at` is non-decreasing across the stream, the outer
        // span contains the inner one, and recorded fields survive.
        let mut last_at = Duration::ZERO;
        let mut outer_elapsed = Duration::ZERO;
        let mut inner_elapsed = Duration::ZERO;
        for e in &events {
            let at = match e {
                Event::SpanStart { at, .. } => *at,
                Event::SpanEnd { at, name, elapsed, fields, .. } => {
                    match *name {
                        "outer" => {
                            outer_elapsed = *elapsed;
                            assert_eq!(fields, &vec![("depth", FieldValue::U64(0))]);
                        }
                        "inner" => inner_elapsed = *elapsed,
                        _ => {}
                    }
                    *at
                }
                Event::Metrics { .. } => continue,
            };
            assert!(at >= last_at, "timestamps must be monotone");
            last_at = at;
        }
        assert!(outer_elapsed >= inner_elapsed + Duration::from_millis(2));
        assert!(inner_elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn counters_and_histograms_aggregate_across_threads() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        counter("work", 5);
        record_value("size", 10.0);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter("work", 1);
                    record_value("size", (i + 1) as f64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drain();
        uninstall();

        let events = cap.events();
        let metrics = events
            .iter()
            .find_map(|e| match e {
                Event::Metrics { counters, values } => Some((counters.clone(), values.clone())),
                _ => None,
            })
            .expect("drain emits metrics");
        assert_eq!(metrics.0, vec![("work", 9)]);
        let (name, snap) = &metrics.1[0];
        assert_eq!(*name, "size");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 20.0);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 10.0);
    }

    #[test]
    fn drain_resets_aggregates_and_install_resets_previous_run() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        counter("n", 3);
        drain();
        counter("n", 4);
        drain();
        uninstall();
        let totals: Vec<u64> = cap
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Metrics { counters, .. } => Some(counters.iter().map(|(_, v)| *v).sum()),
                _ => None,
            })
            .collect();
        assert_eq!(totals, vec![3, 4]);

        // Leftover (undrained) state must not leak into a fresh install.
        let cap1 = Capture::default();
        install(vec![Box::new(cap1.clone())]);
        counter("leak", 1);
        uninstall(); // no drain: "leak" is still in the aggregate
        let cap2 = Capture::default();
        install(vec![Box::new(cap2.clone())]);
        drain();
        uninstall();
        match &cap2.events()[0] {
            Event::Metrics { counters, .. } => {
                assert!(counters.is_empty(), "{counters:?}")
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }
}
