//! `rascad-obs`: std-only structured tracing and live metrics for the
//! RAScad generate→solve pipeline.
//!
//! The build environment has no registry access, so this crate
//! hand-rolls the pieces it would otherwise take from `tracing` /
//! `metrics` / `prometheus`:
//!
//! * **Spans** ([`span`]) — RAII wall-clock timings with typed fields
//!   and thread-local parent/child nesting, streamed live to sinks.
//! * **Metrics** ([`counter`], [`counter_with`], [`record_value`],
//!   [`record_value_with`], [`gauge_set`]) — labeled series
//!   accumulated in per-thread shards of the
//!   [`MetricsRegistry`], mergeable at any time via
//!   [`MetricsRegistry::snapshot`] (a scrape) and emitted as one
//!   [`Event::Metrics`] per [`drain`] (snapshot-and-reset, so
//!   repeated drains are lossless).
//! * **Sinks** ([`Sink`]) — pluggable consumers; built-ins are
//!   [`JsonLinesSink`] (one JSON object per event per line),
//!   [`SummarySink`] (human-readable table on flush) and
//!   [`ChromeTraceSink`] (Chrome trace-event JSON with thread lanes).
//! * **Exposition** ([`prometheus`]) — Prometheus text-format 0.0.4
//!   encoding of a registry snapshot, plus a validator.
//! * **Flight recorder** ([`flight`]) — an always-on bounded ring of
//!   the most recent events, dumped as JSON lines post-mortem.
//!
//! # Zero cost when disabled
//!
//! Every instrumentation entry point first performs **one relaxed
//! atomic load** of a shared flags word and returns immediately when
//! both the subscriber and the flight recorder are off — no
//! allocation, no locks, no clock reads (the `overhead` integration
//! test pins this down with a counting allocator). Instrumented
//! library code therefore stays on its fast path unless a CLI flag
//! (or a test) calls [`install`] or [`flight::arm`].
//!
//! # Usage
//!
//! ```
//! struct Count(u64);
//! impl rascad_obs::Sink for Count {
//!     fn event(&mut self, _: &rascad_obs::Event) { self.0 += 1; }
//! }
//!
//! rascad_obs::install(vec![Box::new(Count(0))]);
//! {
//!     let mut span = rascad_obs::span("solve");
//!     span.record("states", 12u64);
//!     rascad_obs::counter("blocks_generated", 1);
//!     rascad_obs::counter_with("cache.hits", &[("kind", "steady")], 1);
//!     rascad_obs::record_value("pivot_magnitude", 0.25);
//! }
//! // A scrape: merge the shards without resetting them.
//! let live = rascad_obs::MetricsRegistry::global().snapshot();
//! assert_eq!(live.counter_total("cache.hits"), Some(1));
//! rascad_obs::drain();     // emits the aggregated metrics event
//! rascad_obs::uninstall(); // disables and drops the sinks
//! ```

pub mod chrome_trace;
pub mod flight;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod trace;
pub mod tree;

mod agg;
mod sink;

pub use agg::{Histogram, Snapshot};
pub use chrome_trace::ChromeTraceSink;
pub use registry::{
    describe, MetricDesc, MetricKind, MetricsRegistry, RegistrySnapshot, SeriesId, CATALOG,
};
pub use sink::{Event, FieldValue, JsonLinesSink, MetricsSummary, Sink, SummarySink};
pub use trace::{ConvergenceTrace, SolveTrace, TraceStep};
pub use tree::{SpanNodeStat, SpanTreeAgg};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Flag bit: the telemetry subscriber (sinks + registry) is installed.
pub(crate) const F_TELEMETRY: u32 = 1;
/// Flag bit: the flight recorder is armed.
pub(crate) const F_FLIGHT: u32 = 1 << 1;
/// Flag bit: the convergence trace channel is armed.
pub(crate) const F_CONV_TRACE: u32 = 1 << 2;

/// The one-atomic-load gate every instrumentation call checks first.
static FLAGS: AtomicU32 = AtomicU32::new(0);

#[inline]
fn flags() -> u32 {
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) fn set_flag(bit: u32) {
    FLAGS.fetch_or(bit, Ordering::SeqCst);
}

pub(crate) fn clear_flag(bit: u32) {
    FLAGS.fetch_and(!bit, Ordering::SeqCst);
}

/// Global subscriber state; created on first [`install`] and reused
/// (sinks are swapped, ids keep counting) for the process lifetime.
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

struct Collector {
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    next_span_id: AtomicU64,
    epoch: Instant,
}

impl Collector {
    fn new() -> Self {
        Collector {
            sinks: Mutex::new(Vec::new()),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }
}

/// Thread ordinals for trace lanes: 0 is the first thread to
/// instrument anything (normally `main`).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of open span ids on this thread (for parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's ordinal (`u64::MAX` = not assigned yet).
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// This thread's stable ordinal, assigned on first use.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Ignores mutex poisoning: a panicking instrumented thread must not
/// disable tracing for everyone else, and sink/aggregate state is
/// append-only so partial writes are harmless.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether the telemetry subscriber is currently installed. (The
/// flight recorder is tracked separately; see [`flight::arm`].)
#[inline]
#[must_use]
pub fn enabled() -> bool {
    flags() & F_TELEMETRY != 0
}

/// Installs the given sinks and enables telemetry process-wide.
///
/// Replaces any previously installed sinks and resets the metrics
/// registry, so consecutive install/drain cycles (e.g. tests) do not
/// observe each other's data. Span ids keep increasing across cycles.
/// An empty sink list is valid: the registry still accumulates and can
/// be scraped via [`MetricsRegistry::snapshot`].
pub fn install(sinks: Vec<Box<dyn Sink>>) {
    let c = COLLECTOR.get_or_init(Collector::new);
    MetricsRegistry::global().reset();
    *lock(&c.sinks) = sinks;
    set_flag(F_TELEMETRY);
}

/// Drains the registry (snapshot-and-reset) and emits one
/// [`Event::Metrics`] to every sink, then flushes the sinks. A second
/// drain reports only data recorded after the first — nothing is lost
/// and nothing is double-counted, on every thread including ones the
/// registry had already seen.
pub fn drain() {
    let Some(c) = COLLECTOR.get() else { return };
    let snap = MetricsRegistry::global().drain();
    let event = Event::Metrics {
        counters: snap.counters.iter().map(|(id, v)| (id.render(), *v)).collect(),
        gauges: snap.gauges.iter().map(|(id, v)| (id.render(), *v)).collect(),
        values: snap.values.iter().map(|(id, h)| (id.render(), h.snapshot())).collect(),
    };
    let mut sinks = lock(&c.sinks);
    for s in sinks.iter_mut() {
        s.event(&event);
        s.flush();
    }
}

/// Disables telemetry, flushes, and drops the installed sinks.
///
/// Does **not** emit a metrics event; call [`drain`] first if the
/// aggregated metrics should be reported. Does not disturb the flight
/// recorder: its rings survive so a post-mortem can still be dumped
/// after the session tears down.
pub fn uninstall() {
    clear_flag(F_TELEMETRY);
    if let Some(c) = COLLECTOR.get() {
        let mut sinks = lock(&c.sinks);
        for s in sinks.iter_mut() {
            s.flush();
        }
        sinks.clear();
    }
}

/// Sends one event to every installed sink.
fn emit(c: &Collector, event: &Event) {
    for s in lock(&c.sinks).iter_mut() {
        s.event(event);
    }
}

/// Opens a named span. Returns a no-op handle when both telemetry and
/// the flight recorder are off. The span closes (emitting
/// [`Event::SpanEnd`] with its wall-clock duration and recorded
/// fields, and/or a flight-ring entry) when the handle drops.
#[inline]
#[must_use]
pub fn span(name: &'static str) -> Span {
    let f = flags();
    if f == 0 {
        return Span { inner: None };
    }
    span_slow(name, f)
}

#[cold]
fn span_slow(name: &'static str, f: u32) -> Span {
    let telemetry = f & F_TELEMETRY != 0;
    let start = Instant::now();
    let mut id = 0;
    if telemetry {
        let c = COLLECTOR.get_or_init(Collector::new);
        id = c.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        emit(c, &Event::SpanStart { id, parent, name, at: start - c.epoch, tid: current_tid() });
    }
    if f & F_FLIGHT != 0 {
        flight::note("span_start", name, 0.0, String::new());
    }
    Span { inner: Some(SpanInner { id, name, start, fields: Vec::new(), telemetry }) }
}

struct SpanInner {
    id: u64,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
    /// Whether telemetry was installed when the span opened (the id
    /// and stack entry exist only then).
    telemetry: bool,
}

/// RAII handle for an open span; see [`span`].
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a typed field, reported in the span's end event. No-op
    /// on a disabled span.
    #[inline]
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// Whether this handle is live (telemetry or the flight recorder
    /// was on at creation).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

/// Renders span fields / labels compactly for flight-ring entries.
fn fields_detail(fields: &[(&'static str, FieldValue)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match v {
            FieldValue::U64(v) => {
                let _ = write!(out, "{k}={v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{k}={v}");
            }
            FieldValue::F64(v) => {
                let _ = write!(out, "{k}={v}");
            }
            FieldValue::Str(v) => {
                let _ = write!(out, "{k}={v}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{k}={v}");
            }
        }
    }
    out
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let now = Instant::now();
        let elapsed = now - inner.start;
        if flags() & F_FLIGHT != 0 {
            flight::note(
                "span_end",
                inner.name,
                elapsed.as_secs_f64() * 1e6,
                fields_detail(&inner.fields),
            );
        }
        if !inner.telemetry {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Spans normally close in LIFO order; tolerate out-of-order
            // drops (e.g. a span stored in a struct) by removing by id.
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != inner.id);
            }
        });
        let Some(c) = COLLECTOR.get() else { return };
        emit(
            c,
            &Event::SpanEnd {
                id: inner.id,
                name: inner.name,
                at: now - c.epoch,
                elapsed,
                fields: inner.fields,
                tid: current_tid(),
            },
        );
    }
}

fn series(name: &'static str, labels: &[(&str, &str)]) -> SeriesId {
    if labels.is_empty() {
        SeriesId::plain(name)
    } else {
        SeriesId::with_labels(name, labels)
    }
}

fn labels_detail(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

#[cold]
#[allow(clippy::cast_precision_loss)] // counter deltas stay far below 2^52
fn counter_slow(name: &'static str, labels: &[(&str, &str)], delta: u64, f: u32) {
    if f & F_TELEMETRY != 0 {
        registry::add_counter(series(name, labels), delta);
    }
    if f & F_FLIGHT != 0 {
        flight::note("counter", name, delta as f64, labels_detail(labels));
    }
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    let f = flags();
    if f == 0 {
        return;
    }
    counter_slow(name, &[], delta, f);
}

/// Adds `delta` to the named counter series with the given labels,
/// e.g. `counter_with("cache.hits", &[("kind", "steady")], 1)`.
/// Labels are sorted, so key order at the call site does not split the
/// series. No-op when disabled.
#[inline]
pub fn counter_with(name: &'static str, labels: &[(&str, &str)], delta: u64) {
    let f = flags();
    if f == 0 {
        return;
    }
    counter_slow(name, labels, delta, f);
}

#[cold]
fn record_slow(name: &'static str, labels: &[(&str, &str)], value: f64, f: u32) {
    if f & F_TELEMETRY != 0 {
        registry::record(series(name, labels), value);
    }
    if f & F_FLIGHT != 0 {
        flight::note("value", name, value, labels_detail(labels));
    }
}

/// Records one observation into the named value series (log-bucket
/// histogram). Non-finite values are dropped. No-op when disabled.
#[inline]
pub fn record_value(name: &'static str, value: f64) {
    let f = flags();
    if f == 0 {
        return;
    }
    record_slow(name, &[], value, f);
}

/// [`record_value`] with labels.
#[inline]
pub fn record_value_with(name: &'static str, labels: &[(&str, &str)], value: f64) {
    let f = flags();
    if f == 0 {
        return;
    }
    record_slow(name, labels, value, f);
}

#[cold]
fn gauge_slow(name: &'static str, labels: &[(&str, &str)], value: f64, f: u32) {
    if f & F_TELEMETRY != 0 {
        registry::set_gauge(series(name, labels), value);
    }
    if f & F_FLIGHT != 0 {
        flight::note("value", name, value, labels_detail(labels));
    }
}

/// Sets the named gauge to `value` (last write wins across threads).
/// Pass an empty label slice for an unlabeled gauge. No-op when
/// disabled.
#[inline]
pub fn gauge_set(name: &'static str, labels: &[(&str, &str)], value: f64) {
    let f = flags();
    if f == 0 {
        return;
    }
    gauge_slow(name, labels, value, f);
}

/// Records an incident in the flight recorder (worker panic, degraded
/// solve): marks the run for a post-mortem dump and appends an
/// `incident` entry to the calling thread's ring. No-op unless the
/// recorder is armed.
#[inline]
pub fn incident(name: &'static str, detail: &str) {
    if flags() & F_FLIGHT != 0 {
        flight::note_incident(name, detail);
    }
}

/// Appends a plain `event` entry to the flight recorder without
/// marking an incident — for noteworthy-but-expected moments (a
/// non-converged ladder rung about to fall back) that should show up
/// in a post-mortem but not force one. No-op unless the recorder is
/// armed.
#[inline]
pub fn flight_event(name: &'static str, num: f64, detail: &str) {
    if flags() & F_FLIGHT != 0 {
        flight::note("event", name, num, detail.to_string());
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // snapshots must carry values through exactly
mod tests {
    use super::*;
    use std::sync::{Arc, MutexGuard};
    use std::time::Duration;

    /// The subscriber is process-global, so tests that install it must
    /// not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Capturing sink sharing its event log with the test body.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<Event>>>);

    impl Capture {
        fn events(&self) -> Vec<Event> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Sink for Capture {
        fn event(&mut self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn disabled_by_default_and_after_uninstall() {
        let _guard = serial();
        uninstall();
        flight::disarm();
        assert!(!enabled());
        let mut span = span("ignored");
        assert!(!span.is_enabled());
        span.record("x", 1u64);
        counter("ignored", 1);
        counter_with("ignored", &[("k", "v")], 1);
        record_value("ignored", 1.0);
        gauge_set("ignored", &[], 1.0);
        drop(span);

        // Now install and confirm the earlier calls left no trace.
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        drain();
        let events = cap.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Metrics { counters, gauges, values } => {
                assert!(counters.is_empty(), "{counters:?}");
                assert!(gauges.is_empty());
                assert!(values.is_empty());
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        uninstall();
    }

    #[test]
    fn span_nesting_and_timing_monotonicity() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        {
            let mut outer = span("outer");
            outer.record("depth", 0u64);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        uninstall();

        let events = cap.events();
        let (outer_id, inner_parent) = {
            let mut outer_id = None;
            let mut inner_parent = None;
            for e in &events {
                if let Event::SpanStart { id, parent, name, .. } = e {
                    match *name {
                        "outer" => outer_id = Some(*id),
                        "inner" => inner_parent = *parent,
                        _ => {}
                    }
                }
            }
            (outer_id.unwrap(), inner_parent)
        };
        // Child links to the enclosing span on the same thread.
        assert_eq!(inner_parent, Some(outer_id));

        // Events arrive in causal order: start(outer), start(inner),
        // end(inner), end(outer).
        let order: Vec<(&str, &str)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, .. } => Some(("start", *name)),
                Event::SpanEnd { name, .. } => Some(("end", *name)),
                Event::Metrics { .. } => None,
            })
            .collect();
        assert_eq!(
            order,
            vec![("start", "outer"), ("start", "inner"), ("end", "inner"), ("end", "outer"),]
        );

        // Timing: `at` is non-decreasing across the stream, the outer
        // span contains the inner one, and recorded fields survive.
        let mut last_at = Duration::ZERO;
        let mut outer_elapsed = Duration::ZERO;
        let mut inner_elapsed = Duration::ZERO;
        for e in &events {
            let at = match e {
                Event::SpanStart { at, .. } => *at,
                Event::SpanEnd { at, name, elapsed, fields, .. } => {
                    match *name {
                        "outer" => {
                            outer_elapsed = *elapsed;
                            assert_eq!(fields, &vec![("depth", FieldValue::U64(0))]);
                        }
                        "inner" => inner_elapsed = *elapsed,
                        _ => {}
                    }
                    *at
                }
                Event::Metrics { .. } => continue,
            };
            assert!(at >= last_at, "timestamps must be monotone");
            last_at = at;
        }
        assert!(outer_elapsed >= inner_elapsed + Duration::from_millis(2));
        assert!(inner_elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn counters_and_histograms_aggregate_across_threads() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        counter("work", 5);
        record_value("size", 10.0);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter("work", 1);
                    record_value("size", (i + 1) as f64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drain();
        uninstall();

        let events = cap.events();
        let metrics = events
            .iter()
            .find_map(|e| match e {
                Event::Metrics { counters, values, .. } => Some((counters.clone(), values.clone())),
                _ => None,
            })
            .expect("drain emits metrics");
        assert_eq!(metrics.0, vec![("work".to_string(), 9)]);
        let (name, snap) = &metrics.1[0];
        assert_eq!(name, "size");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 20.0);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 10.0);
    }

    #[test]
    fn labeled_series_render_in_drain_and_scrape() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        counter_with("cache.hits", &[("kind", "steady")], 2);
        counter_with("cache.hits", &[("kind", "mission")], 1);
        counter_with("cache.hits", &[("kind", "steady")], 3);
        gauge_set("pool.size", &[("kind", "steady")], 7.0);
        record_value_with("lat", &[("stage", "solve")], 2.0);

        // Scrape before drain: merged but not reset.
        let live = MetricsRegistry::global().snapshot();
        assert_eq!(live.counter_total("cache.hits"), Some(6));

        drain();
        uninstall();
        let (counters, gauges, values) = cap
            .events()
            .iter()
            .find_map(|e| match e {
                Event::Metrics { counters, gauges, values } => {
                    Some((counters.clone(), gauges.clone(), values.clone()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(
            counters,
            vec![
                ("cache.hits{kind=\"mission\"}".to_string(), 1),
                ("cache.hits{kind=\"steady\"}".to_string(), 5),
            ]
        );
        assert_eq!(gauges, vec![("pool.size{kind=\"steady\"}".to_string(), 7.0)]);
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].0, "lat{stage=\"solve\"}");
        assert_eq!(values[0].1.count, 1);
    }

    #[test]
    fn drain_resets_aggregates_and_install_resets_previous_run() {
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);
        counter("n", 3);
        drain();
        counter("n", 4);
        drain();
        uninstall();
        let totals: Vec<u64> = cap
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Metrics { counters, .. } => Some(counters.iter().map(|(_, v)| *v).sum()),
                _ => None,
            })
            .collect();
        assert_eq!(totals, vec![3, 4]);

        // Leftover (undrained) state must not leak into a fresh install.
        let cap1 = Capture::default();
        install(vec![Box::new(cap1.clone())]);
        counter("leak", 1);
        uninstall(); // no drain: "leak" is still in the aggregate
        let cap2 = Capture::default();
        install(vec![Box::new(cap2.clone())]);
        drain();
        uninstall();
        match &cap2.events()[0] {
            Event::Metrics { counters, .. } => {
                assert!(counters.is_empty(), "{counters:?}")
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn repeated_drains_are_lossless_on_long_lived_threads() {
        // Regression for the daemon scenario: a worker thread that the
        // registry has already seen keeps recording across drains, and
        // every drain reports exactly the inter-drain delta.
        let _guard = serial();
        let cap = Capture::default();
        install(vec![Box::new(cap.clone())]);

        let (to_worker, on_worker) = std::sync::mpsc::channel::<u64>();
        let (from_worker, on_main) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            // Same OS thread across both rounds — its shard is reused.
            while let Ok(delta) = on_worker.recv() {
                counter("lossless", delta);
                from_worker.send(()).unwrap();
            }
        });

        counter("lossless", 1);
        to_worker.send(10).unwrap();
        on_main.recv().unwrap();
        drain(); // round 1: 1 + 10

        counter("lossless", 2);
        to_worker.send(20).unwrap();
        on_main.recv().unwrap();
        drain(); // round 2: 2 + 20 — nothing lost, nothing repeated

        drop(to_worker);
        worker.join().unwrap();
        uninstall();

        let totals: Vec<u64> = cap
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Metrics { counters, .. } => Some(counters.iter().map(|(_, v)| *v).sum()),
                _ => None,
            })
            .collect();
        assert_eq!(totals, vec![11, 22]);
    }

    #[test]
    fn flight_recorder_rings_capture_spans_counters_and_incidents() {
        let _guard = serial();
        uninstall();
        flight::disarm();
        flight::arm();
        {
            let mut s = span("flight.work");
            s.record("block", "CPU Module");
        }
        counter("flight.count", 3);
        record_value("flight.val", 1.5);
        assert!(!flight::has_incident());
        incident("worker_panic", "block CPU Module panicked");
        assert!(flight::has_incident());
        assert!(flight::events_recorded());

        let mut buf = Vec::new();
        let n = flight::dump(&mut buf).unwrap();
        assert!(n >= 4, "expected span/counter/value/incident events, got {n}");
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("flight_recorder").unwrap().as_str(), Some("rascad"));
        assert_eq!(
            header.get("incidents").unwrap().as_array().unwrap()[0].as_str(),
            Some("worker_panic: block CPU Module panicked")
        );
        let mut kinds = Vec::new();
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            kinds.push(v.get("kind").unwrap().as_str().unwrap().to_string());
        }
        for want in ["span_start", "span_end", "counter", "value", "incident"] {
            assert!(kinds.iter().any(|k| k == want), "missing {want}: {kinds:?}");
        }
        // Span fields survive into the ring detail.
        assert!(text.contains("block=CPU Module"), "{text}");
        flight::disarm();
        assert!(!flight::events_recorded());
    }

    #[test]
    fn incident_pins_its_ring_against_later_rotation() {
        let _guard = serial();
        uninstall();
        flight::disarm();
        flight::arm();
        {
            let mut s = span("flight.doomed");
            s.record("block", "Doomed Block");
        }
        incident("worker_panic", "Doomed Block panicked");
        // A degraded run keeps going: rotate the live ring far past
        // capacity so the pre-incident events are long evicted from it.
        for _ in 0..(flight::RING_CAPACITY * 2) {
            counter("flight.churn", 1);
        }

        let mut buf = Vec::new();
        let n = flight::dump(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // The failing span survived via the incident pin...
        assert!(text.contains("flight.doomed"), "pinned span evicted:\n{text}");
        assert!(text.contains("block=Doomed Block"), "{text}");
        // ...and pinned events are not double-reported alongside any
        // still-live ring copies: every (tid, seq) appears once.
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().skip(1) {
            let v = crate::json::parse(line).unwrap();
            let key = (
                v.get("tid").unwrap().as_f64().unwrap() as u64,
                v.get("seq").unwrap().as_f64().unwrap() as u64,
            );
            assert!(seen.insert(key), "duplicate event {key:?}:\n{line}");
        }
        assert_eq!(seen.len(), n);
        flight::disarm();
        assert!(!flight::events_recorded());
    }
}
