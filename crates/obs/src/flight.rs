//! The crash flight recorder: a bounded, always-on ring of the most
//! recent span/counter events, dumped as JSON lines post-mortem.
//!
//! Once [`arm`]ed (the CLI arms it for every invocation), each
//! instrumented thread appends compact [`FlightEvent`]s to its own
//! fixed-capacity ring. When nothing fails the rings just rotate —
//! the happy path costs the caller one branch on the shared flags
//! word plus an uncontended lock on its own ring. When something does
//! fail (worker panic, degraded solve, process exit code ≥ 4) the CLI
//! calls [`dump_to`], which merges every ring time-sorted into a
//! `rascad-flight-<pid>.jsonl` post-mortem.
//!
//! The recorder is independent of the telemetry subscriber: it keeps
//! recording with no sinks installed, and its rings survive
//! `uninstall` so the dump can happen after the session tears down.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Value;
use crate::lock;

/// Events kept per thread. Old events rotate out; the dump is the
/// last-moments view, not a full trace.
pub const RING_CAPACITY: usize = 256;

/// One recorded moment: what happened, when, on which thread.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Microseconds since the recorder was armed.
    pub at_us: u64,
    /// Thread ordinal (0 is the first instrumented thread).
    pub tid: u64,
    /// Per-thread sequence number; `(tid, seq)` uniquely identifies an
    /// event so the dump can merge the live rings with incident pins
    /// without double-reporting.
    pub seq: u64,
    /// Event class: `span_start`, `span_end`, `counter`, `value`,
    /// `incident`.
    pub kind: &'static str,
    /// Span or metric name (incident kind for incidents).
    pub name: &'static str,
    /// Numeric payload: counter delta, recorded value, or span
    /// elapsed microseconds. Zero when not applicable.
    pub num: f64,
    /// Free-form context: rendered span fields, labels, or the
    /// incident description.
    pub detail: String,
}

impl FlightEvent {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("at_us".into(), Value::from(self.at_us)),
            ("tid".into(), Value::from(self.tid)),
            ("seq".into(), Value::from(self.seq)),
            ("kind".into(), Value::from(self.kind)),
            ("name".into(), Value::from(self.name)),
            ("num".into(), Value::Num(self.num)),
            ("detail".into(), Value::Str(self.detail.clone())),
        ])
    }
}

struct Ring {
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
}

impl Ring {
    fn push(&mut self, mut ev: FlightEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == RING_CAPACITY {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
    }
}

struct FlightState {
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    /// Ring contents captured at [`note_incident`] time. The live
    /// rings keep rotating after an incident (a degraded best-effort
    /// run solves dozens more blocks before exit), so the moments
    /// *leading up to* the failure would otherwise be evicted by the
    /// time the dump runs. Pinning the incident thread's ring here
    /// freezes that window.
    pinned: Mutex<Vec<FlightEvent>>,
    incidents: Mutex<Vec<String>>,
    incident: AtomicBool,
    epoch: Instant,
}

static STATE: OnceLock<FlightState> = OnceLock::new();

thread_local! {
    static RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

fn state() -> &'static FlightState {
    STATE.get_or_init(|| FlightState {
        rings: Mutex::new(Vec::new()),
        pinned: Mutex::new(Vec::new()),
        incidents: Mutex::new(Vec::new()),
        incident: AtomicBool::new(false),
        epoch: Instant::now(),
    })
}

/// Arms the recorder: subsequent spans, counters and recorded values
/// are mirrored into the per-thread rings. Idempotent.
pub fn arm() {
    state(); // pin the epoch before the first event
    crate::set_flag(crate::F_FLIGHT);
}

/// Disarms the recorder and clears every ring and incident — used by
/// tests; production dumps happen on armed state at process exit.
pub fn disarm() {
    crate::clear_flag(crate::F_FLIGHT);
    if let Some(s) = STATE.get() {
        for ring in lock(&s.rings).iter() {
            lock(ring).buf.clear();
        }
        lock(&s.pinned).clear();
        lock(&s.incidents).clear();
        s.incident.store(false, Ordering::SeqCst);
    }
}

/// Appends one event to the calling thread's ring.
pub(crate) fn note(kind: &'static str, name: &'static str, num: f64, detail: String) {
    let s = state();
    let at_us = s.epoch.elapsed().as_micros() as u64;
    let ev = FlightEvent { at_us, tid: crate::current_tid(), seq: 0, kind, name, num, detail };
    RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(Ring {
                buf: VecDeque::with_capacity(RING_CAPACITY),
                next_seq: 0,
            }));
            lock(&s.rings).push(Arc::clone(&arc));
            arc
        });
        lock(arc).push(ev);
    });
}

/// Records an incident (worker panic, degraded solve): the event goes
/// into the ring and the incident flag makes the CLI dump the recorder
/// at exit even on a success exit code.
pub(crate) fn note_incident(name: &'static str, detail: &str) {
    let s = state();
    s.incident.store(true, Ordering::SeqCst);
    lock(&s.incidents).push(format!("{name}: {detail}"));
    note("incident", name, 0.0, detail.to_string());
    // Pin this thread's ring as it stands right now: it holds the
    // events that led to the incident (the failing block's span ended
    // on this thread moments ago), and the live ring will rotate them
    // out if the run continues. The dump dedups by (tid, seq).
    RING.with(|slot| {
        if let Some(arc) = slot.borrow().as_ref() {
            lock(&s.pinned).extend(lock(arc).buf.iter().cloned());
        }
    });
}

/// Whether any incident was recorded since arming.
pub fn has_incident() -> bool {
    STATE.get().is_some_and(|s| s.incident.load(Ordering::SeqCst))
}

/// Whether any event at all is sitting in the rings.
pub fn events_recorded() -> bool {
    STATE.get().is_some_and(|s| {
        !lock(&s.pinned).is_empty() || lock(&s.rings).iter().any(|r| !lock(r).buf.is_empty())
    })
}

/// Writes the post-mortem: one header line (pid, incident list), then
/// every ring's events — plus the windows pinned at incident time —
/// merged in time order, one JSON object per line. Returns the number
/// of events written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn dump(mut out: impl Write) -> std::io::Result<usize> {
    let Some(s) = STATE.get() else { return Ok(0) };
    let mut events: Vec<FlightEvent> = Vec::new();
    for ring in lock(&s.rings).iter() {
        events.extend(lock(ring).buf.iter().cloned());
    }
    events.extend(lock(&s.pinned).iter().cloned());
    events.sort_by_key(|e| (e.at_us, e.tid, e.seq));
    events.dedup_by_key(|e| (e.tid, e.seq));
    let header = Value::Obj(vec![
        ("flight_recorder".into(), Value::from("rascad")),
        ("pid".into(), Value::from(u64::from(std::process::id()))),
        ("events".into(), Value::from(events.len() as u64)),
        (
            "incidents".into(),
            Value::Arr(lock(&s.incidents).iter().map(|i| Value::Str(i.clone())).collect()),
        ),
    ]);
    writeln!(out, "{}", header.to_string_compact())?;
    for ev in &events {
        writeln!(out, "{}", ev.to_json().to_string_compact())?;
    }
    out.flush()?;
    Ok(events.len())
}

/// [`dump`] to a file path.
///
/// # Errors
///
/// Propagates file creation and write errors.
pub fn dump_to(path: &Path) -> std::io::Result<usize> {
    let file = std::fs::File::create(path)?;
    dump(std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rotates_at_capacity() {
        let mut ring = Ring { buf: VecDeque::with_capacity(RING_CAPACITY), next_seq: 0 };
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(FlightEvent {
                at_us: i as u64,
                tid: 0,
                seq: 0,
                kind: "counter",
                name: "x",
                num: 1.0,
                detail: String::new(),
            });
        }
        assert_eq!(ring.buf.len(), RING_CAPACITY);
        // The oldest 10 rotated out.
        assert_eq!(ring.buf.front().unwrap().at_us, 10);
        assert_eq!(ring.buf.back().unwrap().at_us, (RING_CAPACITY + 9) as u64);
    }
}
