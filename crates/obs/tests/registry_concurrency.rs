//! Concurrency suite for the sharded [`rascad_obs::MetricsRegistry`].
//!
//! Eight threads hammer the same labeled counter families while the
//! main thread scrapes mid-flight; at the end the final drain must
//! account for every increment exactly once, and a mid-run snapshot
//! must never exceed the eventual total (snapshots are merged views,
//! not resets).

#![allow(clippy::cast_precision_loss)] // loop counters stay far below 2^52

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rascad_obs::MetricsRegistry;

/// The registry is process-global; tests in this binary must not
/// interleave with each other.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const THREADS: u64 = 8;
const INCREMENTS: u64 = 5_000;

#[test]
fn labeled_counters_survive_eight_thread_hammering() {
    let _guard = serial();
    rascad_obs::install(Vec::new()); // registry only, no sinks
    let kinds = ["steady", "mission"];

    let stop_scraping = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop_scraping);
        std::thread::spawn(move || {
            // Scrape continuously while writers run: every observed
            // total must be internally consistent (never above the
            // final figure, monotone per scrape loop not required).
            let mut last_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = MetricsRegistry::global().snapshot();
                if let Some(total) = snap.counter_total("conc.hits") {
                    assert!(total <= THREADS * INCREMENTS, "scrape overshot: {total}");
                    // A snapshot is cumulative, so totals never shrink.
                    assert!(total >= last_seen, "scrape went backwards");
                    last_seen = total;
                }
            }
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let kind = kinds[(t % 2) as usize];
                for i in 0..INCREMENTS {
                    rascad_obs::counter_with("conc.hits", &[("kind", kind)], 1);
                    if i % 64 == 0 {
                        rascad_obs::record_value_with("conc.lat", &[("kind", kind)], i as f64);
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop_scraping.store(true, Ordering::Relaxed);
    scraper.join().unwrap();

    let snap = MetricsRegistry::global().drain();
    rascad_obs::uninstall();

    let per_kind = THREADS / 2 * INCREMENTS;
    let mut seen = 0u64;
    for (id, v) in &snap.counters {
        if id.name == "conc.hits" {
            assert_eq!(*v, per_kind, "series {} lost updates", id.render());
            seen += 1;
        }
    }
    assert_eq!(seen, 2, "expected one series per kind label");
    let recorded: u64 =
        snap.values.iter().filter(|(id, _)| id.name == "conc.lat").map(|(_, h)| h.count()).sum();
    assert_eq!(recorded, THREADS * INCREMENTS.div_ceil(64));
}

#[test]
fn snapshot_equals_final_drain_when_quiescent() {
    let _guard = serial();
    rascad_obs::install(Vec::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for _ in 0..100 {
                    rascad_obs::counter_with(
                        "quiesce.ops",
                        &[("worker", if t % 2 == 0 { "even" } else { "odd" })],
                        1,
                    );
                    rascad_obs::record_value("quiesce.size", t as f64 + 1.0);
                }
                rascad_obs::gauge_set("quiesce.gauge", &[], t as f64);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // With all writers joined, a scrape and the final drain must agree
    // exactly: same series, same totals, same histogram summaries.
    let scrape = MetricsRegistry::global().snapshot();
    let drained = MetricsRegistry::global().drain();
    assert_eq!(scrape.counters, drained.counters);
    assert_eq!(scrape.gauges, drained.gauges);
    assert_eq!(scrape.values.len(), drained.values.len());
    for ((sid, sh), (did, dh)) in scrape.values.iter().zip(drained.values.iter()) {
        assert_eq!(sid, did);
        assert_eq!(sh.snapshot(), dh.snapshot());
    }
    assert_eq!(scrape.counter_total("quiesce.ops"), Some(THREADS * 100));

    // And the drain reset everything: a fresh scrape is empty.
    let after = MetricsRegistry::global().snapshot();
    assert!(after.counters.is_empty(), "{:?}", after.counters);
    assert!(after.values.is_empty());
    rascad_obs::uninstall();
}

#[test]
fn prometheus_page_from_live_scrape_validates() {
    let _guard = serial();
    rascad_obs::install(Vec::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..200 {
                    rascad_obs::counter_with(
                        "core.cache.hits",
                        &[("kind", if t % 2 == 0 { "steady" } else { "mission" })],
                        1,
                    );
                    rascad_obs::record_value("markov.power.residual", 1.0 / f64::from(i + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = MetricsRegistry::global().snapshot();
    rascad_obs::uninstall();

    let page = rascad_obs::prometheus::encode(&snap);
    rascad_obs::prometheus::validate(&page).unwrap_or_else(|e| panic!("{e}\n---\n{page}"));
    assert!(page.contains("rascad_core_cache_hits{kind=\"steady\"} 400"), "{page}");
    assert!(page.contains("rascad_core_cache_hits{kind=\"mission\"} 400"), "{page}");
    assert!(page.contains("rascad_markov_power_residual_count 800"), "{page}");
}
