//! Disabled-path overhead guard.
//!
//! The documented cost of rascad's telemetry when nothing is installed
//! is one relaxed atomic load per call site — no allocation, no locks.
//! This suite pins the "no allocation" half with a counting global
//! allocator: with the subscriber uninstalled and the flight recorder
//! disarmed, a burst of spans, labeled counters, histogram records and
//! gauge sets must allocate exactly zero bytes.
//!
//! Runs as its own integration test binary so the `#[global_allocator]`
//! doesn't leak into the unit-test process.

#![allow(clippy::cast_precision_loss)] // loop counters stay far below 2^52

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    // Make sure nothing is installed or armed, then warm up any
    // lazily-initialized thread locals outside the measured window.
    assert!(!rascad_obs::enabled());
    rascad_obs::flight::disarm();
    rascad_obs::trace::disarm();
    rascad_obs::counter("warmup.counter", 1);

    let before = allocations();
    for i in 0..1_000u64 {
        let mut span = rascad_obs::span("overhead.span");
        span.record("i", i);
        rascad_obs::counter("overhead.counter", 1);
        rascad_obs::counter_with("overhead.labeled", &[("kind", "steady")], 1);
        rascad_obs::record_value("overhead.value", i as f64);
        rascad_obs::record_value_with("overhead.labeled_value", &[("method", "gth")], 0.5);
        rascad_obs::gauge_set("overhead.gauge", &[], i as f64);
        rascad_obs::incident("overhead.incident", "not recorded while disarmed");
        let mut trace = rascad_obs::trace::begin("overhead", "residual", 2);
        trace.step(i as usize, 0.5);
        trace.finish("done");
        drop(span);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled-path telemetry allocated {} time(s); it must cost one \
         relaxed atomic load and nothing else",
        after - before
    );
}
