//! Experiment F4 — paper Figure 4: Markov Model Type 3 (N = 2, K = 1).
//!
//! Regenerates the Type 3 chain, checks its state set against the nine
//! states the paper enumerates, prints every transition, and times
//! generation + both steady-state solvers + the transient solver.

use criterion::{criterion_group, Criterion};
use rascad_bench::{globals, type3_block};
use rascad_core::generator::generate_block;
use rascad_core::measures::{interval_measures, steady_state_measures};
use rascad_markov::SteadyStateMethod;

const PAPER_STATES: [&str; 9] =
    ["Ok", "TF1", "AR1", "SPF", "Latent1", "PF1", "TF2", "PF2", "ServiceError"];

fn print_experiment() {
    println!("=== F4: Markov Model Type 3 (paper Figure 4, N=2, K=1) ===");
    let model = generate_block(&type3_block(), &globals()).expect("reference block");
    let mut ours: Vec<&str> = model.chain.states().iter().map(|s| s.label.as_str()).collect();
    ours.sort_unstable();
    let mut paper = PAPER_STATES.to_vec();
    paper.sort_unstable();
    println!("paper state set : {paper:?}");
    println!("our state set   : {ours:?}");
    println!("match           : {}", if ours == paper { "EXACT" } else { "MISMATCH" });
    println!("transitions ({}):", model.transition_count());
    for t in model.chain.transitions() {
        println!(
            "  {:<14} -> {:<14} rate {:.6e}",
            model.chain.states()[t.from].label,
            model.chain.states()[t.to].label,
            t.rate
        );
    }
    let m = steady_state_measures(&model, SteadyStateMethod::Gth).expect("solvable");
    println!("steady-state availability : {:.9}", m.availability);
    println!("yearly downtime           : {:.3} min", m.yearly_downtime_minutes);
    println!();
}

fn bench(c: &mut Criterion) {
    let g = globals();
    let p = type3_block();
    c.bench_function("type3/generate", |b| {
        b.iter(|| generate_block(std::hint::black_box(&p), &g).unwrap())
    });
    let model = generate_block(&p, &g).unwrap();
    for (name, method) in
        [("type3/solve_gth", SteadyStateMethod::Gth), ("type3/solve_lu", SteadyStateMethod::Lu)]
    {
        c.bench_function(name, |b| {
            b.iter(|| steady_state_measures(std::hint::black_box(&model), method).unwrap())
        });
    }
    c.bench_function("type3/interval_1year", |b| {
        b.iter(|| interval_measures(std::hint::black_box(&model), 8760.0).unwrap())
    });
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
