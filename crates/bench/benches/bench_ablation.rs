//! Experiment T-ABL — ablation of the modeled RAS mechanisms.
//!
//! The paper's Section 2 enumerates the RAS characteristics the
//! generator models: redundancy, fault type, fault detection
//! (latent faults), recovery, logistics, repair, reintegration. This
//! experiment switches each mechanism off on the Data Center System and
//! reports how much of the predicted downtime it accounts for —
//! quantifying why each modeling feature earns its states.

use criterion::{criterion_group, Criterion};
use rascad_core::ablate;
use rascad_core::solve_spec;
use rascad_library::datacenter::data_center;
use rascad_spec::SystemSpec;

fn ablations(base: &SystemSpec) -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("baseline", base.clone()),
        ("perfect diagnosis (Pcd=1)", ablate::perfect_diagnosis(base)),
        ("no latent faults (Plf=0)", ablate::no_latent_faults(base)),
        ("no transient faults", ablate::no_transients(base)),
        ("perfect recovery (no failover cost)", ablate::perfect_recovery(base)),
        ("instant logistics (Tresp=MTTM=0)", ablate::instant_logistics(base)),
        ("redundancy stripped (K=N)", ablate::strip_redundancy(base)),
    ]
}

fn print_experiment() {
    println!("=== T-ABL: mechanism ablations on the Data Center System ===");
    let base = data_center();
    let base_dt = solve_spec(&base).expect("solves").system.yearly_downtime_minutes;
    println!("{:<40} {:>16} {:>12}", "variant", "downtime min/y", "vs baseline");
    for (name, spec) in ablations(&base) {
        let dt = solve_spec(&spec).expect("solves").system.yearly_downtime_minutes;
        println!("{:<40} {:>16.3} {:>11.1}%", name, dt, 100.0 * dt / base_dt);
    }
    println!("(percentages below 100 show how much downtime each mechanism explains;");
    println!(" the stripped-redundancy row shows what the spares buy)");
    println!();
}

fn bench(c: &mut Criterion) {
    let base = data_center();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("solve_all_7_variants", |b| {
        b.iter(|| {
            for (_, spec) in ablations(std::hint::black_box(&base)) {
                solve_spec(&spec).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
