//! Experiment T-PARAM — "graphical output and parametric analysis
//! capability".
//!
//! Sweeps the design parameters a RAS architect actually trades off on
//! the Data Center System model and prints the downtime curves: service
//! response time, probability of correct diagnosis, and system-board
//! MTBF. Times a full sweep.

use criterion::{criterion_group, Criterion};
use rascad_core::sweep::{lin_space, log_space, sweep};
use rascad_library::datacenter::data_center;
use rascad_spec::units::Hours;

fn print_experiment() {
    println!("=== T-PARAM: parametric analysis on the Data Center System ===");
    let base = data_center();

    println!("\ndowntime vs service response time (Server Box internals):");
    println!("{:>12} {:>18}", "Tresp h", "downtime min/y");
    let pts = sweep(&base, &lin_space(0.0, 24.0, 7).expect("valid range"), |s, v| {
        // Apply to every level-2 block of the Server Box.
        let sub = s.root.blocks[0].subdiagram.as_mut().expect("dark block");
        for b in &mut sub.blocks {
            b.params.service_response = Hours(v);
        }
    })
    .expect("sweep solves");
    for p in &pts {
        println!("{:>12.1} {:>18.3}", p.value, p.solution.system.yearly_downtime_minutes);
    }

    println!("\ndowntime vs probability of correct diagnosis (all blocks):");
    println!("{:>12} {:>18}", "Pcd", "downtime min/y");
    let pts = sweep(&base, &lin_space(0.7, 1.0, 7).expect("valid range"), |s, v| {
        s.root.walk_mut(&mut |b| b.params.p_correct_diagnosis = v);
    })
    .expect("sweep solves");
    for p in &pts {
        println!("{:>12.2} {:>18.3}", p.value, p.solution.system.yearly_downtime_minutes);
    }

    println!("\ndowntime vs Operating System MTBF (log sweep):");
    println!("{:>12} {:>18}", "MTBF h", "downtime min/y");
    let pts = sweep(&base, &log_space(1_000.0, 1_000_000.0, 7).expect("valid range"), |s, v| {
        s.root.find_mut("Server Box/Operating System").expect("block exists").params.mtbf =
            Hours(v);
    })
    .expect("sweep solves");
    for p in &pts {
        println!("{:>12.0} {:>18.3}", p.value, p.solution.system.yearly_downtime_minutes);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let base = data_center();
    let mut group = c.benchmark_group("parametric");
    group.sample_size(10);
    group.bench_function("sweep_7_points_os_mtbf", |b| {
        let values = log_space(1_000.0, 1_000_000.0, 7).unwrap();
        b.iter(|| {
            sweep(std::hint::black_box(&base), &values, |s, v| {
                s.root.find_mut("Server Box/Operating System").unwrap().params.mtbf = Hours(v);
            })
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
