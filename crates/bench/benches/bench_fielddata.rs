//! Experiment T-VAL2 — Section 5 field-data validation.
//!
//! The paper compares model predictions with "field data collected from
//! two large operational E10000 servers for 15 months". This bench
//! generates that data synthetically (two simulated E10000 servers, 15
//! months, deterministic repair durations), runs the field-data
//! estimator, and compares against the MG prediction — repeated over
//! many seeds so the sampling spread is visible. A 15-month window on
//! two machines carries few outages, so single-window comparisons are
//! noisy (as real field comparisons are); the seed-averaged estimate
//! must bracket the prediction.

use criterion::{criterion_group, Criterion};
use rascad_core::solve_spec;
use rascad_fielddata::{analyze, compare, OutageLog};
use rascad_library::e10000::e10000;
use rascad_sim::fieldgen::{generate_field_data, FieldDataOptions};
use rascad_sim::stats::Estimate;

fn field_logs(seed: u64) -> Vec<OutageLog> {
    let spec = e10000();
    let records = generate_field_data(
        &spec,
        &FieldDataOptions { months: 15.0, servers: 2, seed, deterministic_repairs: true },
    )
    .expect("library model simulates");
    records
        .iter()
        .map(|r| {
            let events: Vec<(f64, bool)> =
                r.log.events.iter().map(|e| (e.time_hours, e.up)).collect();
            OutageLog::from_events(r.log.horizon_hours, &events)
        })
        .collect()
}

fn print_experiment() {
    println!("=== T-VAL2: E10000 field-data validation (2 servers x 15 months) ===");
    let spec = e10000();
    let predicted = solve_spec(&spec).expect("solves").system;
    println!(
        "model prediction: availability {:.6}, yearly downtime {:.1} min",
        predicted.availability, predicted.yearly_downtime_minutes
    );
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>10}",
        "seed", "outages", "avail", "dt min/y", "in 95%CI"
    );
    let mut avails = Vec::new();
    for seed in 0..20u64 {
        let logs = field_logs(seed * 7919 + 1);
        let field = analyze(&logs);
        let cmp = compare(predicted.availability, &field);
        avails.push(field.availability);
        println!(
            "{:>6} {:>8} {:>12.6} {:>14.1} {:>10}",
            seed,
            field.outages,
            field.availability,
            field.yearly_downtime_minutes,
            if cmp.within_confidence_interval { "yes" } else { "no" }
        );
    }
    let est = Estimate::from_samples(&avails);
    println!(
        "seed-averaged field availability: {:.6} ± {:.2e}; model {:.6} -> {}",
        est.mean,
        est.ci_half_width,
        predicted.availability,
        if (est.mean - predicted.availability).abs() <= 3.0 * est.ci_half_width.max(1e-6) {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        }
    );
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fielddata");
    group.sample_size(10);
    group.bench_function("generate_2x15months", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            field_logs(std::hint::black_box(seed))
        })
    });
    group.bench_function("analyze_logs", |b| {
        let logs = field_logs(42);
        b.iter(|| analyze(std::hint::black_box(&logs)))
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
