//! Experiment F3 — paper Figure 3: Markov Model Type 0.
//!
//! Regenerates the Type 0 chain for the non-redundant reference block,
//! prints its structure (the figure's content) and measures, and times
//! generation + solution.

use criterion::{criterion_group, Criterion};
use rascad_bench::{globals, type0_block};
use rascad_core::generator::generate_block;
use rascad_core::measures::steady_state_measures;
use rascad_markov::SteadyStateMethod;

fn print_experiment() {
    println!("=== F3: Markov Model Type 0 (paper Figure 3) ===");
    let model = generate_block(&type0_block(), &globals()).expect("reference block");
    println!("states ({}):", model.state_count());
    for s in model.chain.states() {
        println!("  {:<14} reward {}", s.label, s.reward);
    }
    println!("transitions ({}):", model.transition_count());
    for t in model.chain.transitions() {
        println!(
            "  {:<14} -> {:<14} rate {:.6e}",
            model.chain.states()[t.from].label,
            model.chain.states()[t.to].label,
            t.rate
        );
    }
    let m = steady_state_measures(&model, SteadyStateMethod::Gth).expect("solvable");
    println!("steady-state availability : {:.9}", m.availability);
    println!("yearly downtime           : {:.2} min", m.yearly_downtime_minutes);
    println!();
}

fn bench(c: &mut Criterion) {
    let g = globals();
    let p = type0_block();
    c.bench_function("type0/generate", |b| {
        b.iter(|| generate_block(std::hint::black_box(&p), &g).unwrap())
    });
    let model = generate_block(&p, &g).unwrap();
    c.bench_function("type0/solve_gth", |b| {
        b.iter(|| {
            steady_state_measures(std::hint::black_box(&model), SteadyStateMethod::Gth).unwrap()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
