//! Experiments F1–F2 — the paper's Figures 1–2 "Data Center System".
//!
//! Solves the full two-level hierarchical model (4 level-1 blocks, the
//! 19-block Server Box subdiagram), prints the per-block availability
//! table and system measures, and times the end-to-end solve.

use criterion::{criterion_group, Criterion};
use rascad_core::{report, solve_spec};
use rascad_library::datacenter::data_center;

fn print_experiment() {
    println!("=== F1-F2: Data Center System (paper Figures 1-2) ===");
    let spec = data_center();
    println!(
        "level-1 blocks: {}; Server Box subdiagram blocks: {}",
        spec.root.len(),
        spec.root.blocks[0].subdiagram.as_ref().expect("dark block").len()
    );
    let sol = solve_spec(&spec).expect("library model solves");
    print!("{}", report::system_report(&spec.root.name, &sol));
    println!();
}

fn bench(c: &mut Criterion) {
    let spec = data_center();
    let mut group = c.benchmark_group("datacenter");
    group.sample_size(20);
    group.bench_function("solve_full_hierarchy", |b| {
        b.iter(|| solve_spec(std::hint::black_box(&spec)).unwrap())
    });
    group.bench_function("parse_dsl", |b| {
        let text = spec.to_dsl();
        b.iter(|| rascad_spec::SystemSpec::from_dsl(std::hint::black_box(&text)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
