//! Experiment T-GEN — Section 4 scaling claims.
//!
//! The paper: "for larger N and K values, more states are needed and
//! these states are all generated automatically" and "the complexity of
//! the model increases from type 1 to type 4". This bench prints the
//! state/transition-count table over (N, K) for all four types and
//! times generation at the largest size.

use criterion::{criterion_group, Criterion};
use rascad_bench::{globals, redundant_block};
use rascad_core::generator::generate_block;
use rascad_spec::Scenario;

const TYPES: [(u8, Scenario, Scenario); 4] = [
    (1, Scenario::Transparent, Scenario::Transparent),
    (2, Scenario::Transparent, Scenario::Nontransparent),
    (3, Scenario::Nontransparent, Scenario::Transparent),
    (4, Scenario::Nontransparent, Scenario::Nontransparent),
];

fn print_experiment() {
    println!("=== T-GEN: generated model size vs (N, K) and type ===");
    println!(
        "{:>4} {:>4} | {:>13} {:>13} {:>13} {:>13}",
        "N", "K", "type1 (s/t)", "type2 (s/t)", "type3 (s/t)", "type4 (s/t)"
    );
    let g = globals();
    for &(n, k) in &[(2u32, 1u32), (3, 1), (3, 2), (4, 2), (8, 4), (16, 8), (32, 16), (32, 1)] {
        let mut row = format!("{n:>4} {k:>4} |");
        for &(_, rec, rep) in &TYPES {
            let model = generate_block(&redundant_block(n, k, rec, rep), &g).expect("valid");
            row.push_str(&format!(" {:>6}/{:<6}", model.state_count(), model.transition_count()));
        }
        println!("{row}");
    }
    println!("(s/t = states/transitions; sizes grow linearly with the margin N-K,");
    println!(" and increase monotonically from type 1 to type 4, as the paper states)");
    println!();
}

fn bench(c: &mut Criterion) {
    let g = globals();
    for &(ty, rec, rep) in &TYPES {
        let p = redundant_block(32, 1, rec, rep);
        c.bench_function(&format!("generation/type{ty}_n32_k1"), |b| {
            b.iter(|| generate_block(std::hint::black_box(&p), &g).unwrap())
        });
    }
    // Generation + solve at a production-typical size.
    let p = redundant_block(8, 4, Scenario::Nontransparent, Scenario::Nontransparent);
    c.bench_function("generation/type4_n8_k4_generate_and_solve", |b| {
        b.iter(|| {
            let m = generate_block(std::hint::black_box(&p), &g).unwrap();
            rascad_core::measures::steady_state_measures(&m, rascad_markov::SteadyStateMethod::Gth)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_experiment();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
