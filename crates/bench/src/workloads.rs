//! Deterministic workload definitions for `rascad bench`.
//!
//! The CLI benchmark harness and its tests must agree on exactly which
//! models each stage exercises, so the fixtures live here next to the
//! Criterion fixtures. Everything is deterministic: fixed specs, fixed
//! seeds, fixed grids.

use rascad_markov::{Ctmc, CtmcBuilder};
use rascad_spec::{BlockParams, Scenario, SystemSpec};

/// Knobs that scale the benchmark suite without changing its shape.
///
/// `quick` keeps every stage comfortably under a second on a laptop so
/// the suite can run as a CI smoke test; `full` is sized for real
/// baseline comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Profile name recorded in the emitted document (`"quick"`/`"full"`).
    pub name: &'static str,
    /// Timed repetitions per stage (the minimum is reported).
    pub iterations: usize,
    /// Horizon for the single-point transient stage, hours.
    pub transient_hours: f64,
    /// Horizon for the exact interval-availability stage, hours.
    pub interval_horizon_hours: f64,
    /// Grid intervals for the exact interval-availability stage.
    pub interval_grid_points: usize,
    /// Number of sweep values in the parametric stage.
    pub sweep_points: usize,
    /// Simulated hours per replication in the simulator stage.
    pub sim_horizon_hours: f64,
    /// Simulator replications.
    pub sim_replications: usize,
    /// States in the large-chain sparse-solve workload (`--large`).
    pub large_sparse_states: usize,
}

impl BenchProfile {
    /// CI-sized profile: every stage well under a second.
    #[must_use]
    pub fn quick() -> Self {
        BenchProfile {
            name: "quick",
            iterations: 2,
            transient_hours: 24.0,
            interval_horizon_hours: 720.0,
            interval_grid_points: 16,
            sweep_points: 4,
            sim_horizon_hours: 2_000.0,
            sim_replications: 2,
            large_sparse_states: 10_000,
        }
    }

    /// Baseline-sized profile for real machine-to-machine comparisons.
    #[must_use]
    pub fn full() -> Self {
        BenchProfile {
            name: "full",
            iterations: 5,
            transient_hours: 8_760.0,
            interval_horizon_hours: 8_760.0,
            interval_grid_points: 64,
            sweep_points: 12,
            sim_horizon_hours: 50_000.0,
            sim_replications: 8,
            large_sparse_states: 100_000,
        }
    }
}

/// One block per paper chain template: Type 0 (no redundancy) plus the
/// four recovery × repair scenario combinations (Types 1–4).
#[must_use]
pub fn chain_type_blocks() -> Vec<(u8, BlockParams)> {
    vec![
        (0, crate::type0_block()),
        (1, crate::redundant_block(2, 1, Scenario::Transparent, Scenario::Transparent)),
        (2, crate::redundant_block(2, 1, Scenario::Transparent, Scenario::Nontransparent)),
        (3, crate::redundant_block(2, 1, Scenario::Nontransparent, Scenario::Transparent)),
        (4, crate::redundant_block(2, 1, Scenario::Nontransparent, Scenario::Nontransparent)),
    ]
}

/// DSL source for the two-level hierarchy workload (parse + roll-up
/// stages). Mirrors the paper's data-center example: a server box with
/// a redundant CPU subdiagram plus mirrored boot drives.
pub const HIERARCHY_DSL: &str = r#"
global {
    reboot_time = 8 min
    mttm = 48 h
    mttrfid = 8 h
    mission_time = 8760 h
}

diagram "Bench Data Center" {
    block "Server Box" {
        quantity = 1
        min_quantity = 1
        mtbf = 10000 h
        transient_fit = 500
        mttr_diagnosis = 30 min
        mttr_corrective = 20 min
        mttr_verification = 10 min
        service_response = 4 h
        p_correct_diagnosis = 0.98
        subdiagram "Server Internals" {
            block "CPU Module" {
                quantity = 4
                min_quantity = 3
                mtbf = 500000 h
                redundancy {
                    p_latent = 0.05
                    mttdlf = 24 h
                    recovery = nontransparent
                    failover_time = 5 min
                    p_spf = 0.01
                    spf_recovery_time = 10 min
                    repair = transparent
                    reintegration_time = 0 min
                }
            }
            block "Memory Bank" {
                quantity = 2
                min_quantity = 1
                mtbf = 800000 h
                redundancy {
                    p_latent = 0.02
                    mttdlf = 24 h
                    recovery = transparent
                    failover_time = 1 min
                    p_spf = 0.01
                    spf_recovery_time = 10 min
                    repair = transparent
                    reintegration_time = 5 min
                }
            }
        }
    }
    block "Boot Drives" {
        quantity = 2
        min_quantity = 1
        mtbf = 300000 h
    }
}
"#;

/// The parsed hierarchy workload.
#[must_use]
pub fn hierarchy_spec() -> SystemSpec {
    SystemSpec::from_dsl(HIERARCHY_DSL).expect("bench hierarchy DSL parses")
}

/// Flat spec for the parametric-sweep stage; the sweep varies the
/// service response time of the `"Node"` block.
#[must_use]
pub fn sweep_spec() -> SystemSpec {
    use rascad_spec::units::Hours;
    use rascad_spec::{Diagram, GlobalParams};
    let mut d = Diagram::new("Bench Cluster");
    d.push(
        BlockParams::new("Node", 2, 1)
            .with_mtbf(Hours(20_000.0))
            .with_redundancy(crate::type3_block().redundancy.expect("type3 has redundancy")),
    );
    d.push(BlockParams::new("Switch", 1, 1).with_mtbf(Hours(150_000.0)));
    SystemSpec::new(d, GlobalParams::default())
}

/// Name of the swept block in [`sweep_spec`].
pub const SWEEP_BLOCK: &str = "Node";

/// Flat ten-block spec for the sweep-scaling workload: one swept
/// `"Target"` block plus nine fixed blocks. Across a sweep only the
/// target's chain changes, so the solve engine's block cache reuses the
/// other nine solutions at every point after the first.
#[must_use]
pub fn sweep_scaling_spec() -> SystemSpec {
    use rascad_spec::units::Hours;
    use rascad_spec::{Diagram, GlobalParams};
    let mut d = Diagram::new("Scaling Cluster");
    d.push(BlockParams::new("Target", 2, 1).with_mtbf(Hours(20_000.0)));
    for i in 1..10 {
        d.push(
            BlockParams::new(format!("Fixed{i}"), 2, 1)
                .with_mtbf(Hours(50_000.0 + 10_000.0 * i as f64)),
        );
    }
    SystemSpec::new(d, GlobalParams::default())
}

/// Name of the swept block in [`sweep_scaling_spec`].
pub const SWEEP_SCALING_BLOCK: &str = "Target";

/// Sweep points used by the sweep-scaling workload regardless of
/// profile: the cache hit-rate acceptance bar (nine cached blocks
/// hitting on 19 of 20 points = 85.5%) is defined at this size.
pub const SWEEP_SCALING_POINTS: usize = 20;

/// A mild (non-stiff) six-state birth–death chain for the
/// power-iteration stage. Rates span a single order of magnitude, so
/// the uniformized DTMC mixes in a few thousand iterations — the
/// template chains are far too stiff for power iteration (that failure
/// mode is what [`rascad_markov::MarkovError::NotConverged`] reports).
#[must_use]
pub fn power_chain() -> Ctmc {
    let mut b = CtmcBuilder::new();
    let ids: Vec<_> =
        (0..6).map(|i| b.add_state(format!("s{i}"), if i < 4 { 1.0 } else { 0.0 })).collect();
    for w in ids.windows(2) {
        b.add_transition(w[0], w[1], 0.6);
        b.add_transition(w[1], w[0], 2.5);
    }
    b.build().expect("bench power chain builds")
}

/// Builds the large-chain workload: a birth–death CTMC with `states`
/// levels (a k-out-of-n pool of `states - 1` units), per-level failure
/// rate `(n - j)·λ` and repair rate `(j + 1)·μ`. Rates span a benign
/// range, so the chain is large but not stiff — the workload isolates
/// state-space size, the one axis the sparse rung exists for.
///
/// # Panics
///
/// Panics if `states < 2`.
#[must_use]
#[allow(clippy::cast_precision_loss)] // state counts stay far below 2^52
pub fn large_birth_death(states: usize) -> Ctmc {
    assert!(states >= 2, "a birth–death chain needs at least 2 states");
    let levels = states - 1;
    let mut b = CtmcBuilder::new();
    for j in 0..=levels {
        b.add_state(format!("L{j}"), if j == 0 { 1.0 } else { 0.0 });
    }
    for j in 0..levels {
        b.add_transition(j, j + 1, (levels - j) as f64 * 1e-5);
        b.add_transition(j + 1, j, (j + 1) as f64 * 0.02);
    }
    b.build().expect("bench large chain builds")
}

/// Units in the thousand-unit k-out-of-n block workload.
pub const LARGE_BLOCK_UNITS: u32 = 1000;

/// Minimum working units in the thousand-unit block workload.
pub const LARGE_BLOCK_MIN: u32 = 900;

/// A thousand-unit k-out-of-n block: the generator's birth–death
/// template collapses its `2^1000` product space to
/// [`LARGE_BLOCK_UNITS`]` + 1` occupancy states, which is what lets the
/// stage solve in milliseconds at all.
#[must_use]
pub fn large_block() -> BlockParams {
    use rascad_spec::units::Hours;
    use rascad_spec::RedundancyParams;
    BlockParams::new("Large Pool", LARGE_BLOCK_UNITS, LARGE_BLOCK_MIN)
        .with_mtbf(Hours(100_000.0))
        .with_redundancy(RedundancyParams::default())
}

/// Units in the brute-force lump-proof workload: small enough that the
/// full `2^n` product space solves directly for cross-validation.
pub const LUMP_PROOF_UNITS: u32 = 8;

/// Minimum working units in the lump-proof workload.
pub const LUMP_PROOF_MIN: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::{solve_block, solve_spec};
    use rascad_markov::SteadyStateMethod;

    #[test]
    fn chain_type_blocks_cover_all_five_templates() {
        let g = crate::globals();
        let blocks = chain_type_blocks();
        assert_eq!(blocks.len(), 5);
        for (expect_type, params) in blocks {
            let (model, _) = solve_block(&params, &g).unwrap();
            assert_eq!(model.model_type, expect_type);
        }
    }

    #[test]
    fn hierarchy_spec_parses_and_solves() {
        let spec = hierarchy_spec();
        let solution = solve_spec(&spec).unwrap();
        assert!(solution.system.availability > 0.99);
        assert!(solution.blocks.len() >= 4);
    }

    #[test]
    fn sweep_spec_solves() {
        let solution = solve_spec(&sweep_spec()).unwrap();
        assert!(solution.system.availability > 0.9);
        assert!(sweep_spec().root.find(SWEEP_BLOCK).is_some());
    }

    #[test]
    fn sweep_scaling_spec_has_ten_blocks_and_solves() {
        let spec = sweep_scaling_spec();
        assert_eq!(spec.root.blocks.len(), 10);
        assert!(spec.root.find(SWEEP_SCALING_BLOCK).is_some());
        let solution = solve_spec(&spec).unwrap();
        assert!(solution.system.availability > 0.9);
    }

    #[test]
    fn power_chain_converges_under_power_iteration() {
        let pi = power_chain().steady_state(SteadyStateMethod::Power).unwrap();
        let gth = power_chain().steady_state(SteadyStateMethod::Gth).unwrap();
        for (a, b) in pi.iter().zip(&gth) {
            assert!((a - b).abs() < 1e-9, "power {a} vs gth {b}");
        }
    }

    #[test]
    fn profiles_are_ordered() {
        let (q, f) = (BenchProfile::quick(), BenchProfile::full());
        assert!(q.iterations <= f.iterations);
        assert!(q.sweep_points < f.sweep_points);
        assert!(q.sim_horizon_hours < f.sim_horizon_hours);
        assert!(q.large_sparse_states < f.large_sparse_states);
    }

    #[test]
    fn large_birth_death_is_irreducible_and_sized() {
        let chain = large_birth_death(1_000);
        assert_eq!(chain.len(), 1_000);
        let pi = chain.steady_state(SteadyStateMethod::Sparse).unwrap();
        let mass: f64 = pi.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_block_expands_to_occupancy_states() {
        let (model, measures) = solve_block(&large_block(), &crate::globals()).unwrap();
        assert_eq!(model.chain.len(), LARGE_BLOCK_UNITS as usize + 1);
        assert!(measures.availability > 0.999);
    }
}
