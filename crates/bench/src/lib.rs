//! Shared fixtures for the benchmark harness.
//!
//! One Criterion bench per paper artifact lives in `benches/`; this
//! library holds the model fixtures they share so benchmark and test
//! code agree on exactly which models each experiment uses.

use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::{BlockParams, GlobalParams, RedundancyParams, Scenario};

pub mod workloads;

/// The non-redundant reference block used by the Type 0 (Figure 3)
/// experiment.
#[must_use]
pub fn type0_block() -> BlockParams {
    BlockParams::new("Type0 Reference", 1, 1)
        .with_mtbf(Hours(10_000.0))
        .with_transient_fit(Fit(2_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(0.95)
}

/// The redundant reference block (N = 2, K = 1, Type 3) used by the
/// Figure 4 experiment — nontransparent recovery, transparent repair,
/// exactly the scenario combination the paper diagrams.
#[must_use]
pub fn type3_block() -> BlockParams {
    redundant_block(2, 1, Scenario::Nontransparent, Scenario::Transparent)
}

/// A parameterized redundant block for the generation-scaling
/// experiment.
#[must_use]
pub fn redundant_block(n: u32, k: u32, recovery: Scenario, repair: Scenario) -> BlockParams {
    BlockParams::new("Redundant Reference", n, k)
        .with_mtbf(Hours(20_000.0))
        .with_transient_fit(Fit(5_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(0.95)
        .with_redundancy(RedundancyParams {
            p_latent_fault: 0.05,
            mttdlf: Hours(24.0),
            recovery,
            failover_time: Minutes(6.0),
            p_spf: 0.02,
            spf_recovery_time: Minutes(12.0),
            repair,
            reintegration_time: Minutes(10.0),
        })
}

/// Globals shared by the reference blocks.
#[must_use]
pub fn globals() -> GlobalParams {
    GlobalParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_block;

    #[test]
    fn fixtures_solve() {
        let g = globals();
        assert!(solve_block(&type0_block(), &g).is_ok());
        let (model, _) = solve_block(&type3_block(), &g).unwrap();
        assert_eq!(model.model_type, 3);
        assert_eq!(model.state_count(), 9);
    }
}
