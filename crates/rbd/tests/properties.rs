//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the RBD substrate.

use proptest::prelude::*;
use rascad_rbd::importance::fussell_vesely;
use rascad_rbd::paths::{esary_proschan_bounds, minimal_cut_sets, minimal_path_sets};
use rascad_rbd::structure;
use rascad_rbd::{ComponentTable, Network, Rbd};

/// Random RBD tree over `n` distinct components (each used exactly once,
/// so independent evaluation is exact).
fn arb_rbd(depth: u32) -> impl Strategy<Value = (ComponentTable, Rbd)> {
    proptest::collection::vec(0.01..0.999f64, 2..7).prop_flat_map(move |avails| {
        let n = avails.len();
        let mut table = ComponentTable::new();
        for (i, a) in avails.iter().enumerate() {
            table.add(format!("c{i}"), *a);
        }
        arb_tree(n, depth).prop_map(move |tree| (table.clone(), tree))
    })
}

fn arb_tree(n: usize, depth: u32) -> BoxedStrategy<Rbd> {
    // Partition component ids 0..n into a random tree.
    fn build(ids: Vec<usize>, depth: u32, rng_seed: u64) -> Rbd {
        if ids.len() == 1 || depth == 0 {
            return if ids.len() == 1 {
                Rbd::component(ids[0])
            } else {
                Rbd::series(ids.into_iter().map(Rbd::component).collect())
            };
        }
        // Deterministic pseudo-random split driven by the seed.
        let mut s = rng_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(ids.len() as u64);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let cut = 1 + next() % (ids.len() - 1);
        let (left, right) = ids.split_at(cut);
        let l = build(left.to_vec(), depth - 1, next() as u64);
        let r = build(right.to_vec(), depth - 1, next() as u64);
        match next() % 3 {
            0 => Rbd::series(vec![l, r]),
            1 => Rbd::parallel(vec![l, r]),
            _ => Rbd::k_of_n(1, vec![l, r]),
        }
    }
    (any::<u64>()).prop_map(move |seed| build((0..n).collect(), depth, seed)).boxed()
}

proptest! {
    /// Availability is always a probability.
    #[test]
    fn availability_in_unit_interval((table, rbd) in arb_rbd(3)) {
        let a = rbd.availability(&table).unwrap();
        prop_assert!((0.0..=1.0).contains(&a), "a={a}");
    }

    /// Improving any component never lowers system availability
    /// (monotone coherent structure).
    #[test]
    fn availability_monotone_in_components((table, rbd) in arb_rbd(3)) {
        let base = rbd.availability(&table).unwrap();
        for id in rbd.components() {
            let mut t = table.clone();
            let a = t.availability(id).unwrap();
            t.set_availability(id, (a + 0.1).min(1.0)).unwrap();
            let improved = rbd.availability(&t).unwrap();
            prop_assert!(improved >= base - 1e-12);
        }
    }

    /// Exact evaluation agrees with exhaustive expectation over the
    /// structure function.
    #[test]
    fn shannon_matches_enumeration((table, rbd) in arb_rbd(3)) {
        let comps = rbd.components();
        prop_assume!(comps.len() <= 8);
        let avail = table.availabilities();
        let mut expect = 0.0;
        for mask in 0u32..(1 << comps.len()) {
            let mut states = vec![false; table.len()];
            let mut p = 1.0;
            for (b, &id) in comps.iter().enumerate() {
                let up = mask & (1 << b) != 0;
                states[id] = up;
                p *= if up { avail[id] } else { 1.0 - avail[id] };
            }
            if structure::evaluate(&rbd, &states).unwrap() {
                expect += p;
            }
        }
        let a = rbd.availability(&table).unwrap();
        prop_assert!((a - expect).abs() < 1e-10, "{a} vs {expect}");
    }

    /// The structure function is monotone and the diagram coherent.
    #[test]
    fn structure_is_monotone((table, rbd) in arb_rbd(3)) {
        let (monotone, _) = structure::coherence(&rbd, &table).unwrap();
        prop_assert!(monotone);
    }

    /// Esary-Proschan bounds bracket the exact availability.
    #[test]
    fn bounds_bracket_exact((table, rbd) in arb_rbd(3)) {
        let exact = rbd.availability(&table).unwrap();
        let paths = minimal_path_sets(&rbd);
        let cuts = minimal_cut_sets(&rbd);
        prop_assume!(!paths.is_empty() && !cuts.is_empty());
        let (lo, hi) = esary_proschan_bounds(&paths, &cuts, table.availabilities());
        prop_assert!(lo <= exact + 1e-9, "lo={lo} exact={exact}");
        prop_assert!(hi >= exact - 1e-9, "hi={hi} exact={exact}");
    }

    /// Network factoring equals brute-force enumeration on random small
    /// graphs.
    #[test]
    fn factoring_matches_enumeration(
        edges in proptest::collection::vec((0usize..5, 0usize..5, 0.05..0.95f64), 1..8)
    ) {
        let nodes = 5;
        let mut net = Network::new(nodes, 0, nodes - 1).unwrap();
        let mut kept = Vec::new();
        for &(u, v, p) in &edges {
            if u != v {
                net.add_edge(u, v, p, "e").unwrap();
                kept.push((u, v, p));
            }
        }
        prop_assume!(!kept.is_empty());
        let fast = net.reliability().unwrap();

        // Brute force over edge states.
        let mut expect = 0.0;
        for mask in 0u32..(1 << kept.len()) {
            let mut parent: Vec<usize> = (0..nodes).collect();
            fn find(p: &mut Vec<usize>, mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            let mut pr = 1.0;
            for (i, &(u, v, p)) in kept.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    pr *= p;
                    let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                    if ru != rv {
                        parent[ru] = rv;
                    }
                } else {
                    pr *= 1.0 - p;
                }
            }
            if find(&mut parent, 0) == find(&mut parent, nodes - 1) {
                expect += pr;
            }
        }
        prop_assert!((fast - expect).abs() < 1e-10, "{fast} vs {expect}");
    }

    /// Fussell-Vesely importances are probabilities and a sole series
    /// component scores 1.
    #[test]
    fn fussell_vesely_in_unit_interval((table, rbd) in arb_rbd(3)) {
        let fv = fussell_vesely(&rbd, &table).unwrap();
        for &(_, v) in &fv {
            prop_assert!((0.0..=1.0).contains(&v), "fv={v}");
        }
    }

    /// Every minimal path set indeed makes the system work, and every
    /// minimal cut set fails it.
    #[test]
    fn path_and_cut_sets_are_sound((table, rbd) in arb_rbd(3)) {
        for p in minimal_path_sets(&rbd) {
            let mut states = vec![false; table.len()];
            for &id in &p {
                states[id] = true;
            }
            prop_assert!(structure::evaluate(&rbd, &states).unwrap());
        }
        for c in minimal_cut_sets(&rbd) {
            let mut states = vec![true; table.len()];
            for &id in &c {
                states[id] = false;
            }
            prop_assert!(!structure::evaluate(&rbd, &states).unwrap());
        }
    }
}
