//! Reliability block diagram (RBD) substrate for the RAScad
//! reproduction.
//!
//! RAScad models each MG *diagram* as a serial RBD of its blocks, and the
//! GMB module lets experts draw arbitrary RBDs. This crate provides:
//!
//! * [`Rbd`] — a combinatorial block-diagram tree (series, parallel,
//!   k-of-n, components), with exact availability evaluation that remains
//!   correct when the same component appears in several places (Shannon
//!   decomposition on repeated components).
//! * [`structure`] — the boolean structure function and monotonicity
//!   checks.
//! * [`paths`] — minimal path sets and minimal cut sets by explicit
//!   enumeration.
//! * [`bdd`] — hand-rolled reduced-ordered BDDs for symbolic
//!   structure-function analysis: minimal cut sets via Rauzy's
//!   minimal-solutions algorithm, cut counting, Birnbaum structural
//!   importance, and variable-symmetry checks, polynomial where
//!   enumeration explodes.
//! * [`factoring`] — two-terminal network reliability via the factoring
//!   (pivotal decomposition) algorithm with series-parallel reductions,
//!   handling non-series-parallel topologies such as the bridge.
//! * [`importance`] — Birnbaum, criticality, and improvement-potential
//!   importance measures.
//! * [`time_dep`] — time-dependent (mission) reliability with
//!   exponential and Weibull component lifetimes.
//!
//! # Example
//!
//! ```
//! use rascad_rbd::{Rbd, ComponentTable};
//!
//! # fn main() -> Result<(), rascad_rbd::RbdError> {
//! let mut table = ComponentTable::new();
//! let cpu = table.add("cpu", 0.999);
//! let psu_a = table.add("psu-a", 0.995);
//! let psu_b = table.add("psu-b", 0.995);
//! // Two redundant PSUs in parallel, in series with the CPU.
//! let system = Rbd::series(vec![
//!     Rbd::component(cpu),
//!     Rbd::parallel(vec![Rbd::component(psu_a), Rbd::component(psu_b)]),
//! ]);
//! let a = system.availability(&table)?;
//! assert!((a - 0.999 * (1.0 - 0.005f64 * 0.005)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod bdd;
pub mod block;
pub mod error;
pub mod factoring;
pub mod importance;
pub mod paths;
pub mod structure;
pub mod time_dep;

pub use block::{ComponentId, ComponentTable, Rbd};
pub use error::RbdError;
pub use factoring::Network;
pub use importance::ImportanceReport;
pub use time_dep::{Lifetime, MissionProfile};
