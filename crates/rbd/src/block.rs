//! RBD trees and exact availability evaluation.

use crate::error::RbdError;

/// Identifier of a component in a [`ComponentTable`].
pub type ComponentId = usize;

/// Table of named components with steady-state availabilities.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentTable {
    names: Vec<String>,
    availabilities: Vec<f64>,
}

impl ComponentTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component and returns its id.
    pub fn add(&mut self, name: impl Into<String>, availability: f64) -> ComponentId {
        self.names.push(name.into());
        self.availabilities.push(availability);
        self.names.len() - 1
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The availability of a component.
    #[must_use]
    pub fn availability(&self, id: ComponentId) -> Option<f64> {
        self.availabilities.get(id).copied()
    }

    /// Replaces the availability of a component (for sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::UnknownComponent`] for a bad id.
    pub fn set_availability(&mut self, id: ComponentId, a: f64) -> Result<(), RbdError> {
        if id >= self.len() {
            return Err(RbdError::UnknownComponent { id, len: self.len() });
        }
        self.availabilities[id] = a;
        Ok(())
    }

    /// The name of a component.
    pub fn name(&self, id: ComponentId) -> Option<&str> {
        self.names.get(id).map(String::as_str)
    }

    /// Validates that all stored availabilities are probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::InvalidProbability`] naming the offender.
    pub fn validate(&self) -> Result<(), RbdError> {
        for (i, &a) in self.availabilities.iter().enumerate() {
            if !(0.0..=1.0).contains(&a) || !a.is_finite() {
                return Err(RbdError::InvalidProbability {
                    what: format!("component {} ({}) availability {a}", i, self.names[i]),
                });
            }
        }
        Ok(())
    }

    /// All availabilities, indexed by id.
    #[must_use]
    pub fn availabilities(&self) -> &[f64] {
        &self.availabilities
    }
}

/// A reliability block diagram, as a tree.
///
/// The same [`ComponentId`] may appear in several leaves; evaluation
/// stays exact by pivoting (Shannon decomposition) on each repeated
/// component.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Rbd {
    /// A basic block backed by a table component.
    Component(ComponentId),
    /// All children must work.
    Series(Vec<Rbd>),
    /// At least one child must work.
    Parallel(Vec<Rbd>),
    /// At least `k` of the children must work.
    KOfN {
        /// Minimum number of working children.
        k: u32,
        /// The children.
        children: Vec<Rbd>,
    },
}

/// Maximum number of *repeated* components the exact evaluator pivots
/// on (cost is `2^count` tree evaluations).
pub const MAX_REPEATED: usize = 24;

impl Rbd {
    /// Leaf constructor.
    #[must_use]
    pub fn component(id: ComponentId) -> Rbd {
        Rbd::Component(id)
    }

    /// Series gate constructor.
    #[must_use]
    pub fn series(children: Vec<Rbd>) -> Rbd {
        Rbd::Series(children)
    }

    /// Parallel gate constructor.
    #[must_use]
    pub fn parallel(children: Vec<Rbd>) -> Rbd {
        Rbd::Parallel(children)
    }

    /// k-of-n gate constructor.
    #[must_use]
    pub fn k_of_n(k: u32, children: Vec<Rbd>) -> Rbd {
        Rbd::KOfN { k, children }
    }

    /// An n-plicated k-of-n over one component (the common homogeneous
    /// redundancy case: `n` copies, `k` required).
    #[must_use]
    pub fn k_of_n_identical(k: u32, n: u32, id: ComponentId) -> Rbd {
        Rbd::KOfN { k, children: (0..n).map(|_| Rbd::Component(id)).collect() }
    }

    /// Validates the tree against a component table.
    ///
    /// # Errors
    ///
    /// * [`RbdError::UnknownComponent`] for out-of-table leaves.
    /// * [`RbdError::EmptyGate`] for a childless gate.
    /// * [`RbdError::InvalidKofN`] when `k` is not in `1..=n`.
    pub fn validate(&self, table: &ComponentTable) -> Result<(), RbdError> {
        match self {
            Rbd::Component(id) => {
                if *id >= table.len() {
                    return Err(RbdError::UnknownComponent { id: *id, len: table.len() });
                }
                Ok(())
            }
            Rbd::Series(ch) | Rbd::Parallel(ch) => {
                if ch.is_empty() {
                    return Err(RbdError::EmptyGate);
                }
                ch.iter().try_for_each(|c| c.validate(table))
            }
            Rbd::KOfN { k, children } => {
                if children.is_empty() {
                    return Err(RbdError::EmptyGate);
                }
                if *k == 0 || *k as usize > children.len() {
                    return Err(RbdError::InvalidKofN { k: *k, n: children.len() });
                }
                children.iter().try_for_each(|c| c.validate(table))
            }
        }
    }

    /// All component ids referenced by the tree, in first-visit order,
    /// deduplicated.
    #[must_use]
    pub fn components(&self) -> Vec<ComponentId> {
        let mut out = Vec::new();
        self.visit_components(&mut |id| {
            if !out.contains(&id) {
                out.push(id);
            }
        });
        out
    }

    /// Component ids that occur in more than one leaf.
    #[must_use]
    pub fn repeated_components(&self) -> Vec<ComponentId> {
        let mut counts: std::collections::BTreeMap<ComponentId, usize> = Default::default();
        self.visit_components(&mut |id| {
            *counts.entry(id).or_default() += 1;
        });
        counts.into_iter().filter(|&(_, c)| c > 1).map(|(id, _)| id).collect()
    }

    fn visit_components(&self, f: &mut impl FnMut(ComponentId)) {
        match self {
            Rbd::Component(id) => f(*id),
            Rbd::Series(ch) | Rbd::Parallel(ch) => ch.iter().for_each(|c| c.visit_components(f)),
            Rbd::KOfN { children, .. } => {
                children.iter().for_each(|c| c.visit_components(f));
            }
        }
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Rbd::Component(_) => 1,
            Rbd::Series(ch) | Rbd::Parallel(ch) => ch.iter().map(Rbd::leaf_count).sum(),
            Rbd::KOfN { children, .. } => children.iter().map(Rbd::leaf_count).sum(),
        }
    }

    /// Exact system availability given a component table.
    ///
    /// If no component repeats, the tree evaluates directly (children of
    /// every gate are independent). Repeated components are handled by
    /// Shannon decomposition: condition each repeated component on
    /// up/down and weight by its availability.
    ///
    /// # Errors
    ///
    /// * Validation errors from [`validate`](Self::validate) and
    ///   [`ComponentTable::validate`].
    /// * [`RbdError::TooManyRepeated`] if more than [`MAX_REPEATED`]
    ///   distinct components repeat.
    pub fn availability(&self, table: &ComponentTable) -> Result<f64, RbdError> {
        self.validate(table)?;
        table.validate()?;
        let repeated = self.repeated_components();
        if repeated.len() > MAX_REPEATED {
            return Err(RbdError::TooManyRepeated { count: repeated.len(), max: MAX_REPEATED });
        }
        let mut span = rascad_obs::span("rbd.availability");
        span.record("leaves", self.leaf_count());
        span.record("repeated", repeated.len());
        rascad_obs::counter("rbd.evaluations", 1);
        let mut avail = table.availabilities().to_vec();
        Ok(self.shannon_eval(&mut avail, &repeated))
    }

    /// Availability assuming every leaf is independent even if ids
    /// repeat (the fast path used when repetition is known to model
    /// physically distinct units of the same type).
    ///
    /// # Errors
    ///
    /// Validation errors as in [`availability`](Self::availability).
    pub fn availability_independent(&self, table: &ComponentTable) -> Result<f64, RbdError> {
        self.validate(table)?;
        table.validate()?;
        rascad_obs::counter("rbd.evaluations", 1);
        Ok(self.eval(table.availabilities()))
    }

    fn shannon_eval(&self, avail: &mut [f64], repeated: &[ComponentId]) -> f64 {
        match repeated.split_first() {
            None => self.eval(avail),
            Some((&id, rest)) => {
                let a = avail[id];
                avail[id] = 1.0;
                let up = self.shannon_eval(avail, rest);
                avail[id] = 0.0;
                let down = self.shannon_eval(avail, rest);
                avail[id] = a;
                a * up + (1.0 - a) * down
            }
        }
    }

    /// Evaluates the tree treating every leaf as independent with the
    /// given per-component probabilities.
    pub(crate) fn eval(&self, avail: &[f64]) -> f64 {
        match self {
            Rbd::Component(id) => avail[*id],
            Rbd::Series(ch) => ch.iter().map(|c| c.eval(avail)).product(),
            Rbd::Parallel(ch) => 1.0 - ch.iter().map(|c| 1.0 - c.eval(avail)).product::<f64>(),
            Rbd::KOfN { k, children } => {
                // DP over the number of working children (children may be
                // heterogeneous subtrees).
                let probs: Vec<f64> = children.iter().map(|c| c.eval(avail)).collect();
                k_of_n_probability(*k as usize, &probs)
            }
        }
    }
}

/// Probability that at least `k` of the independent events with
/// probabilities `probs` occur (dynamic program, exact).
#[must_use]
pub fn k_of_n_probability(k: usize, probs: &[f64]) -> f64 {
    let n = probs.len();
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // dist[j] = P(exactly j working so far).
    let mut dist = vec![0.0; n + 1];
    dist[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        for j in (0..=i + 1).rev() {
            let stay = if j <= i { dist[j] * (1.0 - p) } else { 0.0 };
            let come = if j > 0 { dist[j - 1] * p } else { 0.0 };
            dist[j] = stay + come;
        }
    }
    dist[k..].iter().sum()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    fn table3() -> (ComponentTable, ComponentId, ComponentId, ComponentId) {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let b = t.add("b", 0.8);
        let c = t.add("c", 0.7);
        (t, a, b, c)
    }

    #[test]
    fn series_is_product() {
        let (t, a, b, c) = table3();
        let r = Rbd::series(vec![Rbd::component(a), Rbd::component(b), Rbd::component(c)]);
        assert!((r.availability(&t).unwrap() - 0.9 * 0.8 * 0.7).abs() < 1e-15);
    }

    #[test]
    fn parallel_is_one_minus_product_of_complements() {
        let (t, a, b, _) = table3();
        let r = Rbd::parallel(vec![Rbd::component(a), Rbd::component(b)]);
        assert!((r.availability(&t).unwrap() - (1.0 - 0.1 * 0.2)).abs() < 1e-15);
    }

    #[test]
    fn k_of_n_two_of_three() {
        let (t, a, b, c) = table3();
        let r = Rbd::k_of_n(2, vec![Rbd::component(a), Rbd::component(b), Rbd::component(c)]);
        // P(>=2 of {0.9, 0.8, 0.7}).
        let expect = 0.9 * 0.8 * 0.7 + 0.9 * 0.8 * 0.3 + 0.9 * 0.2 * 0.7 + 0.1 * 0.8 * 0.7;
        assert!((r.availability(&t).unwrap() - expect).abs() < 1e-15);
    }

    #[test]
    fn k_of_n_identical_matches_binomial() {
        let mut t = ComponentTable::new();
        let c = t.add("disk", 0.95);
        let r = Rbd::k_of_n_identical(3, 5, c);
        // Repeated ids are *independent units of the same type* only via
        // availability_independent; binomial closed form.
        let p: f64 = 0.95;
        let q = 1.0 - p;
        let expect: f64 = (3..=5)
            .map(|k| {
                let comb = match k {
                    3 => 10.0,
                    4 => 5.0,
                    _ => 1.0,
                };
                comb * p.powi(k) * q.powi(5 - k)
            })
            .sum();
        assert!((r.availability_independent(&t).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn shared_component_is_not_double_counted() {
        // Parallel of (a series x) and (a series y): exact availability
        // pivots on the shared a.
        let mut t = ComponentTable::new();
        let a = t.add("shared", 0.9);
        let x = t.add("x", 0.8);
        let y = t.add("y", 0.7);
        let r = Rbd::parallel(vec![
            Rbd::series(vec![Rbd::component(a), Rbd::component(x)]),
            Rbd::series(vec![Rbd::component(a), Rbd::component(y)]),
        ]);
        // Exact: a * (1 - 0.2*0.3) = 0.9 * 0.94 = 0.846.
        let exact = r.availability(&t).unwrap();
        assert!((exact - 0.846).abs() < 1e-15);
        // Naive independent evaluation would give a different (wrong)
        // number: 1 - (1-0.72)(1-0.63) = 0.8964.
        let naive = r.availability_independent(&t).unwrap();
        assert!((naive - 0.8964).abs() < 1e-15);
        assert!(exact < naive);
    }

    #[test]
    fn parallel_of_same_component_twice_is_that_component() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.6);
        let r = Rbd::parallel(vec![Rbd::component(a), Rbd::component(a)]);
        // Exactly the same physical unit: availability is just 0.6.
        assert!((r.availability(&t).unwrap() - 0.6).abs() < 1e-15);
    }

    #[test]
    fn validation_errors() {
        let (t, a, _, _) = table3();
        assert!(matches!(
            Rbd::component(99).availability(&t),
            Err(RbdError::UnknownComponent { id: 99, .. })
        ));
        assert!(matches!(Rbd::series(vec![]).availability(&t), Err(RbdError::EmptyGate)));
        assert!(matches!(
            Rbd::k_of_n(0, vec![Rbd::component(a)]).availability(&t),
            Err(RbdError::InvalidKofN { .. })
        ));
        assert!(matches!(
            Rbd::k_of_n(3, vec![Rbd::component(a)]).availability(&t),
            Err(RbdError::InvalidKofN { .. })
        ));
        let mut bad = ComponentTable::new();
        bad.add("bad", 1.5);
        assert!(matches!(
            Rbd::component(0).availability(&bad),
            Err(RbdError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn component_enumeration() {
        let (_, a, b, _) = table3();
        let r = Rbd::series(vec![
            Rbd::component(b),
            Rbd::parallel(vec![Rbd::component(a), Rbd::component(b)]),
        ]);
        assert_eq!(r.components(), vec![b, a]);
        assert_eq!(r.repeated_components(), vec![b]);
        assert_eq!(r.leaf_count(), 3);
    }

    #[test]
    fn k_of_n_probability_edges() {
        assert_eq!(k_of_n_probability(0, &[0.5]), 1.0);
        assert_eq!(k_of_n_probability(2, &[0.5]), 0.0);
        assert!((k_of_n_probability(1, &[0.5, 0.5]) - 0.75).abs() < 1e-15);
        assert!((k_of_n_probability(2, &[0.5, 0.5]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn set_availability_updates_eval() {
        let (mut t, a, b, _) = table3();
        let r = Rbd::series(vec![Rbd::component(a), Rbd::component(b)]);
        t.set_availability(a, 1.0).unwrap();
        assert!((r.availability(&t).unwrap() - 0.8).abs() < 1e-15);
        assert!(t.set_availability(42, 0.5).is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let (t, a, b, c) = table3();
        let r = Rbd::k_of_n(2, vec![Rbd::component(a), Rbd::component(b), Rbd::component(c)]);
        let json = serde_json::to_string(&(&t, &r)).unwrap();
        let (t2, r2): (ComponentTable, Rbd) = serde_json::from_str(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(r, r2);
    }
}
