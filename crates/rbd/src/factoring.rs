//! Two-terminal network reliability by factoring.
//!
//! Not every RAS architecture is series-parallel (the classic
//! counterexample is the bridge). This module models a system as an
//! undirected network whose *edges* are components and computes the
//! probability that the source and sink terminals stay connected, using
//! pivotal decomposition ("factoring"):
//!
//! `R(G) = p_e · R(G / e) + (1 − p_e) · R(G − e)`
//!
//! with series/parallel reductions and degree-based cleanup applied at
//! every step.

use crate::error::RbdError;

/// An undirected two-terminal network whose edges carry availabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    node_count: usize,
    source: usize,
    sink: usize,
    /// `(u, v, availability, label)` per edge.
    edges: Vec<(usize, usize, f64, String)>,
}

impl Network {
    /// Creates a network with `node_count` nodes and the given terminal
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::InvalidNetwork`] if a terminal is out of range
    /// or the terminals coincide.
    pub fn new(node_count: usize, source: usize, sink: usize) -> Result<Self, RbdError> {
        if source >= node_count || sink >= node_count {
            return Err(RbdError::InvalidNetwork {
                what: format!("terminal out of range (nodes: {node_count})"),
            });
        }
        if source == sink {
            return Err(RbdError::InvalidNetwork { what: "source equals sink".into() });
        }
        Ok(Network { node_count, source, sink, edges: Vec::new() })
    }

    /// Adds an edge component between `u` and `v` with the given
    /// availability.
    ///
    /// # Errors
    ///
    /// * [`RbdError::InvalidNetwork`] for bad endpoints or self-loops.
    /// * [`RbdError::InvalidProbability`] if `availability` is not in
    ///   `[0, 1]`.
    pub fn add_edge(
        &mut self,
        u: usize,
        v: usize,
        availability: f64,
        label: impl Into<String>,
    ) -> Result<(), RbdError> {
        if u >= self.node_count || v >= self.node_count {
            return Err(RbdError::InvalidNetwork { what: format!("edge ({u},{v}) out of range") });
        }
        if u == v {
            return Err(RbdError::InvalidNetwork { what: format!("self-loop on node {u}") });
        }
        if !(0.0..=1.0).contains(&availability) || !availability.is_finite() {
            return Err(RbdError::InvalidProbability {
                what: format!("edge ({u},{v}) availability {availability}"),
            });
        }
        self.edges.push((u, v, availability, label.into()));
        Ok(())
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Computes two-terminal reliability (probability source and sink
    /// are connected by working edges).
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::InvalidNetwork`] if the network has more than
    /// 32 edges (the factoring recursion would be too large).
    pub fn reliability(&self) -> Result<f64, RbdError> {
        if self.edges.len() > 32 {
            return Err(RbdError::InvalidNetwork {
                what: format!("factoring limited to 32 edges, got {}", self.edges.len()),
            });
        }
        // Union-find over nodes under edge contraction; recursion clones.
        let g = Graph {
            parent: (0..self.node_count).collect(),
            edges: self.edges.iter().map(|&(u, v, p, _)| (u, v, p)).collect(),
            source: self.source,
            sink: self.sink,
        };
        Ok(factor(g))
    }
}

#[derive(Clone)]
struct Graph {
    parent: Vec<usize>,
    edges: Vec<(usize, usize, f64)>,
    source: usize,
    sink: usize,
}

impl Graph {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn factor(mut g: Graph) -> f64 {
    // Normalize endpoints to representatives; drop collapsed self-loops;
    // merge parallel edges.
    let s = g.find(g.source);
    let t = g.find(g.sink);
    if s == t {
        return 1.0;
    }
    let mut merged: std::collections::HashMap<(usize, usize), f64> = Default::default();
    let edges = std::mem::take(&mut g.edges);
    for (u, v, p) in edges {
        let (mut ru, mut rv) = (g.find(u), g.find(v));
        if ru == rv {
            continue;
        }
        if ru > rv {
            std::mem::swap(&mut ru, &mut rv);
        }
        // Parallel merge: 1-(1-p1)(1-p2).
        let ent = merged.entry((ru, rv)).or_insert(0.0);
        *ent = 1.0 - (1.0 - *ent) * (1.0 - p);
    }
    g.edges = merged.into_iter().map(|((u, v), p)| (u, v, p)).collect();

    // Connectivity check: if sink unreachable even with all edges, R = 0.
    if !reachable(&mut g, s, t) {
        return 0.0;
    }

    // Series reduction: a degree-2 non-terminal node with two distinct
    // neighbours collapses its two edges into one with p1*p2.
    loop {
        let mut deg: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (i, &(u, v, _)) in g.edges.iter().enumerate() {
            deg.entry(u).or_default().push(i);
            deg.entry(v).or_default().push(i);
        }
        let mut reduced = false;
        for (&node, idxs) in &deg {
            if node == s || node == t || idxs.len() != 2 {
                continue;
            }
            let (i, j) = (idxs[0], idxs[1]);
            let (u1, v1, p1) = g.edges[i];
            let (u2, v2, p2) = g.edges[j];
            let a = if u1 == node { v1 } else { u1 };
            let b = if u2 == node { v2 } else { u2 };
            if a == b {
                continue; // would create a parallel pair; handled on recursion
            }
            // Remove edges i and j (larger index first), add (a, b, p1*p2).
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            g.edges.swap_remove(hi);
            g.edges.swap_remove(lo);
            g.edges.push((a, b, p1 * p2));
            reduced = true;
            break;
        }
        if !reduced {
            break;
        }
    }

    // Base cases after reduction.
    if g.edges.len() == 1 {
        let (u, v, p) = g.edges[0];
        let connects = (g.find(u) == s && g.find(v) == t) || (g.find(u) == t && g.find(v) == s);
        return if connects { p } else { 0.0 };
    }
    if g.edges.is_empty() {
        return 0.0;
    }

    // Pivot on the first edge: contract (working) or delete (failed).
    let (u, v, p) = g.edges[0];
    let rest: Vec<(usize, usize, f64)> = g.edges[1..].to_vec();

    let mut contracted =
        Graph { parent: g.parent.clone(), edges: rest.clone(), source: s, sink: t };
    contracted.union(u, v);

    let deleted = Graph { parent: g.parent.clone(), edges: rest, source: s, sink: t };

    p * factor(contracted) + (1.0 - p) * factor(deleted)
}

fn reachable(g: &mut Graph, s: usize, t: usize) -> bool {
    let mut adj: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    let edges = g.edges.clone();
    for (u, v, _) in edges {
        let (ru, rv) = (g.find(u), g.find(v));
        adj.entry(ru).or_default().push(rv);
        adj.entry(rv).or_default().push(ru);
    }
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![s];
    seen.insert(s);
    while let Some(x) = stack.pop() {
        if x == t {
            return true;
        }
        if let Some(ns) = adj.get(&x) {
            for &n in ns {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
    }
    false
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut n = Network::new(2, 0, 1).unwrap();
        n.add_edge(0, 1, 0.9, "e").unwrap();
        assert!((n.reliability().unwrap() - 0.9).abs() < 1e-15);
    }

    #[test]
    fn series_chain() {
        let mut n = Network::new(3, 0, 2).unwrap();
        n.add_edge(0, 1, 0.9, "a").unwrap();
        n.add_edge(1, 2, 0.8, "b").unwrap();
        assert!((n.reliability().unwrap() - 0.72).abs() < 1e-15);
    }

    #[test]
    fn parallel_pair() {
        let mut n = Network::new(2, 0, 1).unwrap();
        n.add_edge(0, 1, 0.9, "a").unwrap();
        n.add_edge(0, 1, 0.8, "b").unwrap();
        assert!((n.reliability().unwrap() - (1.0 - 0.1 * 0.2)).abs() < 1e-15);
    }

    #[test]
    fn bridge_network_closed_form() {
        // Classic 5-edge bridge, all edges p. Closed form:
        // R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
        let p = 0.9;
        let mut n = Network::new(4, 0, 3).unwrap();
        n.add_edge(0, 1, p, "a").unwrap();
        n.add_edge(0, 2, p, "b").unwrap();
        n.add_edge(1, 2, p, "bridge").unwrap();
        n.add_edge(1, 3, p, "c").unwrap();
        n.add_edge(2, 3, p, "d").unwrap();
        let expect = 2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
        assert!(
            (n.reliability().unwrap() - expect).abs() < 1e-12,
            "{} vs {expect}",
            n.reliability().unwrap()
        );
    }

    #[test]
    fn heterogeneous_bridge_vs_enumeration() {
        let probs = [0.9, 0.85, 0.7, 0.95, 0.8];
        let edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)];
        let mut n = Network::new(4, 0, 3).unwrap();
        for (i, &(u, v)) in edges.iter().enumerate() {
            n.add_edge(u, v, probs[i], format!("e{i}")).unwrap();
        }
        // Brute-force enumeration over 2^5 edge states.
        let mut expect = 0.0;
        for mask in 0u32..32 {
            let mut pr = 1.0;
            let mut parent: Vec<usize> = (0..4).collect();
            fn find(p: &mut [usize], mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            for (i, &(u, v)) in edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    pr *= probs[i];
                    let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                    if ru != rv {
                        parent[ru] = rv;
                    }
                } else {
                    pr *= 1.0 - probs[i];
                }
            }
            if find(&mut parent, 0) == find(&mut parent, 3) {
                expect += pr;
            }
        }
        assert!((n.reliability().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn disconnected_network_is_zero() {
        let mut n = Network::new(4, 0, 3).unwrap();
        n.add_edge(0, 1, 0.9, "a").unwrap();
        n.add_edge(2, 3, 0.9, "b").unwrap();
        assert_eq!(n.reliability().unwrap(), 0.0);
    }

    #[test]
    fn dangling_edges_are_irrelevant() {
        let mut n = Network::new(4, 0, 1).unwrap();
        n.add_edge(0, 1, 0.75, "main").unwrap();
        n.add_edge(1, 2, 0.5, "dangle1").unwrap();
        n.add_edge(2, 3, 0.5, "dangle2").unwrap();
        assert!((n.reliability().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn construction_errors() {
        assert!(Network::new(2, 0, 0).is_err());
        assert!(Network::new(2, 0, 5).is_err());
        let mut n = Network::new(2, 0, 1).unwrap();
        assert!(n.add_edge(0, 0, 0.5, "loop").is_err());
        assert!(n.add_edge(0, 5, 0.5, "range").is_err());
        assert!(n.add_edge(0, 1, 1.5, "prob").is_err());
    }

    #[test]
    fn perfect_and_failed_edges() {
        let mut n = Network::new(3, 0, 2).unwrap();
        n.add_edge(0, 1, 1.0, "a").unwrap();
        n.add_edge(1, 2, 0.0, "b").unwrap();
        assert_eq!(n.reliability().unwrap(), 0.0);
        let mut n2 = Network::new(3, 0, 2).unwrap();
        n2.add_edge(0, 1, 1.0, "a").unwrap();
        n2.add_edge(1, 2, 1.0, "b").unwrap();
        assert_eq!(n2.reliability().unwrap(), 1.0);
    }
}
