//! Component importance measures.
//!
//! Importance measures rank components by how much they influence system
//! availability — the quantitative backing for the RAS-architecture
//! trade-off studies RAScad is built for.

use crate::block::{ComponentId, ComponentTable, Rbd};
use crate::error::RbdError;

/// Importance of a single component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentImportance {
    /// The component.
    pub id: ComponentId,
    /// Component name.
    pub name: String,
    /// Birnbaum importance: `∂A_sys/∂A_i = A(1_i) − A(0_i)`.
    pub birnbaum: f64,
    /// Improvement potential: `A(1_i) − A_sys` (gain from a perfect
    /// component).
    pub improvement_potential: f64,
    /// Criticality importance: `birnbaum · (1 − A_i) / (1 − A_sys)`
    /// (probability the component is the cause of system failure, given
    /// the system failed).
    pub criticality: f64,
}

/// Importance ranking for all components of a diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceReport {
    /// System availability with the nominal component values.
    pub system_availability: f64,
    /// Per-component importances, sorted by Birnbaum importance
    /// (descending).
    pub components: Vec<ComponentImportance>,
}

/// Fussell–Vesely importance: the probability that at least one minimal
/// cut set *containing component `i`* is failed, given the system is
/// failed — the classic "share of system failure this component
/// participates in". Computed from minimal cut sets with the
/// rare-event (inclusion-exclusion first-order) approximation
/// `P(∪ cuts_i) ≈ Σ P(cut)`, capped at 1.
///
/// # Errors
///
/// Propagates evaluation errors from [`Rbd::availability`].
pub fn fussell_vesely(
    rbd: &Rbd,
    table: &ComponentTable,
) -> Result<Vec<(ComponentId, f64)>, RbdError> {
    let system_unavailability = 1.0 - rbd.availability(table)?;
    let cuts = crate::paths::minimal_cut_sets(rbd);
    let avail = table.availabilities();
    let mut out = Vec::new();
    for id in rbd.components() {
        let share: f64 = cuts
            .iter()
            .filter(|c| c.contains(&id))
            .map(|c| c.iter().map(|&j| 1.0 - avail[j]).product::<f64>())
            .sum();
        let fv = if system_unavailability > 0.0 {
            (share / system_unavailability).min(1.0)
        } else {
            0.0
        };
        out.push((id, fv));
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(out)
}

/// Computes the importance report for a diagram.
///
/// # Errors
///
/// Propagates evaluation errors from [`Rbd::availability`].
pub fn importance(rbd: &Rbd, table: &ComponentTable) -> Result<ImportanceReport, RbdError> {
    let base = rbd.availability(table)?;
    let mut comps = Vec::new();
    for id in rbd.components() {
        let mut t_up = table.clone();
        t_up.set_availability(id, 1.0)?;
        let a_up = rbd.availability(&t_up)?;
        let mut t_down = table.clone();
        t_down.set_availability(id, 0.0)?;
        let a_down = rbd.availability(&t_down)?;
        let birnbaum = a_up - a_down;
        let a_i = table.availability(id).expect("validated id");
        let criticality = if base < 1.0 { birnbaum * (1.0 - a_i) / (1.0 - base) } else { 0.0 };
        comps.push(ComponentImportance {
            id,
            name: table.name(id).unwrap_or("").to_string(),
            birnbaum,
            improvement_potential: a_up - base,
            criticality,
        });
    }
    comps.sort_by(|a, b| b.birnbaum.total_cmp(&a.birnbaum));
    Ok(ImportanceReport { system_availability: base, components: comps })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn series_importance_favors_weakest_partner() {
        // In a 2-series, Birnbaum importance of i is the availability of
        // the *other* component, so the component paired with the better
        // partner ranks higher.
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.99);
        let b = t.add("b", 0.90);
        let r = Rbd::series(vec![Rbd::component(a), Rbd::component(b)]);
        let rep = importance(&r, &t).unwrap();
        let find = |id| rep.components.iter().find(|c| c.id == id).unwrap();
        assert!((find(a).birnbaum - 0.90).abs() < 1e-12);
        assert!((find(b).birnbaum - 0.99).abs() < 1e-12);
        assert_eq!(rep.components[0].id, b);
    }

    #[test]
    fn parallel_importance() {
        // Birnbaum of i in a 2-parallel is 1 - A_other.
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let b = t.add("b", 0.8);
        let r = Rbd::parallel(vec![Rbd::component(a), Rbd::component(b)]);
        let rep = importance(&r, &t).unwrap();
        let find = |id| rep.components.iter().find(|c| c.id == id).unwrap();
        assert!((find(a).birnbaum - 0.2).abs() < 1e-12);
        assert!((find(b).birnbaum - 0.1).abs() < 1e-12);
    }

    #[test]
    fn improvement_potential_and_criticality() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let r = Rbd::component(a);
        let rep = importance(&r, &t).unwrap();
        let c = &rep.components[0];
        assert!((c.improvement_potential - 0.1).abs() < 1e-12);
        // Single component: it is always the cause of failure.
        assert!((c.criticality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_system_criticality_is_zero() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 1.0);
        let rep = importance(&Rbd::component(a), &t).unwrap();
        assert_eq!(rep.components[0].criticality, 0.0);
    }

    #[test]
    fn fussell_vesely_series_component_dominates() {
        // a in series with (b parallel c): a appears in the singleton
        // cut {a}, which dominates when b,c are redundant.
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.99);
        let b = t.add("b", 0.99);
        let c = t.add("c", 0.99);
        let r = Rbd::series(vec![
            Rbd::component(a),
            Rbd::parallel(vec![Rbd::component(b), Rbd::component(c)]),
        ]);
        let fv = fussell_vesely(&r, &t).unwrap();
        assert_eq!(fv[0].0, a);
        assert!(fv[0].1 > 0.9, "{}", fv[0].1);
        // b and c only appear in the two-component cut.
        let fb = fv.iter().find(|&&(id, _)| id == b).unwrap().1;
        assert!(fb < 0.05, "{fb}");
    }

    #[test]
    fn fussell_vesely_single_component_is_one() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let fv = fussell_vesely(&Rbd::component(a), &t).unwrap();
        assert!((fv[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fussell_vesely_perfect_system_is_zero() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 1.0);
        let fv = fussell_vesely(&Rbd::component(a), &t).unwrap();
        assert_eq!(fv[0].1, 0.0);
    }

    #[test]
    fn birnbaum_matches_finite_difference() {
        let mut t = ComponentTable::new();
        let ids: Vec<_> = (0..4).map(|i| t.add(format!("c{i}"), 0.8 + 0.04 * i as f64)).collect();
        let r = Rbd::series(vec![
            Rbd::component(ids[0]),
            Rbd::k_of_n(
                2,
                vec![Rbd::component(ids[1]), Rbd::component(ids[2]), Rbd::component(ids[3])],
            ),
        ]);
        let rep = importance(&r, &t).unwrap();
        let h = 1e-7;
        for c in &rep.components {
            let mut tp = t.clone();
            tp.set_availability(c.id, t.availability(c.id).unwrap() + h).unwrap();
            let fd = (r.availability(&tp).unwrap() - rep.system_availability) / h;
            assert!((c.birnbaum - fd).abs() < 1e-5, "{}: {} vs {fd}", c.name, c.birnbaum);
        }
    }
}
