//! Hand-rolled reduced-ordered binary decision diagrams (ROBDDs).
//!
//! The Tier C structural analyzer compiles each diagram's
//! series/parallel/k-out-of-n hierarchy into a boolean *failure*
//! function over per-unit variables and reasons about it symbolically:
//! minimal cut sets (via Rauzy's minimal-solutions algorithm), cut
//! counts by order, Birnbaum structural importance, and symmetry
//! checks. Explicit enumeration ([`crate::paths`]) is exponential in
//! the diagram size; the BDD stays polynomial for the serial
//! k-of-n hierarchies MG generates (an `at least m of n` threshold
//! occupies `O(n·m)` nodes), so a 64-way processor bank with a
//! four-unit margin is analyzed in microseconds instead of enumerating
//! the C(64,5) ≈ 7.6 million order-5 cut combinations.
//!
//! Conventions:
//!
//! * Variables are `usize` indices; the variable order is the index
//!   order (lower index = nearer the root).
//! * Node 0 is the constant FALSE, node 1 the constant TRUE.
//! * Functions built from [`Bdd::var`], [`Bdd::or`], [`Bdd::and`] and
//!   [`Bdd::at_least_of`] are *monotone increasing*; the
//!   minimal-solutions operators assume (and the analyzer only builds)
//!   monotone functions.
//! * A solution/path is identified with its set of *positive*
//!   literals: variables skipped or sent through a `lo` edge are
//!   absent from the set. For a monotone function the positive sets of
//!   the minimal-solutions BDD's 1-paths are exactly the minimal cut
//!   sets of the corresponding structure.

use std::collections::{BTreeSet, HashMap};

/// Index of a node in the manager's node table.
pub type NodeId = usize;

/// The constant-false terminal.
pub const FALSE: NodeId = 0;
/// The constant-true terminal.
pub const TRUE: NodeId = 1;

/// Variable index used by the two terminals: larger than any real
/// variable, so `min(var(a), var(b))` picks the decomposition variable
/// without special-casing terminals.
const TERMINAL_VAR: usize = usize::MAX;

/// One decision node: branch on `var`, `lo` when false, `hi` when true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: usize,
    lo: NodeId,
    hi: NodeId,
}

/// Binary-apply operations memoized in the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    /// Rauzy's `without`: solutions of the left operand that do not
    /// already satisfy the right operand. Not commutative.
    Without,
}

/// A hash-consed ROBDD manager: every distinct `(var, lo, hi)` triple
/// exists once, so two node ids are equal iff the functions are equal.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    op_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
    minsol_cache: HashMap<NodeId, NodeId>,
}

impl Bdd {
    /// Creates a manager holding only the two terminals.
    #[must_use]
    pub fn new() -> Self {
        let terminal = |id| Node { var: TERMINAL_VAR, lo: id, hi: id };
        Bdd {
            nodes: vec![terminal(FALSE), terminal(TRUE)],
            unique: HashMap::new(),
            op_cache: HashMap::new(),
            minsol_cache: HashMap::new(),
        }
    }

    /// Number of nodes allocated (terminals included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The reduced node for `(var, lo, hi)`.
    fn mk(&mut self, var: usize, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The single-variable function `x_v`.
    pub fn var(&mut self, v: usize) -> NodeId {
        self.mk(v, FALSE, TRUE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE || a == b {
            return b;
        }
        if b == FALSE {
            return a;
        }
        self.apply(Op::Or, a.min(b), a.max(b))
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE || a == b {
            return b;
        }
        if b == TRUE {
            return a;
        }
        self.apply(Op::And, a.min(b), a.max(b))
    }

    /// Shannon-decomposes one binary operation on nonterminal operands.
    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        if let Some(&id) = self.op_cache.get(&(op, a, b)) {
            return id;
        }
        let (na, nb) = (self.nodes[a], self.nodes[b]);
        let v = na.var.min(nb.var);
        let (a0, a1) = if na.var == v { (na.lo, na.hi) } else { (a, a) };
        let (b0, b1) = if nb.var == v { (nb.lo, nb.hi) } else { (b, b) };
        let (lo, hi) = match op {
            Op::Or => (self.or(a0, b0), self.or(a1, b1)),
            Op::And => (self.and(a0, b0), self.and(a1, b1)),
            Op::Without => unreachable!("without has its own recursion"),
        };
        let id = self.mk(v, lo, hi);
        self.op_cache.insert((op, a, b), id);
        id
    }

    /// `at least m of fs are true`, exact for arbitrary operand
    /// functions via the monotone recurrence
    /// `thr(i, m) = (f_i ∧ thr(i+1, m−1)) ∨ thr(i+1, m)`.
    ///
    /// `O(n·m)` apply calls; with single-variable operands in index
    /// order the result is the compact threshold ladder.
    pub fn at_least_of(&mut self, fs: &[NodeId], m: usize) -> NodeId {
        let mut memo = HashMap::new();
        self.at_least_rec(fs, m, 0, &mut memo)
    }

    fn at_least_rec(
        &mut self,
        fs: &[NodeId],
        need: usize,
        i: usize,
        memo: &mut HashMap<(usize, usize), NodeId>,
    ) -> NodeId {
        if need == 0 {
            return TRUE;
        }
        if need > fs.len() - i {
            return FALSE;
        }
        if let Some(&id) = memo.get(&(i, need)) {
            return id;
        }
        let with = self.at_least_rec(fs, need - 1, i + 1, memo);
        let with = self.and(fs[i], with);
        let without = self.at_least_rec(fs, need, i + 1, memo);
        let id = self.or(with, without);
        memo.insert((i, need), id);
        id
    }

    /// Cofactor: `f` with variable `v` fixed to `val`.
    pub fn restrict(&mut self, f: NodeId, v: usize, val: bool) -> NodeId {
        let mut memo = HashMap::new();
        self.restrict_rec(f, v, val, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        v: usize,
        val: bool,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        let n = self.nodes[f];
        // Ordered BDD: once the top variable passes `v`, `v` cannot
        // appear below (terminals carry `TERMINAL_VAR`).
        if n.var > v {
            return f;
        }
        if n.var == v {
            return if val { n.hi } else { n.lo };
        }
        if let Some(&id) = memo.get(&f) {
            return id;
        }
        let lo = self.restrict_rec(n.lo, v, val, memo);
        let hi = self.restrict_rec(n.hi, v, val, memo);
        let id = self.mk(n.var, lo, hi);
        memo.insert(f, id);
        id
    }

    /// Whether `f` is invariant under transposing variables `x` and
    /// `y`: `f|x=1,y=0 == f|x=0,y=1`. Hash-consing makes the equality
    /// check a node-id comparison.
    pub fn symmetric_in(&mut self, f: NodeId, x: usize, y: usize) -> bool {
        let x1 = self.restrict(f, x, true);
        let x1y0 = self.restrict(x1, y, false);
        let x0 = self.restrict(f, x, false);
        let x0y1 = self.restrict(x0, y, true);
        x1y0 == x0y1
    }

    /// Rebuilds a *monotone* `f` with every variable `v` replaced by
    /// `perm[v]` (a permutation of `0..perm.len()`). Exact for monotone
    /// functions: the hi-cofactor dominates the lo-cofactor, so
    /// `ite(x, h, l) = (x ∧ h) ∨ l`.
    pub fn rename_monotone(&mut self, f: NodeId, perm: &[usize]) -> NodeId {
        let mut memo = HashMap::new();
        self.rename_rec(f, perm, &mut memo)
    }

    fn rename_rec(
        &mut self,
        f: NodeId,
        perm: &[usize],
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f <= TRUE {
            return f;
        }
        if let Some(&id) = memo.get(&f) {
            return id;
        }
        let n = self.nodes[f];
        let lo = self.rename_rec(n.lo, perm, memo);
        let hi = self.rename_rec(n.hi, perm, memo);
        let x = self.var(perm[n.var]);
        let picked = self.and(x, hi);
        let id = self.or(picked, lo);
        memo.insert(f, id);
        id
    }

    /// Rauzy's minimal-solutions BDD of a monotone `f`: the 1-paths'
    /// positive-literal sets are exactly the minimal solutions (for a
    /// failure function: the minimal cut sets), with no non-minimal
    /// path left to enumerate.
    pub fn minimal_solutions(&mut self, f: NodeId) -> NodeId {
        if f <= TRUE {
            return f;
        }
        if let Some(&id) = self.minsol_cache.get(&f) {
            return id;
        }
        let n = self.nodes[f];
        let lo = self.minimal_solutions(n.lo);
        let hi_min = self.minimal_solutions(n.hi);
        // A minimal solution of f|x=1 stays minimal with x added only
        // if it is not already a solution without x (i.e. of f|x=0).
        let hi = self.without(hi_min, n.lo);
        let id = self.mk(n.var, lo, hi);
        self.minsol_cache.insert(f, id);
        id
    }

    /// Solutions (positive sets) of `u` that do *not* satisfy `v`.
    fn without(&mut self, u: NodeId, v: NodeId) -> NodeId {
        if u == FALSE || v == TRUE {
            return FALSE;
        }
        if v == FALSE {
            return u;
        }
        if u == TRUE {
            // The empty set survives iff it does not satisfy `v`.
            return if self.eval_all_false(v) { FALSE } else { TRUE };
        }
        if let Some(&id) = self.op_cache.get(&(Op::Without, u, v)) {
            return id;
        }
        let (nu, nv) = (self.nodes[u], self.nodes[v]);
        let id = if nu.var == nv.var {
            let lo = self.without(nu.lo, nv.lo);
            let hi = self.without(nu.hi, nv.hi);
            self.mk(nu.var, lo, hi)
        } else if nu.var < nv.var {
            // `v` does not branch on nu.var.
            let lo = self.without(nu.lo, v);
            let hi = self.without(nu.hi, v);
            self.mk(nu.var, lo, hi)
        } else {
            // `u`'s sets never contain nv.var, so test against v|var=0.
            self.without(u, nv.lo)
        };
        self.op_cache.insert((Op::Without, u, v), id);
        id
    }

    /// Evaluates `f` with every variable false (follows `lo` edges).
    fn eval_all_false(&self, f: NodeId) -> bool {
        let mut cur = f;
        while cur > TRUE {
            cur = self.nodes[cur].lo;
        }
        cur == TRUE
    }

    /// Evaluates `f` under a full assignment.
    pub fn eval(&self, f: NodeId, assignment: &impl Fn(usize) -> bool) -> bool {
        let mut cur = f;
        while cur > TRUE {
            let n = self.nodes[cur];
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == TRUE
    }

    /// Enumerates the positive sets of `f`'s 1-paths with at most
    /// `max_size` positives, sorted by (size, lexicographic). The
    /// boolean is true when at least one larger solution was pruned.
    ///
    /// On a [`Bdd::minimal_solutions`] BDD this is exactly the minimal
    /// cut sets up to the given order; the cap prunes whole subtrees,
    /// so the cost is bounded by the solutions reported, not by the
    /// (possibly astronomic) total count.
    #[must_use]
    pub fn solutions_up_to(&self, f: NodeId, max_size: usize) -> (Vec<Vec<usize>>, bool) {
        let mut out = BTreeSet::new();
        let mut truncated = false;
        let mut stack = Vec::new();
        self.solutions_rec(f, max_size, &mut stack, &mut out, &mut truncated);
        let mut sets: Vec<Vec<usize>> = out.into_iter().collect();
        sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        (sets, truncated)
    }

    fn solutions_rec(
        &self,
        f: NodeId,
        max_size: usize,
        stack: &mut Vec<usize>,
        out: &mut BTreeSet<Vec<usize>>,
        truncated: &mut bool,
    ) {
        if f == FALSE {
            return;
        }
        if f == TRUE {
            out.insert(stack.clone());
            return;
        }
        let n = self.nodes[f];
        self.solutions_rec(n.lo, max_size, stack, out, truncated);
        if stack.len() == max_size {
            // Any 1-path through the hi edge has > max_size positives;
            // a nonterminal (or TRUE) hi subtree contains at least one.
            if n.hi != FALSE {
                *truncated = true;
            }
            return;
        }
        stack.push(n.var);
        self.solutions_rec(n.hi, max_size, stack, out, truncated);
        stack.pop();
    }

    /// Number of 1-path positive sets of each size `0..=max_size`
    /// (index = size). Sizes beyond `max_size` are not counted.
    #[must_use]
    pub fn count_by_size(&self, f: NodeId, max_size: usize) -> Vec<u128> {
        let mut memo: HashMap<NodeId, Vec<u128>> = HashMap::new();
        self.count_rec(f, max_size, &mut memo)
    }

    fn count_rec(
        &self,
        f: NodeId,
        max_size: usize,
        memo: &mut HashMap<NodeId, Vec<u128>>,
    ) -> Vec<u128> {
        if f == FALSE {
            return vec![0; max_size + 1];
        }
        if f == TRUE {
            let mut c = vec![0; max_size + 1];
            c[0] = 1;
            return c;
        }
        if let Some(c) = memo.get(&f) {
            return c.clone();
        }
        let n = self.nodes[f];
        let lo = self.count_rec(n.lo, max_size, memo);
        let hi = self.count_rec(n.hi, max_size, memo);
        let mut c = lo;
        for k in 1..=max_size {
            c[k] = c[k].saturating_add(hi[k - 1]);
        }
        memo.insert(f, c.clone());
        c
    }

    /// P[f = 1] when every variable is independently true with
    /// probability 1/2 (each edge halves the mass; skipped variables
    /// contribute a neutral factor).
    #[must_use]
    pub fn satisfaction_half(&self, f: NodeId) -> f64 {
        // Children are always allocated before their parents, so the
        // node table is already in topological (bottom-up) order.
        let mut sp = vec![0.0_f64; self.nodes.len()];
        sp[TRUE] = 1.0;
        for id in 2..self.nodes.len() {
            let n = self.nodes[id];
            sp[id] = 0.5 * (sp[n.lo] + sp[n.hi]);
        }
        sp[f]
    }

    /// Birnbaum structural importance of every variable at p = 1/2:
    /// `I_B(x) = P[f|x=1] − P[f|x=0]`, computed for all variables in
    /// one forward (reach probability) / backward (satisfaction
    /// probability) sweep over the BDD.
    #[must_use]
    pub fn birnbaum_half(&self, f: NodeId, num_vars: usize) -> Vec<f64> {
        let mut imp = vec![0.0_f64; num_vars];
        if f <= TRUE {
            return imp;
        }
        let mut sp = vec![0.0_f64; self.nodes.len()];
        sp[TRUE] = 1.0;
        for id in 2..self.nodes.len() {
            let n = self.nodes[id];
            sp[id] = 0.5 * (sp[n.lo] + sp[n.hi]);
        }
        // Reach probability: root gets 1, each edge carries half the
        // parent's mass. Descending ids visit parents before children.
        let mut reach = vec![0.0_f64; self.nodes.len()];
        reach[f] = 1.0;
        for id in (2..=f).rev() {
            if reach[id] == 0.0 {
                continue;
            }
            let n = self.nodes[id];
            if n.lo > TRUE {
                reach[n.lo] += 0.5 * reach[id];
            }
            if n.hi > TRUE {
                reach[n.hi] += 0.5 * reach[id];
            }
        }
        for (id, &mass) in reach.iter().enumerate().take(f + 1).skip(2) {
            if mass > 0.0 {
                let n = self.nodes[id];
                imp[n.var] += mass * (sp[n.hi] - sp[n.lo]);
            }
        }
        imp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Rbd;
    use crate::paths;

    /// All assignments over `n` variables.
    fn assignments(n: usize) -> impl Iterator<Item = u32> {
        0..(1u32 << n)
    }

    fn bit(mask: u32, v: usize) -> bool {
        mask >> v & 1 == 1
    }

    /// Compiles the *failure* function of an RBD tree: the tree fails
    /// when fewer than the required children work.
    fn failure_of(bdd: &mut Bdd, rbd: &Rbd) -> NodeId {
        match rbd {
            Rbd::Component(id) => bdd.var(*id),
            Rbd::Series(ch) => {
                let fs: Vec<NodeId> = ch.iter().map(|c| failure_of(bdd, c)).collect();
                fs.into_iter().fold(FALSE, |acc, f| bdd.or(acc, f))
            }
            Rbd::Parallel(ch) => {
                let fs: Vec<NodeId> = ch.iter().map(|c| failure_of(bdd, c)).collect();
                fs.into_iter().fold(TRUE, |acc, f| bdd.and(acc, f))
            }
            Rbd::KOfN { k, children } => {
                let fs: Vec<NodeId> = children.iter().map(|c| failure_of(bdd, c)).collect();
                let need = children.len() - *k as usize + 1;
                bdd.at_least_of(&fs, need)
            }
        }
    }

    #[test]
    fn ops_match_truth_tables() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let f = bdd.or(xy, z);
        for mask in assignments(3) {
            let expect = (bit(mask, 0) && bit(mask, 1)) || bit(mask, 2);
            assert_eq!(bdd.eval(f, &|v| bit(mask, v)), expect, "mask {mask:b}");
        }
        // Hash-consing: rebuilding the same function yields the same id.
        let xy2 = bdd.and(y, x);
        let f2 = bdd.or(z, xy2);
        assert_eq!(f, f2);
    }

    #[test]
    fn at_least_counts_satisfying_assignments() {
        let mut bdd = Bdd::new();
        for n in 1..=6usize {
            let vars: Vec<NodeId> = (0..n).map(|v| bdd.var(v)).collect();
            for m in 0..=n {
                let f = bdd.at_least_of(&vars, m);
                let sat = assignments(n).filter(|&mask| bdd.eval(f, &|v| bit(mask, v))).count();
                let expect: usize =
                    assignments(n).filter(|mask| mask.count_ones() as usize >= m).count();
                assert_eq!(sat, expect, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn threshold_is_compact() {
        // at-least-5-of-64: the ladder must stay O(n·m), nowhere near
        // the C(64,5) ≈ 7.6e6 explicit combinations.
        let mut bdd = Bdd::new();
        let vars: Vec<NodeId> = (0..64).map(|v| bdd.var(v)).collect();
        let f = bdd.at_least_of(&vars, 5);
        assert!(bdd.node_count() < 1000, "{} nodes", bdd.node_count());
        let minsol = bdd.minimal_solutions(f);
        let counts = bdd.count_by_size(minsol, 5);
        assert_eq!(counts[5], 7_624_512); // C(64,5)
        assert_eq!(counts[4], 0);
    }

    #[test]
    fn minimal_solutions_match_brute_force_enumeration() {
        // Fixtures ≤ 12 components, exercising series, parallel,
        // k-of-n, nesting, and a repeated component.
        let fixtures: Vec<Rbd> = vec![
            Rbd::series(vec![Rbd::component(0), Rbd::component(1)]),
            Rbd::parallel(vec![Rbd::component(0), Rbd::component(1), Rbd::component(2)]),
            Rbd::k_of_n(2, (0..4).map(Rbd::component).collect()),
            Rbd::series(vec![
                Rbd::component(0),
                Rbd::parallel(vec![Rbd::component(1), Rbd::component(2)]),
                Rbd::k_of_n(2, (3..6).map(Rbd::component).collect()),
            ]),
            Rbd::series(vec![
                Rbd::k_of_n(3, (0..5).map(Rbd::component).collect()),
                Rbd::parallel(vec![
                    Rbd::series(vec![Rbd::component(5), Rbd::component(6)]),
                    Rbd::series(vec![Rbd::component(7), Rbd::component(8)]),
                ]),
                Rbd::component(9),
            ]),
            // Repeated component: 0 appears in two branches.
            Rbd::parallel(vec![
                Rbd::component(0),
                Rbd::series(vec![Rbd::component(0), Rbd::component(1)]),
            ]),
        ];
        for (i, rbd) in fixtures.iter().enumerate() {
            let mut bdd = Bdd::new();
            let f = failure_of(&mut bdd, rbd);
            let minsol = bdd.minimal_solutions(f);
            let (sets, truncated) = bdd.solutions_up_to(minsol, 12);
            assert!(!truncated, "fixture {i}");
            let got: Vec<paths::ComponentSet> =
                sets.into_iter().map(|s| s.into_iter().collect()).collect();
            let mut expect = paths::minimal_cut_sets(rbd);
            expect.sort_by(|a, b| {
                a.len()
                    .cmp(&b.len())
                    .then_with(|| a.iter().collect::<Vec<_>>().cmp(&b.iter().collect::<Vec<_>>()))
            });
            assert_eq!(got, expect, "fixture {i}");
        }
    }

    #[test]
    fn order_cap_prunes_exactly() {
        // series(x0, 2-of-3(x1..x3)): cuts {0} and the three pairs.
        let mut bdd = Bdd::new();
        let x0 = bdd.var(0);
        let vars: Vec<NodeId> = (1..4).map(|v| bdd.var(v)).collect();
        let pair_fail = bdd.at_least_of(&vars, 2);
        let f = bdd.or(x0, pair_fail);
        let minsol = bdd.minimal_solutions(f);
        let (sets, truncated) = bdd.solutions_up_to(minsol, 1);
        assert_eq!(sets, vec![vec![0]]);
        assert!(truncated);
        let (sets, truncated) = bdd.solutions_up_to(minsol, 2);
        assert_eq!(sets.len(), 4);
        assert!(!truncated);
    }

    #[test]
    fn birnbaum_half_known_values() {
        let mut bdd = Bdd::new();
        // f = x0: importance 1 for x0, 0 for an absent x1.
        let f = bdd.var(0);
        let imp = bdd.birnbaum_half(f, 2);
        assert_eq!(imp, vec![1.0, 0.0]);
        // f = x0 ∧ x1: each variable pivotal when the other is true.
        let y = bdd.var(1);
        let f = bdd.and(f, y);
        let imp = bdd.birnbaum_half(f, 2);
        assert_eq!(imp, vec![0.5, 0.5]);
        // Cross-check against the restrict definition on a mixed
        // function f = x0 ∨ (x1 ∧ x2).
        let x1 = bdd.var(1);
        let x2 = bdd.var(2);
        let x12 = bdd.and(x1, x2);
        let x0 = bdd.var(0);
        let f = bdd.or(x0, x12);
        let imp = bdd.birnbaum_half(f, 3);
        for (v, &got) in imp.iter().enumerate() {
            let hi = bdd.restrict(f, v, true);
            let lo = bdd.restrict(f, v, false);
            let expect = bdd.satisfaction_half(hi) - bdd.satisfaction_half(lo);
            assert!((got - expect).abs() < 1e-15, "var {v}: {got} vs {expect}");
        }
    }

    #[test]
    fn symmetry_detects_interchangeable_variables() {
        let mut bdd = Bdd::new();
        let vars: Vec<NodeId> = (0..3).map(|v| bdd.var(v)).collect();
        let f = bdd.at_least_of(&vars, 2);
        assert!(bdd.symmetric_in(f, 0, 1));
        assert!(bdd.symmetric_in(f, 1, 2));
        assert!(bdd.symmetric_in(f, 0, 2));
        // f = x0 ∨ (x1 ∧ x2) is symmetric in (1,2) but not (0,1).
        let x12 = bdd.and(vars[1], vars[2]);
        let g = bdd.or(vars[0], x12);
        assert!(bdd.symmetric_in(g, 1, 2));
        assert!(!bdd.symmetric_in(g, 0, 1));
    }

    #[test]
    fn rename_monotone_swaps_variable_ranges() {
        // Two identical 1-of-2 blocks in series:
        // f = (x0 ∧ x1) ∨ (x2 ∧ x3). Swapping the blocks is a symmetry;
        // swapping one unit across blocks is not.
        let mut bdd = Bdd::new();
        let a = {
            let v0 = bdd.var(0);
            let v1 = bdd.var(1);
            bdd.and(v0, v1)
        };
        let b = {
            let v2 = bdd.var(2);
            let v3 = bdd.var(3);
            bdd.and(v2, v3)
        };
        let f = bdd.or(a, b);
        let swapped = bdd.rename_monotone(f, &[2, 3, 0, 1]);
        assert_eq!(swapped, f);
        let crossed = bdd.rename_monotone(f, &[2, 1, 0, 3]);
        assert_ne!(crossed, f);
        assert!(!bdd.symmetric_in(f, 0, 2));
    }

    #[test]
    fn count_by_size_matches_enumeration() {
        let mut bdd = Bdd::new();
        let vars: Vec<NodeId> = (0..6).map(|v| bdd.var(v)).collect();
        let head = bdd.at_least_of(&vars[..4], 2);
        let tail = bdd.var(5);
        let f = bdd.or(head, tail);
        let minsol = bdd.minimal_solutions(f);
        let counts = bdd.count_by_size(minsol, 6);
        let (sets, _) = bdd.solutions_up_to(minsol, 6);
        for (k, &count) in counts.iter().enumerate() {
            let enumerated = sets.iter().filter(|s| s.len() == k).count() as u128;
            assert_eq!(count, enumerated, "order {k}");
        }
    }
}
