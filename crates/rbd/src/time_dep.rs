//! Time-dependent (mission) reliability of RBDs.
//!
//! For the reliability model, components are not repaired during the
//! mission: each component has a lifetime distribution, and the system
//! reliability at time `t` is the structure function evaluated over the
//! component survival probabilities `R_i(t)`.

use crate::block::{ComponentTable, Rbd};
use crate::error::RbdError;

/// A component lifetime distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Lifetime {
    /// Exponential lifetime with the given failure rate.
    Exponential {
        /// Failure rate (> 0), per hour.
        rate: f64,
    },
    /// Weibull lifetime.
    Weibull {
        /// Shape parameter (> 0); < 1 infant mortality, > 1 wear-out.
        shape: f64,
        /// Scale parameter (> 0), hours.
        scale: f64,
    },
}

impl Lifetime {
    /// Survival probability `R(t)`.
    #[must_use]
    pub fn survival(&self, t: f64) -> f64 {
        match *self {
            Lifetime::Exponential { rate } => (-rate * t).exp(),
            Lifetime::Weibull { shape, scale } => (-(t / scale).powf(shape)).exp(),
        }
    }

    /// Hazard rate at time `t`.
    #[must_use]
    #[allow(clippy::float_cmp)] // shape exactly 1.0 selects the exponential branch
    pub fn hazard(&self, t: f64) -> f64 {
        match *self {
            Lifetime::Exponential { rate } => rate,
            Lifetime::Weibull { shape, scale } => {
                if t <= 0.0 {
                    if shape < 1.0 {
                        f64::INFINITY
                    } else if shape == 1.0 {
                        1.0 / scale
                    } else {
                        0.0
                    }
                } else {
                    shape / scale * (t / scale).powf(shape - 1.0)
                }
            }
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::InvalidProbability`] describing the bad
    /// parameter.
    pub fn validate(&self) -> Result<(), RbdError> {
        let ok = match *self {
            Lifetime::Exponential { rate } => rate > 0.0 && rate.is_finite(),
            Lifetime::Weibull { shape, scale } => {
                shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(RbdError::InvalidProbability { what: format!("lifetime {self:?}") })
        }
    }
}

/// A mission profile: per-component lifetimes matched to a diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionProfile {
    lifetimes: Vec<Lifetime>,
}

impl MissionProfile {
    /// Creates a profile with one lifetime per component id.
    ///
    /// # Errors
    ///
    /// Returns the first lifetime validation error.
    pub fn new(lifetimes: Vec<Lifetime>) -> Result<Self, RbdError> {
        for l in &lifetimes {
            l.validate()?;
        }
        Ok(MissionProfile { lifetimes })
    }

    /// Number of components covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lifetimes.len()
    }

    /// Whether the profile is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lifetimes.is_empty()
    }

    /// System reliability at mission time `t` for the given diagram.
    ///
    /// # Errors
    ///
    /// * [`RbdError::UnknownComponent`] if the diagram references a
    ///   component without a lifetime.
    /// * Evaluation errors from [`Rbd::availability`].
    pub fn system_reliability(&self, rbd: &Rbd, t: f64) -> Result<f64, RbdError> {
        let mut table = ComponentTable::new();
        for (i, l) in self.lifetimes.iter().enumerate() {
            table.add(format!("c{i}"), l.survival(t));
        }
        rbd.availability(&table)
    }

    /// Samples the system reliability curve at the given times.
    ///
    /// # Errors
    ///
    /// As for [`system_reliability`](Self::system_reliability).
    pub fn reliability_curve(&self, rbd: &Rbd, times: &[f64]) -> Result<Vec<f64>, RbdError> {
        times.iter().map(|&t| self.system_reliability(rbd, t)).collect()
    }

    /// Mean time to failure of the system by adaptive Simpson
    /// integration of the reliability curve, `MTTF = ∫ R(t) dt`.
    ///
    /// Integrates until `R(t) < tail_cutoff` (default caller-supplied).
    ///
    /// # Errors
    ///
    /// As for [`system_reliability`](Self::system_reliability).
    pub fn mttf(&self, rbd: &Rbd, tail_cutoff: f64) -> Result<f64, RbdError> {
        // Find a horizon where R has decayed below the cutoff.
        let mut horizon = 1.0;
        while self.system_reliability(rbd, horizon)? > tail_cutoff && horizon < 1e12 {
            horizon *= 2.0;
        }
        // Composite Simpson over [0, horizon].
        let n = 2048; // even
        let h = horizon / n as f64;
        let mut sum = self.system_reliability(rbd, 0.0)? + self.system_reliability(rbd, horizon)?;
        for i in 1..n {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            sum += w * self.system_reliability(rbd, i as f64 * h)?;
        }
        Ok(sum * h / 3.0)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn exponential_survival() {
        let l = Lifetime::Exponential { rate: 0.01 };
        assert!((l.survival(100.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(l.hazard(5.0), 0.01);
    }

    #[test]
    fn weibull_shapes() {
        let infant = Lifetime::Weibull { shape: 0.5, scale: 100.0 };
        let wearout = Lifetime::Weibull { shape: 3.0, scale: 100.0 };
        // Infant mortality: hazard decreasing; wear-out: increasing.
        assert!(infant.hazard(1.0) > infant.hazard(10.0));
        assert!(wearout.hazard(1.0) < wearout.hazard(10.0));
        // Shape 1 Weibull equals exponential.
        let w1 = Lifetime::Weibull { shape: 1.0, scale: 100.0 };
        let e = Lifetime::Exponential { rate: 0.01 };
        for &t in &[0.5, 5.0, 50.0] {
            assert!((w1.survival(t) - e.survival(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn series_system_rate_adds() {
        // Two exponential components in series: system rate = sum.
        let profile = MissionProfile::new(vec![
            Lifetime::Exponential { rate: 0.01 },
            Lifetime::Exponential { rate: 0.03 },
        ])
        .unwrap();
        let rbd = Rbd::series(vec![Rbd::component(0), Rbd::component(1)]);
        for &t in &[1.0, 10.0, 100.0] {
            let r = profile.system_reliability(&rbd, t).unwrap();
            assert!((r - (-0.04 * t).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_mttf_exceeds_single() {
        let profile = MissionProfile::new(vec![
            Lifetime::Exponential { rate: 0.01 },
            Lifetime::Exponential { rate: 0.01 },
        ])
        .unwrap();
        let single = Rbd::component(0);
        let pair = Rbd::parallel(vec![Rbd::component(0), Rbd::component(1)]);
        let m1 = profile.mttf(&single, 1e-8).unwrap();
        let m2 = profile.mttf(&pair, 1e-8).unwrap();
        // MTTF single = 100; parallel pair = 150.
        assert!((m1 - 100.0).abs() < 0.5, "m1={m1}");
        assert!((m2 - 150.0).abs() < 0.5, "m2={m2}");
    }

    #[test]
    fn reliability_curve_monotone_decreasing() {
        let profile = MissionProfile::new(vec![
            Lifetime::Weibull { shape: 2.0, scale: 50.0 },
            Lifetime::Exponential { rate: 0.02 },
        ])
        .unwrap();
        let rbd = Rbd::parallel(vec![Rbd::component(0), Rbd::component(1)]);
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 4.0).collect();
        let curve = profile.reliability_curve(&rbd, &times).unwrap();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!((curve[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_lifetimes_rejected() {
        assert!(Lifetime::Exponential { rate: 0.0 }.validate().is_err());
        assert!(Lifetime::Weibull { shape: 0.0, scale: 1.0 }.validate().is_err());
        assert!(MissionProfile::new(vec![Lifetime::Exponential { rate: -1.0 }]).is_err());
    }

    #[test]
    fn missing_component_rejected() {
        let profile = MissionProfile::new(vec![Lifetime::Exponential { rate: 0.01 }]).unwrap();
        let rbd = Rbd::component(3);
        assert!(matches!(
            profile.system_reliability(&rbd, 1.0),
            Err(RbdError::UnknownComponent { .. })
        ));
    }
}
