//! Error type for RBD construction and evaluation.

use std::fmt;

/// Error returned by RBD construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RbdError {
    /// A component id was not found in the component table.
    UnknownComponent {
        /// The offending component id.
        id: usize,
        /// Size of the component table.
        len: usize,
    },
    /// A component availability/probability was outside `[0, 1]`.
    InvalidProbability {
        /// Description of the offending value.
        what: String,
    },
    /// A k-of-n node has `k` outside `1..=n`.
    InvalidKofN {
        /// Required number of working children.
        k: u32,
        /// Total number of children.
        n: usize,
    },
    /// A series/parallel/k-of-n node has no children.
    EmptyGate,
    /// A network is malformed (bad endpoints, missing source/sink path).
    InvalidNetwork {
        /// Description of the problem.
        what: String,
    },
    /// Too many distinct repeated components for exact Shannon
    /// decomposition.
    TooManyRepeated {
        /// Number of repeated components found.
        count: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for RbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbdError::UnknownComponent { id, len } => {
                write!(f, "component id {id} out of range for table of {len}")
            }
            RbdError::InvalidProbability { what } => write!(f, "invalid probability: {what}"),
            RbdError::InvalidKofN { k, n } => write!(f, "invalid k-of-n: k={k}, n={n}"),
            RbdError::EmptyGate => write!(f, "gate has no children"),
            RbdError::InvalidNetwork { what } => write!(f, "invalid network: {what}"),
            RbdError::TooManyRepeated { count, max } => {
                write!(f, "{count} repeated components exceed the exact-evaluation limit {max}")
            }
        }
    }
}

impl std::error::Error for RbdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let cases = [
            RbdError::UnknownComponent { id: 1, len: 0 },
            RbdError::InvalidProbability { what: "x".into() },
            RbdError::InvalidKofN { k: 3, n: 2 },
            RbdError::EmptyGate,
            RbdError::InvalidNetwork { what: "y".into() },
            RbdError::TooManyRepeated { count: 40, max: 24 },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
