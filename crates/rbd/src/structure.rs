//! Boolean structure functions of RBD trees.
//!
//! The structure function `φ(x)` maps a vector of component states
//! (true = working) to the system state. It underlies minimal path/cut
//! enumeration and the importance measures.

use crate::block::{ComponentTable, Rbd};
use crate::error::RbdError;

/// Evaluates the structure function for a state vector indexed by
/// component id.
///
/// # Errors
///
/// Returns [`RbdError::UnknownComponent`] if a leaf's id is out of range
/// of `states`.
pub fn evaluate(rbd: &Rbd, states: &[bool]) -> Result<bool, RbdError> {
    match rbd {
        Rbd::Component(id) => states
            .get(*id)
            .copied()
            .ok_or(RbdError::UnknownComponent { id: *id, len: states.len() }),
        Rbd::Series(ch) => {
            for c in ch {
                if !evaluate(c, states)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Rbd::Parallel(ch) => {
            for c in ch {
                if evaluate(c, states)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Rbd::KOfN { k, children } => {
            let mut working = 0u32;
            for c in children {
                if evaluate(c, states)? {
                    working += 1;
                    if working >= *k {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// Checks that the structure function is *coherent* over all component
/// states: monotone in every component (repairing a component never
/// takes the system down) and every component relevant, by exhaustive
/// enumeration. Intended for tests and small diagrams (cost `2^n`).
///
/// Returns `(monotone, all_relevant)`.
///
/// # Errors
///
/// * [`RbdError::InvalidNetwork`] if the diagram references more than 20
///   distinct components (enumeration would be too large).
/// * Evaluation errors from [`evaluate`].
pub fn coherence(rbd: &Rbd, table: &ComponentTable) -> Result<(bool, bool), RbdError> {
    rbd.validate(table)?;
    let comps = rbd.components();
    let n = comps.len();
    if n > 20 {
        return Err(RbdError::InvalidNetwork {
            what: format!("coherence check limited to 20 components, got {n}"),
        });
    }
    let mut monotone = true;
    let mut relevant = vec![false; n];
    let mut states = vec![false; table.len()];
    for mask in 0u32..(1 << n) {
        for (b, &id) in comps.iter().enumerate() {
            states[id] = mask & (1 << b) != 0;
        }
        let phi = evaluate(rbd, &states)?;
        // Flip each currently-down component up; phi must not decrease.
        for (b, &id) in comps.iter().enumerate() {
            if mask & (1 << b) == 0 {
                states[id] = true;
                let phi_up = evaluate(rbd, &states)?;
                states[id] = false;
                if phi && !phi_up {
                    monotone = false;
                }
                if phi != phi_up {
                    relevant[b] = true;
                }
            }
        }
    }
    Ok((monotone, relevant.iter().all(|&r| r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ComponentTable, Rbd) {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let b = t.add("b", 0.9);
        let c = t.add("c", 0.9);
        let r = Rbd::series(vec![
            Rbd::component(a),
            Rbd::parallel(vec![Rbd::component(b), Rbd::component(c)]),
        ]);
        (t, r)
    }

    #[test]
    fn series_parallel_truth_table() {
        let (_, r) = setup();
        assert!(evaluate(&r, &[true, true, false]).unwrap());
        assert!(evaluate(&r, &[true, false, true]).unwrap());
        assert!(!evaluate(&r, &[true, false, false]).unwrap());
        assert!(!evaluate(&r, &[false, true, true]).unwrap());
    }

    #[test]
    fn k_of_n_truth_table() {
        let mut t = ComponentTable::new();
        let ids: Vec<_> = (0..4).map(|i| t.add(format!("c{i}"), 0.9)).collect();
        let r = Rbd::k_of_n(3, ids.iter().map(|&i| Rbd::component(i)).collect());
        assert!(evaluate(&r, &[true, true, true, false]).unwrap());
        assert!(evaluate(&r, &[true, true, true, true]).unwrap());
        assert!(!evaluate(&r, &[true, true, false, false]).unwrap());
    }

    #[test]
    fn out_of_range_state_vector() {
        let (_, r) = setup();
        assert!(matches!(evaluate(&r, &[true]), Err(RbdError::UnknownComponent { .. })));
    }

    #[test]
    fn coherent_structures() {
        let (t, r) = setup();
        assert_eq!(coherence(&r, &t).unwrap(), (true, true));
    }

    #[test]
    fn irrelevant_component_detected() {
        let mut t = ComponentTable::new();
        let a = t.add("a", 0.9);
        let b = t.add("b", 0.9);
        // b is irrelevant: parallel with an always-relevant a in a
        // 1-of-2 where a alone decides? No — make b truly irrelevant by
        // not affecting the top: series(a) only, but reference b in a
        // parallel with a full subtree: parallel(a, series(a, b)) — b
        // never changes the outcome.
        let r = Rbd::parallel(vec![
            Rbd::component(a),
            Rbd::series(vec![Rbd::component(a), Rbd::component(b)]),
        ]);
        let (monotone, all_relevant) = coherence(&r, &t).unwrap();
        assert!(monotone);
        assert!(!all_relevant);
    }

    #[test]
    fn structure_matches_probability_eval() {
        // Exhaustive expectation over the truth table equals the exact
        // availability.
        let (t, r) = setup();
        let avail = t.availabilities();
        let comps = r.components();
        let mut expect = 0.0;
        for mask in 0u32..(1 << comps.len()) {
            let mut states = vec![false; t.len()];
            let mut p = 1.0;
            for (b, &id) in comps.iter().enumerate() {
                let up = mask & (1 << b) != 0;
                states[id] = up;
                p *= if up { avail[id] } else { 1.0 - avail[id] };
            }
            if evaluate(&r, &states).unwrap() {
                expect += p;
            }
        }
        let a = r.availability(&t).unwrap();
        assert!((a - expect).abs() < 1e-12);
    }
}
