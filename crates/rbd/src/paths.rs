//! Minimal path sets and minimal cut sets of RBD trees.
//!
//! A *path set* is a set of components whose joint functioning makes the
//! system function; a *cut set* is a set whose joint failure fails the
//! system. Minimal sets carry the qualitative structure of the diagram
//! and feed bounds and importance analysis.

use std::collections::BTreeSet;

use crate::block::{ComponentId, Rbd};

/// A set of component ids (sorted, deduplicated).
pub type ComponentSet = BTreeSet<ComponentId>;

/// Computes the minimal path sets of the tree.
///
/// Complexity is exponential in the worst case; intended for the small
/// diagrams MG generates per level.
#[must_use]
pub fn minimal_path_sets(rbd: &Rbd) -> Vec<ComponentSet> {
    minimize(path_sets(rbd))
}

/// Computes the minimal cut sets of the tree.
#[must_use]
pub fn minimal_cut_sets(rbd: &Rbd) -> Vec<ComponentSet> {
    minimize(cut_sets(rbd))
}

fn path_sets(rbd: &Rbd) -> Vec<ComponentSet> {
    match rbd {
        Rbd::Component(id) => vec![std::iter::once(*id).collect()],
        Rbd::Series(ch) => cross_union(ch.iter().map(path_sets)),
        Rbd::Parallel(ch) => ch.iter().flat_map(path_sets).collect(),
        Rbd::KOfN { k, children } => {
            let per_child: Vec<Vec<ComponentSet>> = children.iter().map(path_sets).collect();
            let mut out = Vec::new();
            for subset in k_subsets(children.len(), *k as usize) {
                let chosen = subset.iter().map(|&i| per_child[i].clone());
                out.extend(cross_union(chosen));
            }
            out
        }
    }
}

fn cut_sets(rbd: &Rbd) -> Vec<ComponentSet> {
    match rbd {
        Rbd::Component(id) => vec![std::iter::once(*id).collect()],
        // Duality: cuts of a series are the union of children's cuts.
        Rbd::Series(ch) => ch.iter().flat_map(cut_sets).collect(),
        Rbd::Parallel(ch) => cross_union(ch.iter().map(cut_sets)),
        Rbd::KOfN { k, children } => {
            // The system fails when n-k+1 children fail.
            let need = children.len() - *k as usize + 1;
            let per_child: Vec<Vec<ComponentSet>> = children.iter().map(cut_sets).collect();
            let mut out = Vec::new();
            for subset in k_subsets(children.len(), need) {
                let chosen = subset.iter().map(|&i| per_child[i].clone());
                out.extend(cross_union(chosen));
            }
            out
        }
    }
}

/// Cartesian product of families, unioning the picked sets.
fn cross_union(families: impl Iterator<Item = Vec<ComponentSet>>) -> Vec<ComponentSet> {
    let mut acc: Vec<ComponentSet> = vec![ComponentSet::new()];
    for family in families {
        let mut next = Vec::with_capacity(acc.len() * family.len());
        for base in &acc {
            for add in &family {
                let mut s = base.clone();
                s.extend(add.iter().copied());
                next.push(s);
            }
        }
        acc = next;
    }
    acc
}

/// All k-element index subsets of `0..n`.
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// Removes supersets and duplicates, leaving only minimal sets.
fn minimize(mut sets: Vec<ComponentSet>) -> Vec<ComponentSet> {
    sets.sort_by_key(BTreeSet::len);
    let mut out: Vec<ComponentSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| m.is_subset(&s)) {
            out.push(s);
        }
    }
    out
}

/// Lower/upper availability bounds from minimal cut/path sets
/// (Esary–Proschan). Exact for trees without repeated components when
/// the system is series-parallel; otherwise bounds.
#[must_use]
pub fn esary_proschan_bounds(
    paths: &[ComponentSet],
    cuts: &[ComponentSet],
    avail: &[f64],
) -> (f64, f64) {
    // Lower bound: product over cuts of P(cut not all failed).
    let lower: f64 =
        cuts.iter().map(|c| 1.0 - c.iter().map(|&i| 1.0 - avail[i]).product::<f64>()).product();
    // Upper bound: 1 - product over paths of P(path not all working).
    let upper: f64 = 1.0
        - paths.iter().map(|p| 1.0 - p.iter().map(|&i| avail[i]).product::<f64>()).product::<f64>();
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::ComponentTable;

    fn set(ids: &[usize]) -> ComponentSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn series_paths_and_cuts() {
        let r = Rbd::series(vec![Rbd::component(0), Rbd::component(1)]);
        assert_eq!(minimal_path_sets(&r), vec![set(&[0, 1])]);
        let cuts = minimal_cut_sets(&r);
        assert!(cuts.contains(&set(&[0])) && cuts.contains(&set(&[1])));
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn parallel_paths_and_cuts() {
        let r = Rbd::parallel(vec![Rbd::component(0), Rbd::component(1)]);
        let paths = minimal_path_sets(&r);
        assert!(paths.contains(&set(&[0])) && paths.contains(&set(&[1])));
        assert_eq!(minimal_cut_sets(&r), vec![set(&[0, 1])]);
    }

    #[test]
    fn two_of_three_sets() {
        let r = Rbd::k_of_n(2, vec![Rbd::component(0), Rbd::component(1), Rbd::component(2)]);
        let paths = minimal_path_sets(&r);
        assert_eq!(paths.len(), 3);
        assert!(paths.contains(&set(&[0, 1])));
        assert!(paths.contains(&set(&[0, 2])));
        assert!(paths.contains(&set(&[1, 2])));
        let cuts = minimal_cut_sets(&r);
        assert_eq!(cuts.len(), 3);
        assert!(cuts.contains(&set(&[0, 1])));
    }

    #[test]
    fn nested_structure() {
        // a in series with (b parallel c).
        let r = Rbd::series(vec![
            Rbd::component(0),
            Rbd::parallel(vec![Rbd::component(1), Rbd::component(2)]),
        ]);
        let paths = minimal_path_sets(&r);
        assert_eq!(paths, vec![set(&[0, 1]), set(&[0, 2])]);
        let cuts = minimal_cut_sets(&r);
        assert!(cuts.contains(&set(&[0])));
        assert!(cuts.contains(&set(&[1, 2])));
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn supersets_are_pruned() {
        // parallel(a, series(a, b)): path {0} makes {0,1} non-minimal.
        let r = Rbd::parallel(vec![
            Rbd::component(0),
            Rbd::series(vec![Rbd::component(0), Rbd::component(1)]),
        ]);
        assert_eq!(minimal_path_sets(&r), vec![set(&[0])]);
    }

    #[test]
    fn bounds_bracket_exact_availability() {
        let mut t = ComponentTable::new();
        for i in 0..3 {
            t.add(format!("c{i}"), 0.9 - 0.05 * i as f64);
        }
        let r = Rbd::series(vec![
            Rbd::component(0),
            Rbd::parallel(vec![Rbd::component(1), Rbd::component(2)]),
        ]);
        let exact = r.availability(&t).unwrap();
        let (lo, hi) = esary_proschan_bounds(
            &minimal_path_sets(&r),
            &minimal_cut_sets(&r),
            t.availabilities(),
        );
        assert!(lo <= exact + 1e-12, "lo={lo} exact={exact}");
        assert!(hi >= exact - 1e-12, "hi={hi} exact={exact}");
        // Series-parallel without repetition: the lower bound is exact.
        assert!((lo - exact).abs() < 1e-12);
    }

    #[test]
    fn k_subsets_counts() {
        assert_eq!(k_subsets(4, 2).len(), 6);
        assert_eq!(k_subsets(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(k_subsets(3, 3).len(), 1);
    }
}
