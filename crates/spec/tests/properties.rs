//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the spec crate: DSL round-trips and
//! validation invariants over randomly generated specifications.

use proptest::prelude::*;
use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::{
    Block, BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec,
};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Transparent), Just(Scenario::Nontransparent)]
}

fn arb_redundancy() -> impl Strategy<Value = RedundancyParams> {
    (
        0.0..0.5f64,
        1.0..1000.0f64,
        arb_scenario(),
        0.0..60.0f64,
        0.0..0.2f64,
        0.0..120.0f64,
        arb_scenario(),
        0.0..60.0f64,
    )
        .prop_map(|(plf, mttdlf, recovery, fo, pspf, spf, repair, reint)| RedundancyParams {
            p_latent_fault: plf,
            mttdlf: Hours(mttdlf),
            recovery,
            failover_time: Minutes(fo),
            p_spf: pspf,
            spf_recovery_time: Minutes(spf),
            repair,
            reintegration_time: Minutes(reint),
        })
}

fn arb_params(name: String) -> impl Strategy<Value = BlockParams> {
    (
        1u32..6,
        0u32..4,
        100.0..1e7f64,
        0.0..10_000.0f64,
        (1.0..120.0f64, 0.0..120.0f64, 0.0..60.0f64),
        0.0..48.0f64,
        0.5..1.0f64,
        arb_redundancy(),
    )
        .prop_map(move |(k, extra, mtbf, fit, (d, c, v), resp, pcd, red)| {
            let n = k + extra;
            let mut p = BlockParams::new(name.clone(), n, k)
                .with_mtbf(Hours(mtbf))
                .with_transient_fit(Fit(fit))
                .with_mttr_parts(Minutes(d), Minutes(c), Minutes(v))
                .with_service_response(Hours(resp))
                .with_p_correct_diagnosis(pcd);
            p.redundancy = if n > k { Some(red) } else { None };
            p
        })
}

fn arb_spec() -> impl Strategy<Value = SystemSpec> {
    // 1-4 top blocks, up to one with a 1-3 block subdiagram.
    (1usize..5, 1usize..4).prop_flat_map(|(ntop, nsub)| {
        let tops: Vec<_> = (0..ntop).map(|i| arb_params(format!("Top{i}"))).collect();
        let subs: Vec<_> = (0..nsub).map(|i| arb_params(format!("Sub{i}"))).collect();
        (tops, subs).prop_map(|(tops, subs)| {
            let mut root = Diagram::new("Root");
            let mut iter = tops.into_iter();
            if let Some(first) = iter.next() {
                let mut sub = Diagram::new("Subsystem");
                for s in subs {
                    sub.push(s);
                }
                root.push_block(Block::with_subdiagram(first, sub));
            }
            for t in iter {
                root.push(t);
            }
            SystemSpec::new(root, GlobalParams::default())
        })
    })
}

proptest! {
    /// Generated specs are valid by construction.
    #[test]
    fn generated_specs_validate(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    }

    /// DSL print -> parse is the identity.
    #[test]
    fn dsl_roundtrip(spec in arb_spec()) {
        let text = spec.to_dsl();
        let back = SystemSpec::from_dsl(&text);
        prop_assert!(back.is_ok(), "parse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(spec, back.unwrap());
    }

    /// JSON round-trip is the identity.
    #[test]
    fn json_roundtrip(spec in arb_spec()) {
        let json = spec.to_json().unwrap();
        let back = SystemSpec::from_json(&json).unwrap();
        prop_assert_eq!(spec, back);
    }

    /// DSL and JSON agree after a full cycle through both.
    #[test]
    fn dsl_and_json_compose(spec in arb_spec()) {
        let via_dsl = SystemSpec::from_dsl(&spec.to_dsl()).unwrap();
        let via_json = SystemSpec::from_json(&via_dsl.to_json().unwrap()).unwrap();
        prop_assert_eq!(spec, via_json);
    }

    /// Derived rates are consistent with parameters.
    #[test]
    fn derived_rates_consistent(spec in arb_spec()) {
        spec.root.walk(&mut |_, _, b| {
            let p = &b.params;
            assert!((p.permanent_rate() * p.mtbf.0 - 1.0).abs() < 1e-12);
            assert!(p.transient_rate() >= 0.0);
            assert!(p.mttr_total().0 > 0.0);
        });
    }
}
