//! Deterministic no-panic corpus for the spec front end.
//!
//! Unlike `fuzz_dsl.rs` (which needs the real `proptest` crate and is
//! feature-gated off in the offline build), this suite always runs: a
//! hand-written corpus of malformed, truncated, and garbage inputs,
//! plus seeded mutations of the bundled `specs/` files. The contract is
//! the same — the parser returns `Err`, it never panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rascad_spec::SystemSpec;

/// Parses `input` with both front ends inside a panic trap; returns a
/// description of the panic if one escaped.
fn parse_both(input: &str) -> Result<(), String> {
    for (name, f) in [
        ("from_dsl", SystemSpec::from_dsl as fn(&str) -> _),
        ("from_json", SystemSpec::from_json as fn(&str) -> _),
    ] {
        if catch_unwind(AssertUnwindSafe(|| {
            let _ = f(input);
        }))
        .is_err()
        {
            return Err(format!("{name} panicked on {:?}", truncate(input)));
        }
    }
    Ok(())
}

fn truncate(s: &str) -> String {
    let mut t: String = s.chars().take(120).collect();
    if t.len() < s.len() {
        t.push_str("...");
    }
    t
}

/// Minimal deterministic PRNG (64-bit LCG, Knuth constants) so the
/// mutation corpus is reproducible without a `rand` dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The bundled example specs, read from the repository root.
fn bundled_specs() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("specs/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rascad") {
            let text = std::fs::read_to_string(&path).unwrap();
            out.push((path.file_name().unwrap().to_string_lossy().into_owned(), text));
        }
    }
    assert!(!out.is_empty(), "no bundled specs found in {}", dir.display());
    out
}

#[test]
fn malformed_inputs_error_and_never_panic() {
    // Each case must produce an error from the DSL parser (and must not
    // panic in either front end).
    let cases: &[&str] = &[
        "",
        " ",
        "\n\n\n",
        "{",
        "}",
        "{{{{{{{{",
        "}}}}}}}}",
        "diagram",
        "diagram \"",
        "diagram \"X",
        "diagram \"X\"",
        "diagram \"X\" {",
        "diagram \"X\" { block }",
        "diagram \"X\" { block \"A\" { quantity = } }",
        "diagram \"X\" { block \"A\" { quantity = -1 } }",
        "diagram \"X\" { block \"A\" { quantity = 1e999 } }",
        "diagram \"X\" { block \"A\" { mtbf = 10 parsecs } }",
        "diagram \"X\" { block \"A\" { bogus_key = 1 } }",
        "diagram \"X\" { block \"A\" { redundancy { recovery = sideways } } }",
        "diagram \"X\" { block \"A\" { subdiagram \"Y\" { } }",
        "global { mission_time = }",
        "global { mission_time = \"soon\" }",
        "block \"orphan\" { quantity = 1 }",
        "diagram \"X\" { block \"A\" { quantity = 1 } } trailing garbage",
        "diagram \"X\" { block \"\u{FFFD}\u{FFFD}\" { quantity = \u{1F600} } }",
        "# only a comment",
        "= = = = =",
        "\"\"\"\"\"\"",
    ];
    for case in cases {
        parse_both(case).unwrap();
        assert!(
            SystemSpec::from_dsl(case).is_err(),
            "expected a parse error for {:?}",
            truncate(case)
        );
    }

    // Grammatically valid but hostile inputs: parse outcome is not
    // asserted, only the no-panic contract.
    let hostile: &[&str] = &["diagram \"\u{0}\" { }", "diagram \"X\" { }"];
    for case in hostile {
        parse_both(case).unwrap();
    }
}

#[test]
fn truncations_of_bundled_specs_never_panic() {
    for (name, text) in bundled_specs() {
        // Cut at every 7th byte boundary (char-aligned) to keep the
        // corpus cheap but dense.
        for end in (0..text.len()).step_by(7) {
            if text.is_char_boundary(end) {
                parse_both(&text[..end]).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }
}

#[test]
fn seeded_mutations_of_bundled_specs_never_panic() {
    const MUTANTS_PER_SPEC: usize = 200;
    let replacements: &[&str] = &["{", "}", "=", "\"", "#", "-", "9", "\u{0}", " ", "\n"];
    for (name, text) in bundled_specs() {
        let mut rng = Lcg(0x5eed_0000 + name.len() as u64);
        for i in 0..MUTANTS_PER_SPEC {
            let mut mutant = text.clone();
            // 1–3 point mutations: replace, delete, or insert.
            for _ in 0..=rng.below(3) {
                let at = loop {
                    let at = rng.below(mutant.len());
                    if mutant.is_char_boundary(at) {
                        break at;
                    }
                };
                match rng.below(3) {
                    0 => {
                        let ch = mutant[at..].chars().next().map_or(0, char::len_utf8);
                        mutant.replace_range(
                            at..at + ch,
                            replacements[rng.below(replacements.len())],
                        );
                    }
                    1 => {
                        let ch = mutant[at..].chars().next().map_or(0, char::len_utf8);
                        mutant.replace_range(at..at + ch, "");
                    }
                    _ => mutant.insert_str(at, replacements[rng.below(replacements.len())]),
                }
            }
            parse_both(&mutant).unwrap_or_else(|e| panic!("{name} mutant {i}: {e}"));
        }
    }
}

#[test]
fn bundled_specs_still_parse_clean() {
    // Guards the corpus itself: if a bundled spec stops parsing, the
    // mutation tests above would silently degrade to garbage-in tests.
    for (name, text) in bundled_specs() {
        SystemSpec::from_dsl(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
