//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Robustness: the DSL front end must never panic, whatever bytes it is
//! fed — it either parses or returns a positioned error.

use proptest::prelude::*;
use rascad_spec::SystemSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode input never panics the parser.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC*") {
        let _ = SystemSpec::from_dsl(&input);
    }

    /// Arbitrary token soup built from DSL vocabulary never panics.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("diagram"), Just("block"), Just("global"), Just("redundancy"),
                Just("subdiagram"), Just("{"), Just("}"), Just("="), Just("\"x\""),
                Just("mtbf"), Just("quantity"), Just("3"), Just("4.5"), Just("h"),
                Just("min"), Just("transparent"), Just("#c"), Just("recovery"),
            ],
            0..40,
        )
    ) {
        let input = tokens.join(" ");
        let _ = SystemSpec::from_dsl(&input);
    }

    /// Arbitrary JSON-ish input never panics the JSON loader.
    #[test]
    fn json_loader_never_panics(input in "\\PC*") {
        let _ = SystemSpec::from_json(&input);
    }

    /// Every parse error carries a plausible position.
    #[test]
    fn parse_errors_have_positions(input in "[a-z{}=\" ]{0,60}") {
        if let Err(rascad_spec::SpecError::Parse { line, column, .. }) =
            SystemSpec::from_dsl(&input)
        {
            prop_assert!(line >= 1);
            prop_assert!(column >= 1);
        }
    }
}
