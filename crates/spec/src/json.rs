//! JSON interchange for [`SystemSpec`], hand-rolled on
//! [`rascad_obs::json`].
//!
//! The wire shape matches what `#[derive(serde::Serialize)]` produces
//! for these types (unit newtypes as bare numbers, enum unit variants
//! as strings, `Option` as the value or `null`), so documents written
//! by a serde-enabled build and by this module are interchangeable.
//! Unknown object keys are ignored; missing optional fields read as
//! `None`.

use rascad_obs::json::Value;

use crate::block::{Block, BlockParams, RedundancyParams, Scenario};
use crate::diagram::{Diagram, SystemSpec};
use crate::params::GlobalParams;
use crate::units::{Fit, Hours, Minutes};
use crate::SpecError;

fn err(message: impl Into<String>) -> SpecError {
    SpecError::Json { message: message.into() }
}

pub(crate) fn spec_to_value(spec: &SystemSpec) -> Value {
    Value::Obj(vec![
        ("root".into(), diagram_to_value(&spec.root)),
        ("globals".into(), globals_to_value(&spec.globals)),
    ])
}

pub(crate) fn spec_from_value(v: &Value) -> Result<SystemSpec, SpecError> {
    Ok(SystemSpec {
        root: diagram_from_value(get(v, "root", "spec")?)?,
        globals: globals_from_value(get(v, "globals", "spec")?)?,
    })
}

fn diagram_to_value(d: &Diagram) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::from(d.name.as_str())),
        ("blocks".into(), Value::Arr(d.blocks.iter().map(block_to_value).collect())),
    ])
}

fn diagram_from_value(v: &Value) -> Result<Diagram, SpecError> {
    let blocks = get(v, "blocks", "diagram")?
        .as_array()
        .ok_or_else(|| err("diagram `blocks` must be an array"))?
        .iter()
        .map(block_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Diagram { name: str_field(v, "name", "diagram")?, blocks })
}

fn block_to_value(b: &Block) -> Value {
    Value::Obj(vec![
        ("params".into(), params_to_value(&b.params)),
        ("subdiagram".into(), b.subdiagram.as_ref().map_or(Value::Null, diagram_to_value)),
    ])
}

fn block_from_value(v: &Value) -> Result<Block, SpecError> {
    let subdiagram = match v.get("subdiagram") {
        None | Some(Value::Null) => None,
        Some(sub) => Some(diagram_from_value(sub)?),
    };
    Ok(Block { params: params_from_value(get(v, "params", "block")?)?, subdiagram })
}

fn params_to_value(p: &BlockParams) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::from(p.name.as_str())),
        ("part_number".into(), opt_str_to_value(&p.part_number)),
        ("description".into(), opt_str_to_value(&p.description)),
        ("quantity".into(), Value::from(p.quantity)),
        ("min_quantity".into(), Value::from(p.min_quantity)),
        ("mtbf".into(), Value::Num(p.mtbf.0)),
        ("transient_fit".into(), Value::Num(p.transient_fit.0)),
        ("mttr_diagnosis".into(), Value::Num(p.mttr_diagnosis.0)),
        ("mttr_corrective".into(), Value::Num(p.mttr_corrective.0)),
        ("mttr_verification".into(), Value::Num(p.mttr_verification.0)),
        ("service_response".into(), Value::Num(p.service_response.0)),
        ("p_correct_diagnosis".into(), Value::Num(p.p_correct_diagnosis)),
        ("redundancy".into(), p.redundancy.as_ref().map_or(Value::Null, redundancy_to_value)),
    ])
}

fn params_from_value(v: &Value) -> Result<BlockParams, SpecError> {
    let name = str_field(v, "name", "block params")?;
    let ctx = &format!("block `{name}`");
    let redundancy = match v.get("redundancy") {
        None | Some(Value::Null) => None,
        Some(r) => Some(redundancy_from_value(r, ctx)?),
    };
    Ok(BlockParams {
        part_number: opt_str_field(v, "part_number", ctx)?,
        description: opt_str_field(v, "description", ctx)?,
        quantity: u32_field(v, "quantity", ctx)?,
        min_quantity: u32_field(v, "min_quantity", ctx)?,
        mtbf: Hours(num_field(v, "mtbf", ctx)?),
        transient_fit: Fit(num_field(v, "transient_fit", ctx)?),
        mttr_diagnosis: Minutes(num_field(v, "mttr_diagnosis", ctx)?),
        mttr_corrective: Minutes(num_field(v, "mttr_corrective", ctx)?),
        mttr_verification: Minutes(num_field(v, "mttr_verification", ctx)?),
        service_response: Hours(num_field(v, "service_response", ctx)?),
        p_correct_diagnosis: num_field(v, "p_correct_diagnosis", ctx)?,
        redundancy,
        name,
    })
}

fn redundancy_to_value(r: &RedundancyParams) -> Value {
    Value::Obj(vec![
        ("p_latent_fault".into(), Value::Num(r.p_latent_fault)),
        ("mttdlf".into(), Value::Num(r.mttdlf.0)),
        ("recovery".into(), scenario_to_value(r.recovery)),
        ("failover_time".into(), Value::Num(r.failover_time.0)),
        ("p_spf".into(), Value::Num(r.p_spf)),
        ("spf_recovery_time".into(), Value::Num(r.spf_recovery_time.0)),
        ("repair".into(), scenario_to_value(r.repair)),
        ("reintegration_time".into(), Value::Num(r.reintegration_time.0)),
    ])
}

fn redundancy_from_value(v: &Value, ctx: &str) -> Result<RedundancyParams, SpecError> {
    Ok(RedundancyParams {
        p_latent_fault: num_field(v, "p_latent_fault", ctx)?,
        mttdlf: Hours(num_field(v, "mttdlf", ctx)?),
        recovery: scenario_from_value(get(v, "recovery", ctx)?)?,
        failover_time: Minutes(num_field(v, "failover_time", ctx)?),
        p_spf: num_field(v, "p_spf", ctx)?,
        spf_recovery_time: Minutes(num_field(v, "spf_recovery_time", ctx)?),
        repair: scenario_from_value(get(v, "repair", ctx)?)?,
        reintegration_time: Minutes(num_field(v, "reintegration_time", ctx)?),
    })
}

fn scenario_to_value(s: Scenario) -> Value {
    Value::from(match s {
        Scenario::Transparent => "Transparent",
        Scenario::Nontransparent => "Nontransparent",
    })
}

fn scenario_from_value(v: &Value) -> Result<Scenario, SpecError> {
    match v.as_str() {
        Some("Transparent") => Ok(Scenario::Transparent),
        Some("Nontransparent") => Ok(Scenario::Nontransparent),
        _ => Err(err(format!(
            "scenario must be \"Transparent\" or \"Nontransparent\", got {}",
            v.to_string_compact()
        ))),
    }
}

fn globals_to_value(g: &GlobalParams) -> Value {
    Value::Obj(vec![
        ("reboot_time".into(), Value::Num(g.reboot_time.0)),
        ("mttm".into(), Value::Num(g.mttm.0)),
        ("mttrfid".into(), Value::Num(g.mttrfid.0)),
        ("mission_time".into(), Value::Num(g.mission_time.0)),
    ])
}

fn globals_from_value(v: &Value) -> Result<GlobalParams, SpecError> {
    let ctx = "globals";
    Ok(GlobalParams {
        reboot_time: Minutes(num_field(v, "reboot_time", ctx)?),
        mttm: Hours(num_field(v, "mttm", ctx)?),
        mttrfid: Hours(num_field(v, "mttrfid", ctx)?),
        mission_time: Hours(num_field(v, "mission_time", ctx)?),
    })
}

fn get<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, SpecError> {
    if !matches!(v, Value::Obj(_)) {
        return Err(err(format!("{ctx} must be a JSON object")));
    }
    v.get(key).ok_or_else(|| err(format!("missing field `{key}` in {ctx}")))
}

fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, SpecError> {
    get(v, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| err(format!("field `{key}` in {ctx} must be a string")))
}

fn opt_str_field(v: &Value, key: &str, ctx: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(err(format!("field `{key}` in {ctx} must be a string or null"))),
    }
}

fn opt_str_to_value(s: &Option<String>) -> Value {
    s.as_deref().map_or(Value::Null, Value::from)
}

fn num_field(v: &Value, key: &str, ctx: &str) -> Result<f64, SpecError> {
    get(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| err(format!("field `{key}` in {ctx} must be a number")))
}

fn u32_field(v: &Value, key: &str, ctx: &str) -> Result<u32, SpecError> {
    get(v, key, ctx)?
        .as_i64()
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| err(format!("field `{key}` in {ctx} must be an unsigned integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SystemSpec {
        let mut sub = Diagram::new("Server Internals");
        sub.push(
            BlockParams::new("CPU Module", 4, 1)
                .with_part_number("540-1234")
                .with_description("line1\nline2 \"quoted\""),
        );
        let mut root = Diagram::new("Data Center");
        root.push_block(Block::with_subdiagram(BlockParams::new("Server Box", 1, 1), sub));
        root.push(BlockParams::new("Boot Drives", 2, 1));
        SystemSpec::new(root, GlobalParams::default())
    }

    #[test]
    fn roundtrip_preserves_spec() {
        let spec = sample_spec();
        let v = spec_to_value(&spec);
        assert_eq!(spec_from_value(&v).unwrap(), spec);
        // Through text as well, exercising escaping of the description.
        let text = v.to_string_pretty();
        let back = rascad_obs::json::parse(&text).unwrap();
        assert_eq!(spec_from_value(&back).unwrap(), spec);
    }

    #[test]
    fn missing_optional_fields_read_as_none() {
        let spec = sample_spec();
        let mut v = spec_to_value(&spec);
        // Drop "part_number" from every params object.
        fn strip(v: &mut Value) {
            match v {
                Value::Obj(o) => {
                    o.retain(|(k, _)| k != "part_number");
                    for (_, child) in o {
                        strip(child);
                    }
                }
                Value::Arr(a) => a.iter_mut().for_each(strip),
                _ => {}
            }
        }
        strip(&mut v);
        let back = spec_from_value(&v).unwrap();
        assert!(back.root.blocks.iter().all(|b| b.params.part_number.is_none()));
    }

    #[test]
    fn errors_name_field_and_context() {
        let spec = sample_spec();
        let mut v = spec_to_value(&spec);
        if let Value::Obj(o) = &mut v {
            o.retain(|(k, _)| k != "globals");
        }
        let e = spec_from_value(&v).unwrap_err();
        assert!(e.to_string().contains("globals"), "{e}");

        let bad = rascad_obs::json::parse(
            r#"{"p_latent_fault": 0, "mttdlf": 1, "recovery": "Sideways",
                "failover_time": 1, "p_spf": 0, "spf_recovery_time": 1,
                "repair": "Transparent", "reintegration_time": 1}"#,
        )
        .unwrap();
        let e = redundancy_from_value(&bad, "block `X`").unwrap_err();
        assert!(e.to_string().contains("Sideways"), "{e}");
    }
}
