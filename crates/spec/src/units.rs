//! Unit newtypes for the engineering language.
//!
//! RAScad's parameter list mixes hours (MTBF, service response), minutes
//! (MTTR parts, failover times), and FIT (transient failure rates,
//! failures per 10⁹ hours). Newtypes keep them from being confused and
//! make conversions explicit.

/// A duration in hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hours(pub f64);

/// A duration in minutes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Minutes(pub f64);

/// A failure rate in FIT (failures per 10⁹ hours).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fit(pub f64);

impl Hours {
    /// Hours in a (non-leap) year, the conversion RAScad uses for
    /// yearly-downtime reporting.
    pub const PER_YEAR: f64 = 8760.0;

    /// Converts to minutes.
    #[must_use]
    pub fn to_minutes(self) -> Minutes {
        Minutes(self.0 * 60.0)
    }

    /// The corresponding exponential rate (per hour); zero duration maps
    /// to an infinite rate and must be handled by callers.
    #[must_use]
    pub fn to_rate(self) -> f64 {
        1.0 / self.0
    }
}

impl Minutes {
    /// Converts to hours.
    #[must_use]
    pub fn to_hours(self) -> Hours {
        Hours(self.0 / 60.0)
    }
}

impl Fit {
    /// Converts a FIT value to a per-hour rate.
    #[must_use]
    pub fn to_rate_per_hour(self) -> f64 {
        self.0 * 1e-9
    }
}

impl From<Minutes> for Hours {
    fn from(m: Minutes) -> Hours {
        m.to_hours()
    }
}

impl From<Hours> for Minutes {
    fn from(h: Hours) -> Minutes {
        h.to_minutes()
    }
}

impl std::fmt::Display for Hours {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} h", self.0)
    }
}

impl std::fmt::Display for Minutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} min", self.0)
    }
}

impl std::fmt::Display for Fit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} FIT", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_minute_roundtrip() {
        let h = Hours(2.5);
        assert_eq!(h.to_minutes(), Minutes(150.0));
        assert_eq!(Minutes(150.0).to_hours(), Hours(2.5));
        assert_eq!(Hours::from(Minutes(30.0)), Hours(0.5));
        assert_eq!(Minutes::from(Hours(0.5)), Minutes(30.0));
    }

    #[test]
    fn fit_conversion() {
        // 500 FIT = 5e-7 per hour.
        assert!((Fit(500.0).to_rate_per_hour() - 5e-7).abs() < 1e-20);
    }

    #[test]
    fn rate_conversion() {
        assert!((Hours(10_000.0).to_rate() - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Hours(4.0).to_string(), "4 h");
        assert_eq!(Minutes(30.0).to_string(), "30 min");
        assert_eq!(Fit(100.0).to_string(), "100 FIT");
    }
}
