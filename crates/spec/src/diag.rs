//! Diagnostic records shared by spec validation and the lint engine.
//!
//! A [`Diagnostic`] is one finding about a specification or a model
//! generated from it: a stable `RASxxx` code, a severity, a location
//! (block path, optionally a parameter name and a DSL source line), and
//! a human-readable message. `rascad-spec` emits Tier A (spec-level)
//! diagnostics from [`crate::validate::analyze`]; the `rascad-lint`
//! crate adds Tier B (model-level) diagnostics, the code catalog, and
//! the rendering front ends.

use std::fmt;

/// How serious a finding is.
///
/// Ordered so that comparisons read naturally:
/// `Severity::Info < Severity::Warning < Severity::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advice; never affects exit codes.
    Info,
    /// Suspicious but solvable; fails `--deny warnings`.
    Warning,
    /// The spec or model is unusable; generation/solving must not run.
    Error,
}

impl Severity {
    /// Lower-case name as used in JSON output (`"error"`, `"warning"`,
    /// `"info"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, addressed to a spec location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable catalog code, e.g. `"RAS006"`. Tier A (spec analyses) use
    /// `RAS001`–`RAS099`; Tier B (generated-model analyses) use
    /// `RAS101`–`RAS199`.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Slash path to the subject block (root diagram name first), the
    /// diagram name for diagram-level findings, or `"<global>"` for
    /// global parameters.
    pub path: String,
    /// Offending parameter, when the finding is about one parameter.
    pub parameter: Option<&'static str>,
    /// 1-based line in the `.rascad` source where the subject block is
    /// declared, when the spec came from DSL text and the mapping is
    /// known (see `rascad_spec::dsl::source_map`).
    pub line: Option<usize>,
    /// 1-based column accompanying [`line`](Self::line).
    pub column: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with no parameter and no source position.
    pub fn new(
        code: &'static str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            path: path.into(),
            parameter: None,
            line: None,
            column: None,
            message: message.into(),
        }
    }

    /// Attaches a parameter name (builder style).
    #[must_use]
    pub fn with_parameter(mut self, parameter: &'static str) -> Self {
        self.parameter = Some(parameter);
        self
    }

    /// Attaches a source position (builder style).
    #[must_use]
    pub fn with_position(mut self, line: usize, column: usize) -> Self {
        self.line = Some(line);
        self.column = Some(column);
        self
    }

    /// The location rendered as `path`, `path.parameter`, or
    /// `path.parameter:line:column`, as much as is known.
    #[must_use]
    pub fn location(&self) -> String {
        let mut out = self.path.clone();
        if let Some(p) = self.parameter {
            out.push('.');
            out.push_str(p);
        }
        if let (Some(l), Some(c)) = (self.line, self.column) {
            out.push_str(&format!(":{l}:{c}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.code, self.location(), self.message)
    }
}

/// Counts findings per severity: `(errors, warnings, infos)`.
#[must_use]
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Info => counts.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_naturally() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn display_includes_code_location_message() {
        let d = Diagnostic::new("RAS006", Severity::Error, "Sys/A", "n < k")
            .with_parameter("min_quantity")
            .with_position(12, 5);
        let s = d.to_string();
        assert_eq!(s, "error[RAS006] Sys/A.min_quantity:12:5: n < k");
    }

    #[test]
    fn counts_by_severity() {
        let diags = vec![
            Diagnostic::new("RAS001", Severity::Error, "D", "x"),
            Diagnostic::new("RAS017", Severity::Warning, "D/A", "y"),
            Diagnostic::new("RAS021", Severity::Info, "D/B", "z"),
            Diagnostic::new("RAS002", Severity::Error, "D", "w"),
        ];
        assert_eq!(severity_counts(&diags), (2, 1, 1));
    }
}
