//! MG diagrams and the overall diagram/block tree.
//!
//! "An MG diagram represents a system or subsystem and contains a number
//! of MG blocks. … The overall diagram/block model is a tree structure
//! of MG diagrams and MG blocks. The root diagram is numbered level 1."
//! (paper Section 3).

use crate::block::{Block, BlockParams};
use crate::params::GlobalParams;

/// An MG diagram: a named list of blocks, modeled as a serial RBD.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Diagram {
    /// Diagram name, e.g. `"Data Center System"`.
    pub name: String,
    /// The blocks of the diagram.
    pub blocks: Vec<Block>,
}

impl Diagram {
    /// Creates an empty diagram.
    pub fn new(name: impl Into<String>) -> Self {
        Diagram { name: name.into(), blocks: Vec::new() }
    }

    /// Appends a leaf block built from parameters.
    pub fn push(&mut self, params: BlockParams) -> &mut Self {
        self.blocks.push(Block::leaf(params));
        self
    }

    /// Appends an already-built block (possibly with a subdiagram).
    pub fn push_block(&mut self, block: Block) -> &mut Self {
        self.blocks.push(block);
        self
    }

    /// Number of blocks directly in this diagram.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the diagram has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Depth of the diagram tree rooted here (a flat diagram has depth
    /// 1; the paper's Figures 1–2 model has depth 2).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self
            .blocks
            .iter()
            .filter_map(|b| b.subdiagram.as_ref().map(Diagram::depth))
            .max()
            .unwrap_or(0)
    }

    /// Total number of blocks in the tree rooted here.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.blocks.len()
            + self
                .blocks
                .iter()
                .filter_map(|b| b.subdiagram.as_ref().map(Diagram::total_blocks))
                .sum::<usize>()
    }

    /// Walks the tree depth-first, calling `f` with (level, path,
    /// block); the root diagram is level 1, matching the paper's
    /// numbering.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(usize, &str, &'a Block)) {
        self.walk_inner(1, &self.name, f);
    }

    fn walk_inner<'a>(
        &'a self,
        level: usize,
        path: &str,
        f: &mut impl FnMut(usize, &str, &'a Block),
    ) {
        for b in &self.blocks {
            let bpath = format!("{path}/{}", b.params.name);
            f(level, &bpath, b);
            if let Some(sub) = &b.subdiagram {
                sub.walk_inner(level + 1, &bpath, f);
            }
        }
    }

    /// Walks the tree depth-first with mutable access to each block
    /// (used by global parameter sweeps).
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut Block)) {
        for b in &mut self.blocks {
            f(b);
            if let Some(sub) = &mut b.subdiagram {
                sub.walk_mut(f);
            }
        }
    }

    /// Finds a block by slash-separated path relative to this diagram
    /// (not including the diagram's own name), e.g.
    /// `"Server Box/CPU Module"`.
    #[must_use]
    pub fn find(&self, path: &str) -> Option<&Block> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let block = self.blocks.iter().find(|b| b.params.name == first)?;
        let rest: Vec<&str> = parts.collect();
        if rest.is_empty() {
            Some(block)
        } else {
            block.subdiagram.as_ref()?.find(&rest.join("/"))
        }
    }

    /// Mutable variant of [`find`](Self::find).
    pub fn find_mut(&mut self, path: &str) -> Option<&mut Block> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let block = self.blocks.iter_mut().find(|b| b.params.name == first)?;
        let rest: Vec<&str> = parts.collect();
        if rest.is_empty() {
            Some(block)
        } else {
            block.subdiagram.as_mut()?.find_mut(&rest.join("/"))
        }
    }
}

/// A complete system specification: the root diagram plus the global
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemSpec {
    /// The level-1 diagram.
    pub root: Diagram,
    /// Global parameters applying to every block.
    pub globals: GlobalParams,
}

impl SystemSpec {
    /// Bundles a root diagram with global parameters.
    #[must_use]
    pub fn new(root: Diagram, globals: GlobalParams) -> Self {
        SystemSpec { root, globals }
    }

    /// Validates the whole tree; see [`crate::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError::Invalid`] carrying every diagnostic
    /// found when any error-severity finding exists.
    pub fn validate(&self) -> Result<(), crate::SpecError> {
        let mut span = rascad_obs::span("spec.validate");
        span.record("blocks", self.root.total_blocks());
        span.record("depth", self.root.depth());
        let result = crate::validate::validate(self);
        span.record("ok", result.is_ok());
        result
    }

    /// Serializes to the canonical JSON interchange form.
    ///
    /// The writer is hand-rolled (see [`crate::json`]) and emits the
    /// same document shape serde would, so it works in offline builds
    /// without the `serde` feature.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError::Json`] on serialization failure.
    pub fn to_json(&self) -> Result<String, crate::SpecError> {
        Ok(crate::json::spec_to_value(self).to_string_pretty())
    }

    /// Parses the JSON interchange form.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError::Json`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, crate::SpecError> {
        let mut span = rascad_obs::span("spec.parse_json");
        span.record("bytes", s.len());
        let value = rascad_obs::json::parse(s)
            .map_err(|e| crate::SpecError::Json { message: e.to_string() })?;
        let spec = crate::json::spec_from_value(&value)?;
        span.record("blocks", spec.root.total_blocks());
        Ok(spec)
    }

    /// Serializes to the text DSL; see [`crate::dsl`].
    #[must_use]
    pub fn to_dsl(&self) -> String {
        crate::dsl::printer::print(self)
    }

    /// Parses the text DSL.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError::Parse`] with position information.
    pub fn from_dsl(s: &str) -> Result<Self, crate::SpecError> {
        let mut span = rascad_obs::span("spec.parse_dsl");
        span.record("bytes", s.len());
        let spec = crate::dsl::parser::parse(s)?;
        span.record("blocks", spec.root.total_blocks());
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagram {
        let mut sub = Diagram::new("Server Internals");
        sub.push(BlockParams::new("CPU Module", 4, 1));
        sub.push(BlockParams::new("Memory Bank", 8, 7));
        let mut root = Diagram::new("Data Center");
        root.push_block(Block::with_subdiagram(BlockParams::new("Server Box", 1, 1), sub));
        root.push(BlockParams::new("Boot Drives", 2, 1));
        root
    }

    #[test]
    fn tree_metrics() {
        let d = sample();
        assert_eq!(d.len(), 2);
        assert_eq!(d.depth(), 2);
        assert_eq!(d.total_blocks(), 4);
    }

    #[test]
    fn walk_levels_match_paper_numbering() {
        let d = sample();
        let mut seen = Vec::new();
        d.walk(&mut |level, path, b| seen.push((level, path.to_string(), b.params.name.clone())));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (1, "Data Center/Server Box".into(), "Server Box".into()));
        assert_eq!(seen[1].0, 2); // CPU Module at level 2
        assert_eq!(seen[3], (1, "Data Center/Boot Drives".into(), "Boot Drives".into()));
    }

    #[test]
    fn find_by_path() {
        let d = sample();
        assert!(d.find("Server Box").is_some());
        assert_eq!(d.find("Server Box/CPU Module").unwrap().params.quantity, 4);
        assert!(d.find("Server Box/GPU").is_none());
        assert!(d.find("Nope").is_none());
    }

    #[test]
    fn find_mut_edits_in_place() {
        let mut d = sample();
        d.find_mut("Server Box/CPU Module").unwrap().params.quantity = 8;
        assert_eq!(d.find("Server Box/CPU Module").unwrap().params.quantity, 8);
    }

    #[test]
    fn json_roundtrip() {
        let spec = SystemSpec::new(sample(), GlobalParams::default());
        let json = spec.to_json().unwrap();
        let back = SystemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn bad_json_reports_error() {
        assert!(matches!(SystemSpec::from_json("{ not json"), Err(crate::SpecError::Json { .. })));
    }
}
