//! The MG engineering-language specification for the RAScad
//! reproduction.
//!
//! The paper's Model Generator is driven by a *diagram/block model*: a
//! tree of MG diagrams, each a set of MG blocks, each block carrying the
//! parameter list of Section 3 (MTBF, MTTR parts, redundancy, automatic
//! recovery scenario, …). This crate defines those types, validates
//! them, and provides a text DSL plus JSON serialization so models can
//! be stored and shared — the paper emphasizes "file sharing across
//! networks" as a core tool capability.
//!
//! # Example
//!
//! ```
//! use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};
//! use rascad_spec::units::{Hours, Minutes};
//!
//! # fn main() -> Result<(), rascad_spec::SpecError> {
//! let mut diagram = Diagram::new("Tiny System");
//! diagram.push(
//!     BlockParams::new("CPU", 1, 1)
//!         .with_mtbf(Hours(100_000.0))
//!         .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0)),
//! );
//! let spec = SystemSpec::new(diagram, GlobalParams::default());
//! spec.validate()?;
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod diag;
pub mod diagram;
pub mod dsl;
pub mod error;
mod json;
pub mod params;
pub mod units;
pub mod validate;

pub use block::{Block, BlockParams, RedundancyParams, Scenario};
pub use diag::{Diagnostic, Severity};
pub use diagram::{Diagram, SystemSpec};
pub use error::SpecError;
pub use params::GlobalParams;
