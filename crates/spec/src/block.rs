//! MG blocks and their parameter lists (paper Section 3).

use crate::diagram::Diagram;
use crate::units::{Fit, Hours, Minutes};

/// Recovery/repair transparency scenario.
///
/// The paper: "Depending on the redundancy and automatic recovery (AR)
/// capability … the impact of the recovery event on the user
/// applications can be transparent or nontransparent", and likewise for
/// the repair/reintegration event. The four combinations select Markov
/// Model Types 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scenario {
    /// No downtime is associated with the event.
    #[default]
    Transparent,
    /// The event incurs downtime (failover/reboot/reintegration).
    Nontransparent,
}

/// Redundancy-only parameters, "relevant only if Quantity is greater
/// than Minimum Quantity Required" (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RedundancyParams {
    /// Probability of Latent Fault (`Plf`): a permanent fault that
    /// escapes detection.
    pub p_latent_fault: f64,
    /// MTTDLF: mean time to detect a latent fault.
    pub mttdlf: Hours,
    /// Automatic Recovery scenario (transparent ⇒ no AR downtime).
    pub recovery: Scenario,
    /// AR/Failover Time: downtime associated with a nontransparent AR.
    pub failover_time: Minutes,
    /// Probability of single point of failure during AR (`Pspf`).
    pub p_spf: f64,
    /// SPF State Recovery Time (`Tspf`).
    pub spf_recovery_time: Minutes,
    /// Repair scenario (transparent ⇒ hot-pluggable with dynamic
    /// reconfiguration, no reintegration downtime).
    pub repair: Scenario,
    /// Reintegration Time: downtime associated with a nontransparent
    /// repair/reintegration.
    pub reintegration_time: Minutes,
}

impl Default for RedundancyParams {
    /// Both scenarios default to transparent, so the associated
    /// failover/reintegration durations default to zero — a transparent
    /// event has no downtime, and a nonzero duration on a transparent
    /// scenario would be ignored by the generator (and flagged by
    /// [`crate::validate::analyze`]).
    fn default() -> Self {
        RedundancyParams {
            p_latent_fault: 0.0,
            mttdlf: Hours(24.0),
            recovery: Scenario::Transparent,
            failover_time: Minutes(0.0),
            p_spf: 0.0,
            spf_recovery_time: Minutes(30.0),
            repair: Scenario::Transparent,
            reintegration_time: Minutes(0.0),
        }
    }
}

impl RedundancyParams {
    /// The Markov model type (1–4) this scenario combination selects,
    /// following the paper's numbering:
    ///
    /// 1. transparent recovery, transparent repair
    /// 2. transparent recovery, nontransparent repair
    /// 3. nontransparent recovery, transparent repair
    /// 4. nontransparent recovery, nontransparent repair
    #[must_use]
    pub fn model_type(&self) -> u8 {
        match (self.recovery, self.repair) {
            (Scenario::Transparent, Scenario::Transparent) => 1,
            (Scenario::Transparent, Scenario::Nontransparent) => 2,
            (Scenario::Nontransparent, Scenario::Transparent) => 3,
            (Scenario::Nontransparent, Scenario::Nontransparent) => 4,
        }
    }
}

/// The full per-block parameter list of paper Section 3.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockParams {
    /// Name of this component.
    pub name: String,
    /// Part number (optional bookkeeping).
    pub part_number: Option<String>,
    /// Free-form description.
    pub description: Option<String>,
    /// Quantity of this component (`N`).
    pub quantity: u32,
    /// Minimum quantity required by the system (`K`).
    pub min_quantity: u32,
    /// MTBF: mean time between failures caused by *permanent* faults,
    /// per component.
    pub mtbf: Hours,
    /// Transient failure rate per component, in FIT.
    pub transient_fit: Fit,
    /// MTTR part 1: diagnosis time.
    pub mttr_diagnosis: Minutes,
    /// MTTR part 2: corrective action time.
    pub mttr_corrective: Minutes,
    /// MTTR part 3: verification time.
    pub mttr_verification: Minutes,
    /// Service Response Time (`Tresp`).
    pub service_response: Hours,
    /// Probability of Correct Diagnosis (`Pcd`).
    pub p_correct_diagnosis: f64,
    /// Redundancy-only parameters (present iff `quantity >
    /// min_quantity`).
    pub redundancy: Option<RedundancyParams>,
}

impl BlockParams {
    /// Creates a block with the given name, quantity, and minimum
    /// quantity, and conservative defaults for everything else
    /// (100 000 h MTBF, no transient faults, 30/20/10-minute MTTR parts,
    /// 4-hour service response, perfect diagnosis). Redundant blocks
    /// (`quantity > min_quantity`) get default [`RedundancyParams`].
    pub fn new(name: impl Into<String>, quantity: u32, min_quantity: u32) -> Self {
        let redundancy =
            if quantity > min_quantity { Some(RedundancyParams::default()) } else { None };
        BlockParams {
            name: name.into(),
            part_number: None,
            description: None,
            quantity,
            min_quantity,
            mtbf: Hours(100_000.0),
            transient_fit: Fit(0.0),
            mttr_diagnosis: Minutes(30.0),
            mttr_corrective: Minutes(20.0),
            mttr_verification: Minutes(10.0),
            service_response: Hours(4.0),
            p_correct_diagnosis: 1.0,
            redundancy,
        }
    }

    /// Sets the MTBF (builder style).
    #[must_use]
    pub fn with_mtbf(mut self, mtbf: Hours) -> Self {
        self.mtbf = mtbf;
        self
    }

    /// Sets the transient failure rate in FIT (builder style).
    #[must_use]
    pub fn with_transient_fit(mut self, fit: Fit) -> Self {
        self.transient_fit = fit;
        self
    }

    /// Sets the three MTTR parts (builder style).
    #[must_use]
    pub fn with_mttr_parts(
        mut self,
        diagnosis: Minutes,
        corrective: Minutes,
        verification: Minutes,
    ) -> Self {
        self.mttr_diagnosis = diagnosis;
        self.mttr_corrective = corrective;
        self.mttr_verification = verification;
        self
    }

    /// Sets the service response time (builder style).
    #[must_use]
    pub fn with_service_response(mut self, t: Hours) -> Self {
        self.service_response = t;
        self
    }

    /// Sets the probability of correct diagnosis (builder style).
    #[must_use]
    pub fn with_p_correct_diagnosis(mut self, p: f64) -> Self {
        self.p_correct_diagnosis = p;
        self
    }

    /// Sets the redundancy parameters (builder style).
    #[must_use]
    pub fn with_redundancy(mut self, r: RedundancyParams) -> Self {
        self.redundancy = Some(r);
        self
    }

    /// Sets the part number (builder style).
    #[must_use]
    pub fn with_part_number(mut self, pn: impl Into<String>) -> Self {
        self.part_number = Some(pn.into());
        self
    }

    /// Sets the description (builder style).
    #[must_use]
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = Some(d.into());
        self
    }

    /// Whether the block is redundant (`N > K`).
    #[must_use]
    pub fn is_redundant(&self) -> bool {
        self.quantity > self.min_quantity
    }

    /// The redundancy margin `M = N − K`.
    #[must_use]
    pub fn margin(&self) -> u32 {
        self.quantity.saturating_sub(self.min_quantity)
    }

    /// Per-component permanent failure rate, `1/MTBF` (per hour).
    #[must_use]
    pub fn permanent_rate(&self) -> f64 {
        1.0 / self.mtbf.0
    }

    /// Per-component transient failure rate (per hour) from the FIT
    /// value.
    #[must_use]
    pub fn transient_rate(&self) -> f64 {
        self.transient_fit.to_rate_per_hour()
    }

    /// Total MTTR (diagnosis + corrective action + verification), in
    /// hours.
    #[must_use]
    pub fn mttr_total(&self) -> Hours {
        Hours((self.mttr_diagnosis.0 + self.mttr_corrective.0 + self.mttr_verification.0) / 60.0)
    }
}

/// An MG block: a parameter list plus an optional subdiagram modeling
/// the component's internals.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Block {
    /// The engineering parameters of this component.
    pub params: BlockParams,
    /// Subdiagram refining this component (dark-colored blocks in the
    /// paper's Figures 1–2).
    pub subdiagram: Option<Diagram>,
}

impl Block {
    /// Wraps parameters into a leaf block (no subdiagram).
    #[must_use]
    pub fn leaf(params: BlockParams) -> Self {
        Block { params, subdiagram: None }
    }

    /// Wraps parameters with a subdiagram.
    #[must_use]
    pub fn with_subdiagram(params: BlockParams, sub: Diagram) -> Self {
        Block { params, subdiagram: Some(sub) }
    }

    /// Whether this block is refined by a subdiagram.
    #[must_use]
    pub fn has_subdiagram(&self) -> bool {
        self.subdiagram.is_some()
    }
}

impl From<BlockParams> for Block {
    fn from(params: BlockParams) -> Block {
        Block::leaf(params)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn model_type_numbering_matches_paper() {
        let mut r = RedundancyParams {
            recovery: Scenario::Transparent,
            repair: Scenario::Transparent,
            ..Default::default()
        };
        assert_eq!(r.model_type(), 1);
        r.repair = Scenario::Nontransparent;
        assert_eq!(r.model_type(), 2);
        r.recovery = Scenario::Nontransparent;
        r.repair = Scenario::Transparent;
        assert_eq!(r.model_type(), 3);
        r.repair = Scenario::Nontransparent;
        assert_eq!(r.model_type(), 4);
    }

    #[test]
    fn new_block_defaults() {
        let b = BlockParams::new("CPU", 1, 1);
        assert!(!b.is_redundant());
        assert!(b.redundancy.is_none());
        assert_eq!(b.margin(), 0);
        let r = BlockParams::new("PSU", 3, 2);
        assert!(r.is_redundant());
        assert!(r.redundancy.is_some());
        assert_eq!(r.margin(), 1);
    }

    #[test]
    fn derived_rates() {
        let b = BlockParams::new("X", 1, 1)
            .with_mtbf(Hours(50_000.0))
            .with_transient_fit(Fit(2_000.0))
            .with_mttr_parts(Minutes(30.0), Minutes(20.0), Minutes(10.0));
        assert!((b.permanent_rate() - 2e-5).abs() < 1e-18);
        assert!((b.transient_rate() - 2e-6).abs() < 1e-18);
        assert_eq!(b.mttr_total(), Hours(1.0));
    }

    #[test]
    fn builder_chain() {
        let b = BlockParams::new("Disk", 2, 1)
            .with_part_number("540-1234")
            .with_description("boot drive")
            .with_service_response(Hours(2.0))
            .with_p_correct_diagnosis(0.95);
        assert_eq!(b.part_number.as_deref(), Some("540-1234"));
        assert_eq!(b.service_response, Hours(2.0));
        assert_eq!(b.p_correct_diagnosis, 0.95);
    }

    #[test]
    fn block_from_params() {
        let b: Block = BlockParams::new("A", 1, 1).into();
        assert!(!b.has_subdiagram());
    }
}
