//! Global parameters of a diagram/block model.
//!
//! The paper (Section 3) lists four global parameters shown on the
//! Global Parameter Bar; they apply to every block in the model.

use crate::units::{Hours, Minutes};

/// Global parameters applying to every block (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GlobalParams {
    /// Reboot Time (`Tboot`): time to reboot the system.
    pub reboot_time: Minutes,
    /// MTTM: mean time to maintenance, a.k.a. service restriction time —
    /// the average waiting time before the service call for a redundant
    /// component whose repair can be deferred to off-peak hours.
    pub mttm: Hours,
    /// MTTRFID: mean time to repair from incorrect diagnosis (the long
    /// downtime entered when a service action replaced the wrong part).
    pub mttrfid: Hours,
    /// Mission Time: the horizon used for interval availability and
    /// reliability measures.
    pub mission_time: Hours,
}

impl Default for GlobalParams {
    /// Defaults representative of the paper's enterprise-server setting:
    /// 8-minute reboot, 48-hour deferred-maintenance window, 8-hour
    /// repair-from-incorrect-diagnosis, one-year mission.
    fn default() -> Self {
        GlobalParams {
            reboot_time: Minutes(8.0),
            mttm: Hours(48.0),
            mttrfid: Hours(8.0),
            mission_time: Hours(Hours::PER_YEAR),
        }
    }
}

impl GlobalParams {
    /// Validates ranges (all durations non-negative and finite, mission
    /// time positive).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SpecError::InvalidParameter`] naming the bad
    /// field.
    pub fn validate(&self) -> Result<(), crate::SpecError> {
        let check = |v: f64, parameter: &'static str, must_be_positive: bool| {
            let ok = v.is_finite() && if must_be_positive { v > 0.0 } else { v >= 0.0 };
            if ok {
                Ok(())
            } else {
                Err(crate::SpecError::InvalidParameter {
                    block: "<global>".into(),
                    parameter,
                    message: format!("value {v} out of range"),
                })
            }
        };
        check(self.reboot_time.0, "reboot_time", false)?;
        check(self.mttm.0, "mttm", false)?;
        check(self.mttrfid.0, "mttrfid", false)?;
        check(self.mission_time.0, "mission_time", true)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        GlobalParams::default().validate().unwrap();
    }

    #[test]
    fn negative_duration_rejected() {
        let g = GlobalParams { mttm: Hours(-1.0), ..Default::default() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn zero_mission_time_rejected() {
        let g = GlobalParams { mission_time: Hours(0.0), ..Default::default() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn zero_reboot_is_fine() {
        let g = GlobalParams { reboot_time: Minutes(0.0), ..Default::default() };
        g.validate().unwrap();
    }
}
