//! Recursive-descent parser for the `.rascad` DSL.

use crate::block::{Block, BlockParams, RedundancyParams, Scenario};
use crate::diagram::{Diagram, SystemSpec};
use crate::dsl::lexer::{lex, Token, TokenKind};
use crate::error::SpecError;
use crate::params::GlobalParams;
use crate::units::{Fit, Hours, Minutes};

/// Parses DSL source into a [`SystemSpec`].
///
/// # Errors
///
/// Returns [`SpecError::Parse`] with source position on syntax errors,
/// unknown keys, or values of the wrong type.
pub fn parse(src: &str) -> Result<SystemSpec, SpecError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let spec = p.spec()?;
    p.expect_eof()?;
    Ok(spec)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// A parsed right-hand-side value.
enum Value {
    Number(f64),
    /// Number with an explicit duration unit (kept as written so that
    /// round-tripping is bit-exact).
    Duration(f64, DurationUnit),
    Str(String),
    Word(String),
}

#[derive(Clone, Copy)]
enum DurationUnit {
    Hours,
    Minutes,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SpecError> {
        let t = self.peek();
        Err(SpecError::Parse { line: t.line, column: t.column, message: message.into() })
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), SpecError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == word => {
                self.next();
                Ok(())
            }
            other => self.error(format!("expected `{word}`, found {other}")),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), SpecError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            self.next();
            Ok(())
        } else {
            let found = self.peek().kind.clone();
            self.error(format!("expected {what}, found {found}"))
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, SpecError> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.next();
                Ok(s)
            }
            other => self.error(format!("expected {what} string, found {other}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SpecError> {
        match &self.peek().kind {
            TokenKind::Eof => Ok(()),
            other => self.error(format!("expected end of input, found {other}")),
        }
    }

    fn spec(&mut self) -> Result<SystemSpec, SpecError> {
        let mut globals = GlobalParams::default();
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "global") {
            self.next();
            self.global_block(&mut globals)?;
        }
        self.expect_ident("diagram")?;
        let root = self.diagram_body()?;
        Ok(SystemSpec::new(root, globals))
    }

    fn global_block(&mut self, g: &mut GlobalParams) -> Result<(), SpecError> {
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.next();
                    return Ok(());
                }
                TokenKind::Ident(key) => {
                    self.next();
                    self.expect_kind(&TokenKind::Eq, "`=`")?;
                    let value = self.value()?;
                    match key.as_str() {
                        "reboot_time" => g.reboot_time = self.duration_minutes(&key, value)?,
                        "mttm" => g.mttm = self.duration_hours(&key, value)?,
                        "mttrfid" => g.mttrfid = self.duration_hours(&key, value)?,
                        "mission_time" => g.mission_time = self.duration_hours(&key, value)?,
                        _ => return self.error(format!("unknown global parameter `{key}`")),
                    }
                }
                other => return self.error(format!("expected parameter or `}}`, found {other}")),
            }
        }
    }

    fn diagram_body(&mut self) -> Result<Diagram, SpecError> {
        let name = self.expect_string("diagram name")?;
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut d = Diagram::new(name);
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.next();
                    return Ok(d);
                }
                TokenKind::Ident(s) if s == "block" => {
                    self.next();
                    let b = self.block()?;
                    d.push_block(b);
                }
                other => return self.error(format!("expected `block` or `}}`, found {other}")),
            }
        }
    }

    fn block(&mut self) -> Result<Block, SpecError> {
        let name = self.expect_string("block name")?;
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut params = BlockParams::new(name, 1, 1);
        params.redundancy = None;
        let mut subdiagram = None;
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.next();
                    // Auto-provision defaults when the block is redundant
                    // but no redundancy section was written.
                    if params.is_redundant() && params.redundancy.is_none() {
                        params.redundancy = Some(RedundancyParams::default());
                    }
                    return Ok(Block { params, subdiagram });
                }
                TokenKind::Ident(s) if s == "redundancy" => {
                    self.next();
                    let r = self.redundancy_block()?;
                    params.redundancy = Some(r);
                }
                TokenKind::Ident(s) if s == "subdiagram" => {
                    self.next();
                    subdiagram = Some(self.diagram_body()?);
                }
                TokenKind::Ident(key) => {
                    self.next();
                    self.expect_kind(&TokenKind::Eq, "`=`")?;
                    let value = self.value()?;
                    self.apply_block_entry(&mut params, &key, value)?;
                }
                other => {
                    return self.error(format!(
                        "expected parameter, `redundancy`, `subdiagram`, or `}}`, found {other}"
                    ));
                }
            }
        }
    }

    fn apply_block_entry(
        &self,
        p: &mut BlockParams,
        key: &str,
        value: Value,
    ) -> Result<(), SpecError> {
        match key {
            "part_number" => p.part_number = Some(self.string_value(key, value)?),
            "description" => p.description = Some(self.string_value(key, value)?),
            "quantity" => p.quantity = self.count_value(key, value)?,
            "min_quantity" => p.min_quantity = self.count_value(key, value)?,
            "mtbf" => p.mtbf = self.duration_hours(key, value)?,
            "transient_fit" => p.transient_fit = Fit(self.number_value(key, value)?),
            "mttr_diagnosis" => p.mttr_diagnosis = self.duration_minutes(key, value)?,
            "mttr_corrective" => p.mttr_corrective = self.duration_minutes(key, value)?,
            "mttr_verification" => p.mttr_verification = self.duration_minutes(key, value)?,
            "service_response" => p.service_response = self.duration_hours(key, value)?,
            "p_correct_diagnosis" => p.p_correct_diagnosis = self.number_value(key, value)?,
            _ => return self.error(format!("unknown block parameter `{key}`")),
        }
        Ok(())
    }

    fn redundancy_block(&mut self) -> Result<RedundancyParams, SpecError> {
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut r = RedundancyParams::default();
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.next();
                    return Ok(r);
                }
                TokenKind::Ident(key) => {
                    self.next();
                    self.expect_kind(&TokenKind::Eq, "`=`")?;
                    let value = self.value()?;
                    match key.as_str() {
                        "p_latent" => r.p_latent_fault = self.number_value(&key, value)?,
                        "mttdlf" => r.mttdlf = self.duration_hours(&key, value)?,
                        "recovery" => r.recovery = self.scenario_value(&key, value)?,
                        "failover_time" => r.failover_time = self.duration_minutes(&key, value)?,
                        "p_spf" => r.p_spf = self.number_value(&key, value)?,
                        "spf_recovery_time" => {
                            r.spf_recovery_time = self.duration_minutes(&key, value)?;
                        }
                        "repair" => r.repair = self.scenario_value(&key, value)?,
                        "reintegration_time" => {
                            r.reintegration_time = self.duration_minutes(&key, value)?;
                        }
                        _ => return self.error(format!("unknown redundancy parameter `{key}`")),
                    }
                }
                other => return self.error(format!("expected parameter or `}}`, found {other}")),
            }
        }
    }

    fn value(&mut self) -> Result<Value, SpecError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.next();
                // Optional unit suffix.
                if let TokenKind::Ident(u) = self.peek().kind.clone() {
                    match u.as_str() {
                        "h" | "hr" | "hours" => {
                            self.next();
                            return Ok(Value::Duration(n, DurationUnit::Hours));
                        }
                        "min" | "minutes" => {
                            self.next();
                            return Ok(Value::Duration(n, DurationUnit::Minutes));
                        }
                        "fit" | "FIT" => {
                            self.next();
                            return Ok(Value::Number(n));
                        }
                        _ => {}
                    }
                }
                Ok(Value::Number(n))
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(Value::Str(s))
            }
            TokenKind::Ident(s) => {
                self.next();
                Ok(Value::Word(s))
            }
            other => self.error(format!("expected a value, found {other}")),
        }
    }

    fn number_value(&self, key: &str, v: Value) -> Result<f64, SpecError> {
        match v {
            Value::Number(n) => Ok(n),
            _ => self.error(format!("parameter `{key}` expects a plain number")),
        }
    }

    fn count_value(&self, key: &str, v: Value) -> Result<u32, SpecError> {
        match v {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= f64::from(u32::MAX) => {
                Ok(n as u32)
            }
            _ => self.error(format!("parameter `{key}` expects a non-negative integer")),
        }
    }

    fn string_value(&self, key: &str, v: Value) -> Result<String, SpecError> {
        match v {
            Value::Str(s) => Ok(s),
            _ => self.error(format!("parameter `{key}` expects a string")),
        }
    }

    fn duration_hours(&self, key: &str, v: Value) -> Result<Hours, SpecError> {
        match v {
            Value::Duration(n, DurationUnit::Hours) => Ok(Hours(n)),
            Value::Duration(n, DurationUnit::Minutes) => Ok(Minutes(n).to_hours()),
            // A bare number takes the field's native unit (hours here).
            Value::Number(n) => Ok(Hours(n)),
            _ => self.error(format!("parameter `{key}` expects a duration")),
        }
    }

    fn duration_minutes(&self, key: &str, v: Value) -> Result<Minutes, SpecError> {
        match v {
            Value::Duration(n, DurationUnit::Minutes) => Ok(Minutes(n)),
            Value::Duration(n, DurationUnit::Hours) => Ok(Hours(n).to_minutes()),
            // A bare number takes the field's native unit (minutes here).
            Value::Number(n) => Ok(Minutes(n)),
            _ => self.error(format!("parameter `{key}` expects a duration")),
        }
    }

    fn scenario_value(&self, key: &str, v: Value) -> Result<Scenario, SpecError> {
        match v {
            Value::Word(w) if w == "transparent" => Ok(Scenario::Transparent),
            Value::Word(w) if w == "nontransparent" => Ok(Scenario::Nontransparent),
            _ => self.error(format!("parameter `{key}` expects `transparent` or `nontransparent`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A small two-level model.
global {
    reboot_time = 8 min
    mttm = 48 h
    mttrfid = 8 h
    mission_time = 8760 h
}

diagram "Data Center" {
    block "Server Box" {
        quantity = 1
        min_quantity = 1
        mtbf = 10000 h
        transient_fit = 500
        mttr_diagnosis = 30 min
        mttr_corrective = 20 min
        mttr_verification = 10 min
        service_response = 4 h
        p_correct_diagnosis = 0.98
        subdiagram "Server Internals" {
            block "CPU Module" {
                quantity = 4
                min_quantity = 3
                mtbf = 500000 h
                redundancy {
                    p_latent = 0.05
                    mttdlf = 24 h
                    recovery = nontransparent
                    failover_time = 5 min
                    p_spf = 0.01
                    spf_recovery_time = 10 min
                    repair = transparent
                    reintegration_time = 0 min
                }
            }
        }
    }
    block "Boot Drives" {
        quantity = 2
        min_quantity = 1
        mtbf = 300000 h
    }
}
"#;

    #[test]
    fn parses_sample() {
        let spec = parse(SAMPLE).unwrap();
        assert_eq!(spec.root.name, "Data Center");
        assert_eq!(spec.root.blocks.len(), 2);
        assert_eq!(spec.globals.mttm, Hours(48.0));
        assert_eq!(spec.globals.reboot_time, Minutes(8.0));
        let cpu = spec.root.find("Server Box/CPU Module").unwrap();
        assert_eq!(cpu.params.quantity, 4);
        let r = cpu.params.redundancy.unwrap();
        assert_eq!(r.recovery, Scenario::Nontransparent);
        assert_eq!(r.repair, Scenario::Transparent);
        assert_eq!(r.failover_time, Minutes(5.0));
        spec.validate().unwrap();
    }

    #[test]
    fn redundant_block_without_section_gets_defaults() {
        let spec = parse(SAMPLE).unwrap();
        let drives = spec.root.find("Boot Drives").unwrap();
        assert!(drives.params.redundancy.is_some());
    }

    #[test]
    fn unit_conversion_in_both_directions() {
        let text = r#"
diagram "D" {
    block "B" {
        quantity = 1
        min_quantity = 1
        mtbf = 120 min
        mttr_diagnosis = 1 h
    }
}
"#;
        let spec = parse(text).unwrap();
        let b = spec.root.find("B").unwrap();
        assert_eq!(b.params.mtbf, Hours(2.0));
        assert_eq!(b.params.mttr_diagnosis, Minutes(60.0));
    }

    #[test]
    fn bare_numbers_take_native_units() {
        let text = r#"
diagram "D" {
    block "B" {
        mtbf = 5000
        mttr_diagnosis = 45
    }
}
"#;
        let spec = parse(text).unwrap();
        let b = spec.root.find("B").unwrap();
        assert_eq!(b.params.mtbf, Hours(5000.0));
        assert_eq!(b.params.mttr_diagnosis, Minutes(45.0));
    }

    #[test]
    fn missing_global_uses_defaults() {
        let spec = parse("diagram \"D\" { block \"B\" { } }").unwrap();
        assert_eq!(spec.globals, GlobalParams::default());
    }

    #[test]
    fn unknown_key_is_an_error_with_position() {
        let err = parse("diagram \"D\" { block \"B\" { bogus = 1 } }").unwrap_err();
        match err {
            SpecError::Parse { message, .. } => assert!(message.contains("bogus")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_report_position() {
        let err = parse("diagram \"D\" block").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }));
        let err = parse("diagram \"D\" { block \"B\" { quantity 2 } }").unwrap_err();
        assert!(matches!(err, SpecError::Parse { .. }));
    }

    #[test]
    fn scenario_values_validated() {
        let err =
            parse("diagram \"D\" { block \"B\" { quantity = 2 min_quantity = 1 redundancy { recovery = sideways } } }")
                .unwrap_err();
        match err {
            SpecError::Parse { message, .. } => assert!(message.contains("transparent")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("diagram \"D\" { } extra").is_err());
    }

    #[test]
    fn fractional_quantity_rejected() {
        assert!(parse("diagram \"D\" { block \"B\" { quantity = 1.5 } }").is_err());
    }
}
