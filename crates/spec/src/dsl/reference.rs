//! Generated parameter reference — the engineering-language manual.
//!
//! RAScad lists "documentation generation" among its features; this
//! module renders the complete DSL parameter reference (the content of
//! paper Section 3) as Markdown, so the manual can never drift from the
//! implementation.

/// One documented DSL parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParameterDoc {
    /// DSL key.
    pub key: &'static str,
    /// Section of the grammar the key belongs to.
    pub section: Section,
    /// Value type/unit as written in the DSL.
    pub value: &'static str,
    /// Paper symbol, if the paper names one.
    pub symbol: Option<&'static str>,
    /// One-line description (paraphrasing paper Section 3).
    pub description: &'static str,
}

/// DSL grammar section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `global { … }`.
    Global,
    /// `block "…" { … }`.
    Block,
    /// `redundancy { … }`.
    Redundancy,
}

/// The full parameter table, in grammar order.
pub const PARAMETERS: &[ParameterDoc] = &[
    ParameterDoc {
        key: "reboot_time",
        section: Section::Global,
        value: "duration (min)",
        symbol: Some("Tboot"),
        description: "time to reboot the system after a transient fault",
    },
    ParameterDoc {
        key: "mttm",
        section: Section::Global,
        value: "duration (h)",
        symbol: Some("MTTM"),
        description:
            "mean time to maintenance (service restriction time) before a deferred service call",
    },
    ParameterDoc {
        key: "mttrfid",
        section: Section::Global,
        value: "duration (h)",
        symbol: Some("MTTRFID"),
        description: "mean time to repair from an incorrect diagnosis",
    },
    ParameterDoc {
        key: "mission_time",
        section: Section::Global,
        value: "duration (h)",
        symbol: Some("T"),
        description: "horizon for interval availability and reliability measures",
    },
    ParameterDoc {
        key: "part_number",
        section: Section::Block,
        value: "string",
        symbol: None,
        description: "part number of this component",
    },
    ParameterDoc {
        key: "description",
        section: Section::Block,
        value: "string",
        symbol: None,
        description: "free-form description",
    },
    ParameterDoc {
        key: "quantity",
        section: Section::Block,
        value: "integer",
        symbol: Some("N"),
        description: "quantity of this component",
    },
    ParameterDoc {
        key: "min_quantity",
        section: Section::Block,
        value: "integer",
        symbol: Some("K"),
        description: "minimum quantity required by the system",
    },
    ParameterDoc {
        key: "mtbf",
        section: Section::Block,
        value: "duration (h)",
        symbol: Some("MTBF"),
        description: "mean time between permanent faults, per component",
    },
    ParameterDoc {
        key: "transient_fit",
        section: Section::Block,
        value: "number (FIT)",
        symbol: Some("λt"),
        description: "transient failure rate in failures per 10^9 hours",
    },
    ParameterDoc {
        key: "mttr_diagnosis",
        section: Section::Block,
        value: "duration (min)",
        symbol: Some("MTTR part 1"),
        description: "time to identify the failed component",
    },
    ParameterDoc {
        key: "mttr_corrective",
        section: Section::Block,
        value: "duration (min)",
        symbol: Some("MTTR part 2"),
        description: "time to replace the failed component",
    },
    ParameterDoc {
        key: "mttr_verification",
        section: Section::Block,
        value: "duration (min)",
        symbol: Some("MTTR part 3"),
        description: "time to verify the new component or restore lost data",
    },
    ParameterDoc {
        key: "service_response",
        section: Section::Block,
        value: "duration (h)",
        symbol: Some("Tresp"),
        description: "time for service personnel to arrive",
    },
    ParameterDoc {
        key: "p_correct_diagnosis",
        section: Section::Block,
        value: "probability",
        symbol: Some("Pcd"),
        description: "probability of correctly identifying and replacing the faulty component",
    },
    ParameterDoc {
        key: "p_latent",
        section: Section::Redundancy,
        value: "probability",
        symbol: Some("Plf"),
        description: "probability a permanent fault escapes detection",
    },
    ParameterDoc {
        key: "mttdlf",
        section: Section::Redundancy,
        value: "duration (h)",
        symbol: Some("MTTDLF"),
        description: "mean time to detect a latent fault",
    },
    ParameterDoc {
        key: "recovery",
        section: Section::Redundancy,
        value: "transparent | nontransparent",
        symbol: Some("AR scenario"),
        description: "whether automatic recovery incurs downtime",
    },
    ParameterDoc {
        key: "failover_time",
        section: Section::Redundancy,
        value: "duration (min)",
        symbol: Some("Tfo"),
        description: "downtime of a nontransparent automatic recovery",
    },
    ParameterDoc {
        key: "p_spf",
        section: Section::Redundancy,
        value: "probability",
        symbol: Some("Pspf"),
        description: "probability of a single point of failure during recovery",
    },
    ParameterDoc {
        key: "spf_recovery_time",
        section: Section::Redundancy,
        value: "duration (min)",
        symbol: Some("Tspf"),
        description: "recovery time spent in the SPF state",
    },
    ParameterDoc {
        key: "repair",
        section: Section::Redundancy,
        value: "transparent | nontransparent",
        symbol: Some("repair scenario"),
        description: "whether repair/reintegration incurs downtime",
    },
    ParameterDoc {
        key: "reintegration_time",
        section: Section::Redundancy,
        value: "duration (min)",
        symbol: Some("Treint"),
        description: "downtime of a nontransparent reintegration",
    },
];

/// Renders the reference as a Markdown document.
#[must_use]
pub fn markdown() -> String {
    let mut out = String::from("# `.rascad` parameter reference\n");
    for (section, title) in [
        (Section::Global, "## `global { … }`"),
        (Section::Block, "## `block \"name\" { … }`"),
        (Section::Redundancy, "## `redundancy { … }` (only when quantity > min_quantity)"),
    ] {
        out.push('\n');
        out.push_str(title);
        out.push_str("\n\n| key | value | paper symbol | description |\n|---|---|---|---|\n");
        for p in PARAMETERS.iter().filter(|p| p.section == section) {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                p.key,
                p.value,
                p.symbol.unwrap_or("—"),
                p.description
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::SystemSpec;

    /// Every documented key must be accepted by the parser, in its
    /// documented section — the reference cannot drift.
    #[test]
    fn documented_keys_parse() {
        for p in PARAMETERS {
            let value = match p.value {
                "string" => "\"x\"".to_string(),
                "integer" => "1".to_string(),
                "probability" => "0.5".to_string(),
                v if v.contains("FIT") => "500".to_string(),
                v if v.contains("transparent") => "transparent".to_string(),
                v if v.contains("min") => "5 min".to_string(),
                _ => "5 h".to_string(),
            };
            let text = match p.section {
                Section::Global => format!(
                    "global {{ {} = {} }} diagram \"D\" {{ block \"B\" {{ }} }}",
                    p.key, value
                ),
                Section::Block => format!(
                    "diagram \"D\" {{ block \"B\" {{ {} = {} }} }}",
                    p.key, value
                ),
                Section::Redundancy => format!(
                    "diagram \"D\" {{ block \"B\" {{ quantity = 2 min_quantity = 1 redundancy {{ {} = {} }} }} }}",
                    p.key, value
                ),
            };
            SystemSpec::from_dsl(&text).unwrap_or_else(|e| panic!("{}: {e}", p.key));
        }
    }

    #[test]
    fn markdown_contains_every_key() {
        let md = markdown();
        for p in PARAMETERS {
            assert!(md.contains(p.key), "missing {}", p.key);
        }
        assert!(md.contains("Tresp"));
        assert!(md.contains("## `global"));
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<_> = PARAMETERS.iter().map(|p| p.key).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }
}
