//! Maps block paths back to `.rascad` source positions.
//!
//! Diagnostics from [`crate::validate::analyze`] address blocks by
//! slash path. When the spec came from DSL text, the lint front end
//! wants to point at the line where the offending block is declared.
//! [`block_positions`] re-lexes the source and records, for every
//! block (and the root diagram), the position of its name token;
//! [`annotate`] stamps those positions onto a diagnostic list.

use std::collections::HashMap;

use crate::diag::Diagnostic;
use crate::dsl::lexer::{lex, Token, TokenKind};

/// Scans DSL source and returns `path -> (line, column)` for the root
/// diagram and every block, first declaration wins. Returns an empty
/// map when the source does not lex (the caller has already parsed it,
/// so this only happens for non-DSL input).
pub fn block_positions(src: &str) -> HashMap<String, (usize, usize)> {
    let Ok(tokens) = lex(src) else {
        return HashMap::new();
    };
    let mut map = HashMap::new();
    // What the next string token names, set by the preceding keyword.
    #[derive(Clone, Copy)]
    enum Pending {
        None,
        Diagram,
        Block,
        Subdiagram,
    }
    let mut pending = Pending::None;
    // Path prefixes: the root diagram name, then enclosing block paths
    // for subdiagram scopes.
    let mut prefixes: Vec<String> = Vec::new();
    // Set when a diagram/subdiagram header was seen: the prefix its
    // `{` will push.
    let mut prefix_for_next_brace: Option<String> = None;
    // For each open `{`, whether its `}` pops a prefix.
    let mut braces: Vec<bool> = Vec::new();
    let mut last_block_path = String::new();

    for Token { kind, line, column } in tokens {
        match kind {
            TokenKind::Ident(word) => {
                pending = match word.as_str() {
                    "diagram" if prefixes.is_empty() => Pending::Diagram,
                    "block" => Pending::Block,
                    "subdiagram" => Pending::Subdiagram,
                    _ => Pending::None,
                };
            }
            TokenKind::Str(name) => {
                match pending {
                    Pending::Diagram => {
                        map.entry(name.clone()).or_insert((line, column));
                        prefix_for_next_brace = Some(name);
                    }
                    Pending::Block => {
                        let prefix = prefixes.last().map(String::as_str).unwrap_or("");
                        let path = format!("{prefix}/{name}");
                        map.entry(path.clone()).or_insert((line, column));
                        last_block_path = path;
                    }
                    Pending::Subdiagram => {
                        // The subdiagram's blocks are addressed under
                        // the enclosing block's path.
                        prefix_for_next_brace = Some(last_block_path.clone());
                    }
                    Pending::None => {}
                }
                pending = Pending::None;
            }
            TokenKind::LBrace => {
                if let Some(prefix) = prefix_for_next_brace.take() {
                    prefixes.push(prefix);
                    braces.push(true);
                } else {
                    braces.push(false);
                }
            }
            TokenKind::RBrace if braces.pop() == Some(true) => {
                prefixes.pop();
            }
            _ => {}
        }
    }
    map
}

/// Fills `line`/`column` on every diagnostic whose path is declared in
/// `src`. Diagnostics without a matching declaration (e.g. `<global>`
/// findings when no `global` section exists) are left untouched.
pub fn annotate(diagnostics: &mut [Diagnostic], src: &str) {
    let map = block_positions(src);
    for d in diagnostics {
        if let Some(&(line, column)) = map.get(&d.path) {
            d.line = Some(line);
            d.column = Some(column);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    const SRC: &str = r#"
diagram "Sys" {
    block "A" {
        quantity = 2
        min_quantity = 1
        subdiagram "Inner" {
            block "B" {
                mtbf = 100 h
            }
        }
    }
    block "C" { }
}
"#;

    #[test]
    fn maps_root_and_nested_blocks() {
        let map = block_positions(SRC);
        assert_eq!(map.get("Sys").copied(), Some((2, 9)));
        assert_eq!(map.get("Sys/A").copied(), Some((3, 11)));
        assert_eq!(map.get("Sys/A/B").copied(), Some((7, 19)));
        assert_eq!(map.get("Sys/C").copied(), Some((12, 11)));
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn annotate_fills_known_paths_only() {
        let mut diags = vec![
            Diagnostic::new("RAS007", Severity::Error, "Sys/A/B", "x"),
            Diagnostic::new("RAS015", Severity::Error, "<global>", "y"),
        ];
        annotate(&mut diags, SRC);
        assert_eq!(diags[0].line, Some(7));
        assert_eq!(diags[1].line, None);
    }

    #[test]
    fn non_dsl_input_yields_empty_map() {
        assert!(block_positions("{ \"json\": true }").is_empty());
        // Unterminated string: must not panic.
        let _ = block_positions("diagram \"oops");
    }
}
