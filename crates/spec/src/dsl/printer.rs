//! Pretty-printer for the `.rascad` DSL.
//!
//! `parse(print(spec)) == spec` — the printer emits every field
//! explicitly (no reliance on parser defaults), so round-tripping is
//! exact up to floating-point formatting, which Rust's shortest-
//! roundtrip `{}` formatting makes lossless.

use std::fmt::Write as _;

use crate::block::{Block, RedundancyParams, Scenario};
use crate::diagram::{Diagram, SystemSpec};

/// Renders a specification as DSL text.
#[must_use]
pub fn print(spec: &SystemSpec) -> String {
    let mut out = String::new();
    let g = &spec.globals;
    out.push_str("global {\n");
    let _ = writeln!(out, "    reboot_time = {} min", g.reboot_time.0);
    let _ = writeln!(out, "    mttm = {} h", g.mttm.0);
    let _ = writeln!(out, "    mttrfid = {} h", g.mttrfid.0);
    let _ = writeln!(out, "    mission_time = {} h", g.mission_time.0);
    out.push_str("}\n\n");
    print_diagram(&mut out, &spec.root, "diagram", 0);
    out
}

fn print_diagram(out: &mut String, d: &Diagram, keyword: &str, indent: usize) {
    let pad = "    ".repeat(indent);
    let _ = writeln!(out, "{pad}{keyword} \"{}\" {{", escape(&d.name));
    for b in &d.blocks {
        print_block(out, b, indent + 1);
    }
    let _ = writeln!(out, "{pad}}}");
}

fn print_block(out: &mut String, b: &Block, indent: usize) {
    let pad = "    ".repeat(indent);
    let inner = "    ".repeat(indent + 1);
    let p = &b.params;
    let _ = writeln!(out, "{pad}block \"{}\" {{", escape(&p.name));
    if let Some(pn) = &p.part_number {
        let _ = writeln!(out, "{inner}part_number = \"{}\"", escape(pn));
    }
    if let Some(desc) = &p.description {
        let _ = writeln!(out, "{inner}description = \"{}\"", escape(desc));
    }
    let _ = writeln!(out, "{inner}quantity = {}", p.quantity);
    let _ = writeln!(out, "{inner}min_quantity = {}", p.min_quantity);
    let _ = writeln!(out, "{inner}mtbf = {} h", p.mtbf.0);
    let _ = writeln!(out, "{inner}transient_fit = {}", p.transient_fit.0);
    let _ = writeln!(out, "{inner}mttr_diagnosis = {} min", p.mttr_diagnosis.0);
    let _ = writeln!(out, "{inner}mttr_corrective = {} min", p.mttr_corrective.0);
    let _ = writeln!(out, "{inner}mttr_verification = {} min", p.mttr_verification.0);
    let _ = writeln!(out, "{inner}service_response = {} h", p.service_response.0);
    let _ = writeln!(out, "{inner}p_correct_diagnosis = {}", p.p_correct_diagnosis);
    if let Some(r) = &p.redundancy {
        print_redundancy(out, r, indent + 1);
    }
    if let Some(sub) = &b.subdiagram {
        print_diagram(out, sub, "subdiagram", indent + 1);
    }
    let _ = writeln!(out, "{pad}}}");
}

fn print_redundancy(out: &mut String, r: &RedundancyParams, indent: usize) {
    let pad = "    ".repeat(indent);
    let inner = "    ".repeat(indent + 1);
    let _ = writeln!(out, "{pad}redundancy {{");
    let _ = writeln!(out, "{inner}p_latent = {}", r.p_latent_fault);
    let _ = writeln!(out, "{inner}mttdlf = {} h", r.mttdlf.0);
    let _ = writeln!(out, "{inner}recovery = {}", scenario(r.recovery));
    let _ = writeln!(out, "{inner}failover_time = {} min", r.failover_time.0);
    let _ = writeln!(out, "{inner}p_spf = {}", r.p_spf);
    let _ = writeln!(out, "{inner}spf_recovery_time = {} min", r.spf_recovery_time.0);
    let _ = writeln!(out, "{inner}repair = {}", scenario(r.repair));
    let _ = writeln!(out, "{inner}reintegration_time = {} min", r.reintegration_time.0);
    let _ = writeln!(out, "{pad}}}");
}

fn scenario(s: Scenario) -> &'static str {
    match s {
        Scenario::Transparent => "transparent",
        Scenario::Nontransparent => "nontransparent",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockParams;
    use crate::params::GlobalParams;
    use crate::units::{Fit, Hours, Minutes};

    fn sample() -> SystemSpec {
        let mut sub = Diagram::new("Internals");
        sub.push(
            BlockParams::new("CPU", 4, 3)
                .with_mtbf(Hours(500_000.0))
                .with_transient_fit(Fit(200.0)),
        );
        let mut root = Diagram::new("Sys \"quoted\"");
        root.push_block(Block::with_subdiagram(
            BlockParams::new("Box", 1, 1).with_part_number("PN-1"),
            sub,
        ));
        root.push(BlockParams::new("Drives", 2, 1).with_mttr_parts(
            Minutes(15.0),
            Minutes(25.0),
            Minutes(5.0),
        ));
        SystemSpec::new(root, GlobalParams::default())
    }

    #[test]
    fn print_parse_roundtrip() {
        let spec = sample();
        let text = print(&spec);
        let back = SystemSpec::from_dsl(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn quoted_names_escape() {
        let spec = sample();
        let text = print(&spec);
        assert!(text.contains("Sys \\\"quoted\\\""));
    }

    #[test]
    fn output_contains_all_sections() {
        let text = print(&sample());
        assert!(text.contains("global {"));
        assert!(text.contains("diagram "));
        assert!(text.contains("subdiagram "));
        assert!(text.contains("redundancy {"));
    }
}
