//! The `.rascad` text DSL.
//!
//! A human-readable serialization of the diagram/block model, playing
//! the role of the paper's GUI-captured model files. Grammar sketch:
//!
//! ```text
//! spec       := [global] diagram
//! global     := "global" "{" entry* "}"
//! diagram    := "diagram" STRING "{" block* "}"
//! block      := "block" STRING "{" (entry | redundancy | subdiagram)* "}"
//! redundancy := "redundancy" "{" entry* "}"
//! subdiagram := "subdiagram" STRING "{" block* "}"
//! entry      := IDENT "=" (NUMBER [unit] | STRING | IDENT)
//! unit       := "h" | "min" | "fit"
//! ```
//!
//! `#` starts a comment that runs to end of line. Durations may be
//! written in either `h` or `min` regardless of the field's native unit;
//! the parser converts.
//!
//! # Example
//!
//! ```
//! use rascad_spec::SystemSpec;
//!
//! # fn main() -> Result<(), rascad_spec::SpecError> {
//! let text = r#"
//! diagram "Tiny" {
//!     block "CPU" {
//!         quantity = 1
//!         min_quantity = 1
//!         mtbf = 100000 h
//!     }
//! }
//! "#;
//! let spec = SystemSpec::from_dsl(text)?;
//! assert_eq!(spec.root.blocks.len(), 1);
//! // print -> parse is the identity.
//! let again = SystemSpec::from_dsl(&spec.to_dsl())?;
//! assert_eq!(spec, again);
//! # Ok(())
//! # }
//! ```

pub mod lexer;
pub mod parser;
pub mod printer;
pub mod reference;
pub mod source_map;
