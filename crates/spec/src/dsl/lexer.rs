//! Tokenizer for the `.rascad` DSL.

use crate::error::SpecError;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds of the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare identifier/keyword (`block`, `mtbf`, `transparent`, …).
    Ident(String),
    /// A double-quoted string literal (supports `\"` and `\\` escapes).
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenizes DSL source.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] for unterminated strings, malformed
/// numbers, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, SpecError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }

    loop {
        let (tline, tcol) = (line, column);
        let Some(&c) = chars.peek() else {
            tokens.push(Token { kind: TokenKind::Eof, line, column });
            break;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' => {
                bump!();
                tokens.push(Token { kind: TokenKind::LBrace, line: tline, column: tcol });
            }
            '}' => {
                bump!();
                tokens.push(Token { kind: TokenKind::RBrace, line: tline, column: tcol });
            }
            '=' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Eq, line: tline, column: tcol });
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None | Some('\n') => {
                            return Err(SpecError::Parse {
                                line: tline,
                                column: tcol,
                                message: "unterminated string".into(),
                            });
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(SpecError::Parse {
                                    line,
                                    column,
                                    message: format!("bad escape {other:?}"),
                                });
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), line: tline, column: tcol });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit()
                        || c == '.'
                        || c == '-'
                        || c == '+'
                        || c == 'e'
                        || c == 'E'
                        || c == '_'
                    {
                        if c != '_' {
                            s.push(c);
                        }
                        bump!();
                    } else {
                        break;
                    }
                }
                let n: f64 = s.parse().map_err(|_| SpecError::Parse {
                    line: tline,
                    column: tcol,
                    message: format!("malformed number `{s}`"),
                })?;
                tokens.push(Token { kind: TokenKind::Number(n), line: tline, column: tcol });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Ident(s), line: tline, column: tcol });
            }
            other => {
                return Err(SpecError::Parse {
                    line: tline,
                    column: tcol,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_tokens() {
        assert_eq!(
            kinds("block \"A\" { mtbf = 100.5 h }"),
            vec![
                TokenKind::Ident("block".into()),
                TokenKind::Str("A".into()),
                TokenKind::LBrace,
                TokenKind::Ident("mtbf".into()),
                TokenKind::Eq,
                TokenKind::Number(100.5),
                TokenKind::Ident("h".into()),
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# hello\nx = 1 # trailing\n"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Number(1.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_with_exponents_and_underscores() {
        assert_eq!(kinds("1e-9"), vec![TokenKind::Number(1e-9), TokenKind::Eof]);
        assert_eq!(kinds("100_000"), vec![TokenKind::Number(100_000.0), TokenKind::Eof]);
        assert_eq!(kinds("-2.5"), vec![TokenKind::Number(-2.5), TokenKind::Eof]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b\\c""#), vec![TokenKind::Str(r#"a"b\c"#.into()), TokenKind::Eof]);
    }

    #[test]
    fn unterminated_string_positions() {
        match lex("  \"abc").unwrap_err() {
            SpecError::Parse { line, column, .. } => {
                assert_eq!((line, column), (1, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn unexpected_character_rejected() {
        assert!(matches!(lex("a @ b"), Err(SpecError::Parse { .. })));
    }

    #[test]
    fn malformed_number_rejected() {
        assert!(matches!(lex("1.2.3"), Err(SpecError::Parse { .. })));
    }
}
