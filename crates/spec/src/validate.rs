//! Specification validation.
//!
//! Rejects physically meaningless models before generation: quantities,
//! probabilities, durations, and the redundancy-parameter presence rule
//! ("the following parameters are relevant only if Quantity is greater
//! than Minimum Quantity Required", paper Section 3).

use std::collections::HashSet;

use crate::block::{Block, BlockParams};
use crate::diagram::{Diagram, SystemSpec};
use crate::error::SpecError;

/// Validates a full system specification.
///
/// # Errors
///
/// Returns the first problem found as a [`SpecError`].
pub fn validate(spec: &SystemSpec) -> Result<(), SpecError> {
    spec.globals.validate()?;
    validate_diagram(&spec.root, &spec.root.name)
}

fn validate_diagram(d: &Diagram, path: &str) -> Result<(), SpecError> {
    if d.blocks.is_empty() {
        return Err(SpecError::EmptyDiagram { diagram: path.to_string() });
    }
    let mut names = HashSet::new();
    for b in &d.blocks {
        if !names.insert(b.params.name.clone()) {
            return Err(SpecError::DuplicateBlock {
                diagram: path.to_string(),
                block: b.params.name.clone(),
            });
        }
        let bpath = format!("{path}/{}", b.params.name);
        validate_block(b, &bpath)?;
    }
    Ok(())
}

fn validate_block(b: &Block, path: &str) -> Result<(), SpecError> {
    validate_params(&b.params, path)?;
    if let Some(sub) = &b.subdiagram {
        validate_diagram(sub, path)?;
    }
    Ok(())
}

fn validate_params(p: &BlockParams, path: &str) -> Result<(), SpecError> {
    let err = |parameter: &'static str, message: String| {
        Err(SpecError::InvalidParameter { block: path.to_string(), parameter, message })
    };
    let nonneg = |v: f64| v.is_finite() && v >= 0.0;
    let positive = |v: f64| v.is_finite() && v > 0.0;
    let prob = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);

    if p.name.trim().is_empty() {
        return err("name", "must not be empty".into());
    }
    if p.quantity == 0 {
        return err("quantity", "must be at least 1".into());
    }
    if p.min_quantity == 0 {
        return err("min_quantity", "must be at least 1".into());
    }
    if p.min_quantity > p.quantity {
        return err(
            "min_quantity",
            format!("min quantity {} exceeds quantity {}", p.min_quantity, p.quantity),
        );
    }
    if !positive(p.mtbf.0) {
        return err("mtbf", format!("must be positive, got {}", p.mtbf.0));
    }
    if !nonneg(p.transient_fit.0) {
        return err("transient_fit", format!("must be >= 0, got {}", p.transient_fit.0));
    }
    for (v, name) in [
        (p.mttr_diagnosis.0, "mttr_diagnosis"),
        (p.mttr_corrective.0, "mttr_corrective"),
        (p.mttr_verification.0, "mttr_verification"),
    ] {
        if !nonneg(v) {
            return Err(SpecError::InvalidParameter {
                block: path.to_string(),
                parameter: match name {
                    "mttr_diagnosis" => "mttr_diagnosis",
                    "mttr_corrective" => "mttr_corrective",
                    _ => "mttr_verification",
                },
                message: format!("must be >= 0, got {v}"),
            });
        }
    }
    if p.mttr_total().0 <= 0.0 {
        return err("mttr_diagnosis", "total MTTR must be positive".into());
    }
    if !nonneg(p.service_response.0) {
        return err("service_response", format!("must be >= 0, got {}", p.service_response.0));
    }
    if !prob(p.p_correct_diagnosis) {
        return err(
            "p_correct_diagnosis",
            format!("must be a probability, got {}", p.p_correct_diagnosis),
        );
    }

    match (&p.redundancy, p.is_redundant()) {
        (Some(_), false) => {
            return Err(SpecError::RedundancyMismatch {
                block: path.to_string(),
                message: "redundancy parameters given but quantity == min quantity".into(),
            });
        }
        (None, true) => {
            return Err(SpecError::RedundancyMismatch {
                block: path.to_string(),
                message: "block is redundant but redundancy parameters are missing".into(),
            });
        }
        (Some(r), true) => {
            if !prob(r.p_latent_fault) {
                return err("p_latent", format!("must be a probability, got {}", r.p_latent_fault));
            }
            if !positive(r.mttdlf.0) {
                return err("mttdlf", format!("must be positive, got {}", r.mttdlf.0));
            }
            if !nonneg(r.failover_time.0) {
                return err("failover_time", format!("must be >= 0, got {}", r.failover_time.0));
            }
            if !prob(r.p_spf) {
                return err("p_spf", format!("must be a probability, got {}", r.p_spf));
            }
            if !nonneg(r.spf_recovery_time.0) {
                return err(
                    "spf_recovery_time",
                    format!("must be >= 0, got {}", r.spf_recovery_time.0),
                );
            }
            if !nonneg(r.reintegration_time.0) {
                return err(
                    "reintegration_time",
                    format!("must be >= 0, got {}", r.reintegration_time.0),
                );
            }
        }
        (None, false) => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GlobalParams;
    use crate::units::Hours;

    fn ok_spec() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1));
        d.push(BlockParams::new("B", 2, 1));
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn valid_spec_passes() {
        ok_spec().validate().unwrap();
    }

    #[test]
    fn empty_diagram_rejected() {
        let spec = SystemSpec::new(Diagram::new("Empty"), GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::EmptyDiagram { .. })));
    }

    #[test]
    fn duplicate_blocks_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1));
        d.push(BlockParams::new("A", 1, 1));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::DuplicateBlock { .. })));
    }

    #[test]
    fn zero_quantity_rejected() {
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.quantity = 0;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::InvalidParameter { .. })));
    }

    #[test]
    fn min_above_quantity_rejected() {
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.min_quantity = 2;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::InvalidParameter { .. })));
    }

    #[test]
    fn nonpositive_mtbf_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(0.0)));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(
            spec.validate(),
            Err(SpecError::InvalidParameter { parameter: "mtbf", .. })
        ));
    }

    #[test]
    fn probability_out_of_range_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_p_correct_diagnosis(1.5));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::InvalidParameter { .. })));
    }

    #[test]
    fn redundancy_presence_rule_enforced() {
        // Redundant block missing redundancy params.
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 2, 1);
        p.redundancy = None;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::RedundancyMismatch { .. })));

        // Non-redundant block carrying redundancy params.
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.redundancy = Some(crate::block::RedundancyParams::default());
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(matches!(spec.validate(), Err(SpecError::RedundancyMismatch { .. })));
    }

    #[test]
    fn nested_diagram_errors_carry_path() {
        let mut sub = Diagram::new("Inner");
        sub.push(BlockParams::new("Bad", 1, 1).with_mtbf(Hours(-5.0)));
        let mut d = Diagram::new("Sys");
        d.push_block(Block::with_subdiagram(BlockParams::new("Box", 1, 1), sub));
        let spec = SystemSpec::new(d, GlobalParams::default());
        match spec.validate() {
            Err(SpecError::InvalidParameter { block, .. }) => {
                assert_eq!(block, "Sys/Box/Bad");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_total_mttr_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mttr_parts(
            crate::units::Minutes(0.0),
            crate::units::Minutes(0.0),
            crate::units::Minutes(0.0),
        ));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert!(spec.validate().is_err());
    }
}
