//! Specification validation: the Tier A (spec-level) analysis engine.
//!
//! [`analyze`] walks the whole diagram/block tree and reports *every*
//! finding as a [`Diagnostic`] — physically meaningless parameters
//! (paper Section 3: quantities, probabilities, durations, the
//! redundancy-parameter presence rule), structural problems (empty
//! diagrams, duplicate names, suspicious hierarchy recursion), and
//! plausibility warnings (MTTR ≥ MTBF, unit-scale mistakes, scenario
//! parameters the chain templates would ignore).
//!
//! [`validate`] is a thin shim over [`analyze`] that keeps the
//! historical fail-fast `Result` API: it returns
//! [`SpecError::Invalid`] carrying the *complete* diagnostic list when
//! any error-severity finding exists, instead of just the first
//! problem found.

use std::collections::HashSet;

use crate::block::{Block, BlockParams, RedundancyParams, Scenario};
use crate::diag::{Diagnostic, Severity};
use crate::diagram::{Diagram, SystemSpec};
use crate::error::SpecError;
use crate::params::GlobalParams;

/// An MTBF below this many hours is flagged as a likely unit mistake
/// (RAS018): real hardware does not fail more than once an hour, so the
/// value was probably entered in minutes.
pub const MIN_PLAUSIBLE_MTBF_HOURS: f64 = 1.0;

/// An MTTR part above this many minutes (one week) is flagged as a
/// likely unit mistake (RAS018): the value was probably entered in
/// hours.
pub const MAX_PLAUSIBLE_MTTR_MINUTES: f64 = 7.0 * 24.0 * 60.0;

/// A probability of correct diagnosis below this is flagged as
/// implausible (RAS021, info).
pub const MIN_PLAUSIBLE_PCD: f64 = 0.5;

/// Validates a full system specification.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] carrying every diagnostic found
/// (errors, warnings, and info alike) when at least one finding has
/// [`Severity::Error`]. Warnings alone do not fail validation; use
/// [`analyze`] (or `rascad lint --deny warnings`) to see them.
pub fn validate(spec: &SystemSpec) -> Result<(), SpecError> {
    let diagnostics = analyze(spec);
    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        Err(SpecError::Invalid { diagnostics })
    } else {
        Ok(())
    }
}

/// Runs every Tier A analysis and returns all findings, in tree walk
/// order (globals first, then blocks depth-first).
#[must_use]
pub fn analyze(spec: &SystemSpec) -> Vec<Diagnostic> {
    let mut a = Analyzer { diags: Vec::new() };
    a.globals(&spec.globals);
    let mut ancestors = vec![spec.root.name.clone()];
    a.diagram(&spec.root, &spec.root.name, &mut ancestors);
    a.diags
}

/// Collector state for one [`analyze`] run.
struct Analyzer {
    diags: Vec<Diagnostic>,
}

impl Analyzer {
    fn emit(
        &mut self,
        code: &'static str,
        severity: Severity,
        path: &str,
        message: impl Into<String>,
    ) -> &mut Diagnostic {
        self.diags.push(Diagnostic::new(code, severity, path, message));
        self.diags.last_mut().expect("just pushed")
    }

    fn error(
        &mut self,
        code: &'static str,
        path: &str,
        parameter: &'static str,
        message: impl Into<String>,
    ) {
        self.emit(code, Severity::Error, path, message).parameter = Some(parameter);
    }

    fn globals(&mut self, g: &GlobalParams) {
        let mut check = |v: f64, parameter: &'static str, must_be_positive: bool| {
            let ok = v.is_finite() && if must_be_positive { v > 0.0 } else { v >= 0.0 };
            if !ok {
                let kind = if must_be_positive { "positive" } else { ">= 0" };
                self.error(
                    codes::GLOBAL_PARAM,
                    "<global>",
                    parameter,
                    format!("must be {kind} and finite, got {v}"),
                );
            }
        };
        check(g.reboot_time.0, "reboot_time", false);
        check(g.mttm.0, "mttm", false);
        check(g.mttrfid.0, "mttrfid", false);
        check(g.mission_time.0, "mission_time", true);
    }

    fn diagram(&mut self, d: &Diagram, path: &str, ancestors: &mut Vec<String>) {
        if d.blocks.is_empty() {
            self.emit(
                codes::EMPTY_DIAGRAM,
                Severity::Error,
                path,
                format!("diagram \"{}\" has no blocks", d.name),
            );
        }
        let mut names = HashSet::new();
        for b in &d.blocks {
            if !names.insert(b.params.name.clone()) {
                self.emit(
                    codes::DUPLICATE_BLOCK,
                    Severity::Error,
                    path,
                    format!("diagram \"{}\" has two blocks named \"{}\"", d.name, b.params.name),
                );
            }
            let bpath = format!("{path}/{}", b.params.name);
            self.block(b, &bpath, ancestors);
        }
    }

    fn block(&mut self, b: &Block, path: &str, ancestors: &mut Vec<String>) {
        self.params(&b.params, path);
        if let Some(sub) = &b.subdiagram {
            if ancestors.iter().any(|a| a == &sub.name) {
                self.emit(
                    codes::HIERARCHY_RECURSION,
                    Severity::Warning,
                    path,
                    format!(
                        "subdiagram \"{}\" repeats the name of an enclosing diagram; \
                         the hierarchy is a tree and cannot recurse — rename one of them",
                        sub.name
                    ),
                );
            }
            ancestors.push(sub.name.clone());
            self.diagram(sub, path, ancestors);
            ancestors.pop();
        }
    }

    #[allow(clippy::too_many_lines)] // one linear pass over the parameter list
    fn params(&mut self, p: &BlockParams, path: &str) {
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        let positive = |v: f64| v.is_finite() && v > 0.0;
        let prob = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);

        if p.name.trim().is_empty() {
            self.error(codes::BLANK_NAME, path, "name", "block name must not be empty");
        }
        if p.quantity == 0 {
            self.error(codes::ZERO_QUANTITY, path, "quantity", "must be at least 1");
        }
        if p.min_quantity == 0 {
            self.error(codes::ZERO_MIN_QUANTITY, path, "min_quantity", "must be at least 1");
        }
        if p.quantity > 0 && p.min_quantity > p.quantity {
            self.error(
                codes::MIN_EXCEEDS_QUANTITY,
                path,
                "min_quantity",
                format!(
                    "minimum required quantity {} exceeds quantity {} (k-of-n needs n >= k)",
                    p.min_quantity, p.quantity
                ),
            );
        }
        if !positive(p.mtbf.0) {
            self.error(
                codes::NONPOSITIVE_MTBF,
                path,
                "mtbf",
                format!("must be positive, got {}", p.mtbf.0),
            );
        }
        if !nonneg(p.transient_fit.0) {
            self.error(
                codes::NEGATIVE_FIT,
                path,
                "transient_fit",
                format!("must be >= 0, got {}", p.transient_fit.0),
            );
        }
        let mttr_parts = [
            (p.mttr_diagnosis.0, "mttr_diagnosis"),
            (p.mttr_corrective.0, "mttr_corrective"),
            (p.mttr_verification.0, "mttr_verification"),
        ];
        for (v, name) in mttr_parts {
            if !nonneg(v) {
                let parameter = match name {
                    "mttr_diagnosis" => "mttr_diagnosis",
                    "mttr_corrective" => "mttr_corrective",
                    _ => "mttr_verification",
                };
                self.error(codes::NEGATIVE_MTTR, path, parameter, format!("must be >= 0, got {v}"));
            }
        }
        let mttr_parts_ok = mttr_parts.iter().all(|(v, _)| nonneg(*v));
        if mttr_parts_ok && p.mttr_total().0 <= 0.0 {
            self.error(
                codes::ZERO_TOTAL_MTTR,
                path,
                "mttr_diagnosis",
                "total MTTR (diagnosis + corrective + verification) must be positive",
            );
        }
        if !nonneg(p.service_response.0) {
            self.error(
                codes::NEGATIVE_SERVICE_RESPONSE,
                path,
                "service_response",
                format!("must be >= 0, got {}", p.service_response.0),
            );
        }
        if !prob(p.p_correct_diagnosis) {
            self.error(
                codes::PROBABILITY_RANGE,
                path,
                "p_correct_diagnosis",
                format!("must be a probability in [0, 1], got {}", p.p_correct_diagnosis),
            );
        }

        match (&p.redundancy, p.is_redundant()) {
            (Some(_), false) => {
                self.emit(
                    codes::REDUNDANCY_ON_NONREDUNDANT,
                    Severity::Error,
                    path,
                    "redundancy parameters given but quantity == min quantity \
                     (they are relevant only when N > K)",
                );
            }
            (None, true) => {
                self.emit(
                    codes::REDUNDANCY_MISSING,
                    Severity::Error,
                    path,
                    "block is redundant (N > K) but redundancy parameters are missing",
                );
            }
            (Some(r), true) => self.redundancy(r, path),
            (None, false) => {}
        }

        // Plausibility warnings, only on top of otherwise-valid values.
        if positive(p.mtbf.0) && mttr_parts_ok && p.mttr_total().0 >= p.mtbf.0 {
            self.emit(
                codes::MTTR_GE_MTBF,
                Severity::Warning,
                path,
                format!(
                    "total MTTR ({} h) is not less than MTBF ({} h); the component spends \
                     more time in repair than in service — check units",
                    p.mttr_total().0,
                    p.mtbf.0
                ),
            )
            .parameter = Some("mtbf");
        }
        if positive(p.mtbf.0) && p.mtbf.0 < MIN_PLAUSIBLE_MTBF_HOURS {
            self.emit(
                codes::IMPLAUSIBLE_UNITS,
                Severity::Warning,
                path,
                format!(
                    "MTBF of {} h is under one hour — was the value meant in hours? \
                     (write `mtbf = X min` for minutes)",
                    p.mtbf.0
                ),
            )
            .parameter = Some("mtbf");
        }
        for (v, name) in mttr_parts {
            if nonneg(v) && v > MAX_PLAUSIBLE_MTTR_MINUTES {
                let parameter = match name {
                    "mttr_diagnosis" => "mttr_diagnosis",
                    "mttr_corrective" => "mttr_corrective",
                    _ => "mttr_verification",
                };
                self.emit(
                    codes::IMPLAUSIBLE_UNITS,
                    Severity::Warning,
                    path,
                    format!(
                        "MTTR part of {v} min exceeds one week — was the value meant in \
                         minutes? (write `{parameter} = X h` for hours)"
                    ),
                )
                .parameter = Some(parameter);
            }
        }
        if prob(p.p_correct_diagnosis) && p.p_correct_diagnosis < MIN_PLAUSIBLE_PCD {
            self.emit(
                codes::LOW_PCD,
                Severity::Info,
                path,
                format!(
                    "probability of correct diagnosis {} is below {MIN_PLAUSIBLE_PCD}; \
                     most field data reports 0.9 or better",
                    p.p_correct_diagnosis
                ),
            )
            .parameter = Some("p_correct_diagnosis");
        }
    }

    fn redundancy(&mut self, r: &RedundancyParams, path: &str) {
        let nonneg = |v: f64| v.is_finite() && v >= 0.0;
        let positive = |v: f64| v.is_finite() && v > 0.0;
        let prob = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);

        if !prob(r.p_latent_fault) {
            self.error(
                codes::PROBABILITY_RANGE,
                path,
                "p_latent",
                format!("must be a probability in [0, 1], got {}", r.p_latent_fault),
            );
        }
        if !positive(r.mttdlf.0) {
            self.error(
                codes::REDUNDANCY_DURATION,
                path,
                "mttdlf",
                format!("must be positive, got {}", r.mttdlf.0),
            );
        }
        if !prob(r.p_spf) {
            self.error(
                codes::PROBABILITY_RANGE,
                path,
                "p_spf",
                format!("must be a probability in [0, 1], got {}", r.p_spf),
            );
        }
        for (v, parameter) in [
            (r.failover_time.0, "failover_time"),
            (r.spf_recovery_time.0, "spf_recovery_time"),
            (r.reintegration_time.0, "reintegration_time"),
        ] {
            if !nonneg(v) {
                let parameter: &'static str = match parameter {
                    "failover_time" => "failover_time",
                    "spf_recovery_time" => "spf_recovery_time",
                    _ => "reintegration_time",
                };
                self.error(
                    codes::REDUNDANCY_DURATION,
                    path,
                    parameter,
                    format!("must be >= 0, got {v}"),
                );
            }
        }

        // Scenario/template consistency: a transparent event has no
        // downtime by definition, so its duration parameter is ignored
        // by every chain template (Types 1–4).
        if r.recovery == Scenario::Transparent
            && nonneg(r.failover_time.0)
            && r.failover_time.0 > 0.0
        {
            self.emit(
                codes::IGNORED_SCENARIO_DURATION,
                Severity::Warning,
                path,
                format!(
                    "failover_time = {} min is ignored because recovery is transparent; \
                     set `recovery = nontransparent` or drop the duration",
                    r.failover_time.0
                ),
            )
            .parameter = Some("failover_time");
        }
        if r.repair == Scenario::Transparent
            && nonneg(r.reintegration_time.0)
            && r.reintegration_time.0 > 0.0
        {
            self.emit(
                codes::IGNORED_SCENARIO_DURATION,
                Severity::Warning,
                path,
                format!(
                    "reintegration_time = {} min is ignored because repair is transparent \
                     (hot-pluggable); set `repair = nontransparent` or drop the duration",
                    r.reintegration_time.0
                ),
            )
            .parameter = Some("reintegration_time");
        }
    }
}

/// Stable Tier A diagnostic codes.
///
/// Kept as named constants so analyses and the catalog in
/// `rascad-lint` cannot drift apart silently.
pub mod codes {
    /// A diagram has no blocks.
    pub const EMPTY_DIAGRAM: &str = "RAS001";
    /// Two blocks in one diagram share a name.
    pub const DUPLICATE_BLOCK: &str = "RAS002";
    /// A block name is empty or whitespace.
    pub const BLANK_NAME: &str = "RAS003";
    /// `quantity` is zero.
    pub const ZERO_QUANTITY: &str = "RAS004";
    /// `min_quantity` is zero.
    pub const ZERO_MIN_QUANTITY: &str = "RAS005";
    /// `min_quantity` exceeds `quantity` (k-of-n with n < k).
    pub const MIN_EXCEEDS_QUANTITY: &str = "RAS006";
    /// MTBF is zero, negative, or not finite.
    pub const NONPOSITIVE_MTBF: &str = "RAS007";
    /// Transient FIT rate is negative or not finite.
    pub const NEGATIVE_FIT: &str = "RAS008";
    /// An MTTR part is negative or not finite.
    pub const NEGATIVE_MTTR: &str = "RAS009";
    /// The summed MTTR is not positive.
    pub const ZERO_TOTAL_MTTR: &str = "RAS010";
    /// Service response time is negative or not finite.
    pub const NEGATIVE_SERVICE_RESPONSE: &str = "RAS011";
    /// A probability parameter is outside `[0, 1]`.
    pub const PROBABILITY_RANGE: &str = "RAS012";
    /// Redundancy parameters on a block with `N == K`.
    pub const REDUNDANCY_ON_NONREDUNDANT: &str = "RAS013";
    /// Redundant block (`N > K`) without redundancy parameters.
    pub const REDUNDANCY_MISSING: &str = "RAS014";
    /// A global parameter is out of range.
    pub const GLOBAL_PARAM: &str = "RAS015";
    /// A redundancy duration (MTTDLF, failover, SPF recovery,
    /// reintegration) is out of range.
    pub const REDUNDANCY_DURATION: &str = "RAS016";
    /// Total MTTR is not less than MTBF.
    pub const MTTR_GE_MTBF: &str = "RAS017";
    /// A duration's magnitude suggests an hours/minutes mix-up.
    pub const IMPLAUSIBLE_UNITS: &str = "RAS018";
    /// A transparent scenario carries a nonzero (ignored) downtime.
    pub const IGNORED_SCENARIO_DURATION: &str = "RAS019";
    /// A subdiagram repeats the name of an enclosing diagram.
    pub const HIERARCHY_RECURSION: &str = "RAS020";
    /// Probability of correct diagnosis implausibly low.
    pub const LOW_PCD: &str = "RAS021";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GlobalParams;
    use crate::units::{Hours, Minutes};

    fn ok_spec() -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1));
        d.push(BlockParams::new("B", 2, 1));
        SystemSpec::new(d, GlobalParams::default())
    }

    fn codes_of(spec: &SystemSpec) -> Vec<&'static str> {
        analyze(spec).iter().map(|d| d.code).collect()
    }

    #[test]
    fn valid_spec_passes() {
        ok_spec().validate().unwrap();
        assert!(analyze(&ok_spec()).is_empty());
    }

    #[test]
    fn empty_diagram_rejected() {
        let spec = SystemSpec::new(Diagram::new("Empty"), GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::EMPTY_DIAGRAM]);
        assert!(matches!(spec.validate(), Err(SpecError::Invalid { .. })));
    }

    #[test]
    fn duplicate_blocks_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1));
        d.push(BlockParams::new("A", 1, 1));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::DUPLICATE_BLOCK]);
    }

    #[test]
    fn zero_quantity_rejected() {
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.quantity = 0;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::ZERO_QUANTITY]);
    }

    #[test]
    fn min_above_quantity_rejected() {
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.min_quantity = 2;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::MIN_EXCEEDS_QUANTITY]);
    }

    #[test]
    fn nonpositive_mtbf_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(0.0)));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::NONPOSITIVE_MTBF]);
        let diags = analyze(&spec);
        assert_eq!(diags[0].parameter, Some("mtbf"));
        assert_eq!(diags[0].path, "Sys/A");
    }

    #[test]
    fn probability_out_of_range_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_p_correct_diagnosis(1.5));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::PROBABILITY_RANGE]);
    }

    #[test]
    fn redundancy_presence_rule_enforced() {
        // Redundant block missing redundancy params.
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 2, 1);
        p.redundancy = None;
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::REDUNDANCY_MISSING]);

        // Non-redundant block carrying redundancy params.
        let mut d = Diagram::new("Sys");
        let mut p = BlockParams::new("A", 1, 1);
        p.redundancy = Some(crate::block::RedundancyParams::default());
        d.push(p);
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::REDUNDANCY_ON_NONREDUNDANT]);
    }

    #[test]
    fn nested_diagram_errors_carry_path() {
        let mut sub = Diagram::new("Inner");
        sub.push(BlockParams::new("Bad", 1, 1).with_mtbf(Hours(-5.0)));
        let mut d = Diagram::new("Sys");
        d.push_block(Block::with_subdiagram(BlockParams::new("Box", 1, 1), sub));
        let spec = SystemSpec::new(d, GlobalParams::default());
        match spec.validate() {
            Err(SpecError::Invalid { diagnostics }) => {
                assert_eq!(diagnostics.len(), 1);
                assert_eq!(diagnostics[0].path, "Sys/Box/Bad");
                assert_eq!(diagnostics[0].code, codes::NONPOSITIVE_MTBF);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_total_mttr_rejected() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mttr_parts(
            Minutes(0.0),
            Minutes(0.0),
            Minutes(0.0),
        ));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::ZERO_TOTAL_MTTR]);
    }

    #[test]
    fn all_findings_reported_at_once() {
        // One spec with four independent defects: every one must appear
        // in the single error (the first-error-wins behaviour is gone).
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(-1.0)));
        d.push(BlockParams::new("B", 1, 1).with_p_correct_diagnosis(2.0));
        let mut c = BlockParams::new("C", 2, 4);
        c.redundancy = None;
        d.push(c);
        let spec = SystemSpec::new(
            d,
            GlobalParams { mission_time: Hours(0.0), ..GlobalParams::default() },
        );
        match spec.validate() {
            Err(SpecError::Invalid { diagnostics }) => {
                let found: Vec<_> = diagnostics.iter().map(|d| d.code).collect();
                assert_eq!(
                    found,
                    vec![
                        codes::GLOBAL_PARAM,
                        codes::NONPOSITIVE_MTBF,
                        codes::PROBABILITY_RANGE,
                        codes::MIN_EXCEEDS_QUANTITY,
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn warnings_do_not_fail_validation() {
        let mut d = Diagram::new("Sys");
        // MTTR (2 h) >= MTBF (1 h): warning RAS017 only.
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(1.0)).with_mttr_parts(
            Minutes(40.0),
            Minutes(40.0),
            Minutes(40.0),
        ));
        let spec = SystemSpec::new(d, GlobalParams::default());
        spec.validate().unwrap();
        let diags = analyze(&spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::MTTR_GE_MTBF);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn unit_plausibility_flagged() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(0.5)).with_mttr_parts(
            Minutes(5.0),
            Minutes(5.0),
            Minutes(5.0),
        ));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let diags = analyze(&spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::IMPLAUSIBLE_UNITS);
        assert_eq!(diags[0].severity, Severity::Warning);

        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mttr_parts(
            Minutes(30.0),
            Minutes(20_000.0),
            Minutes(10.0),
        ));
        let spec = SystemSpec::new(d, GlobalParams::default());
        assert_eq!(codes_of(&spec), vec![codes::IMPLAUSIBLE_UNITS]);
    }

    #[test]
    fn ignored_scenario_duration_flagged() {
        let r = RedundancyParams {
            recovery: Scenario::Transparent,
            failover_time: Minutes(5.0),
            repair: Scenario::Transparent,
            reintegration_time: Minutes(10.0),
            ..RedundancyParams::default()
        };
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 2, 1).with_redundancy(r));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let diags = analyze(&spec);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == codes::IGNORED_SCENARIO_DURATION));
        assert_eq!(diags[0].parameter, Some("failover_time"));
        assert_eq!(diags[1].parameter, Some("reintegration_time"));
        spec.validate().unwrap();
    }

    #[test]
    fn hierarchy_recursion_flagged() {
        let mut sub = Diagram::new("Sys"); // same name as the root
        sub.push(BlockParams::new("Inner", 1, 1));
        let mut d = Diagram::new("Sys");
        d.push_block(Block::with_subdiagram(BlockParams::new("Box", 1, 1), sub));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let diags = analyze(&spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::HIERARCHY_RECURSION);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn low_pcd_is_info_only() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_p_correct_diagnosis(0.3));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let diags = analyze(&spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::LOW_PCD);
        assert_eq!(diags[0].severity, Severity::Info);
        spec.validate().unwrap();
    }

    #[test]
    fn invalid_error_lists_every_diagnostic() {
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 1).with_mtbf(Hours(0.0)));
        d.push(BlockParams::new("B", 1, 1).with_mtbf(Hours(-1.0)));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("Sys/A"), "{msg}");
        assert!(msg.contains("Sys/B"), "{msg}");
        assert!(msg.contains("RAS007"), "{msg}");
    }
}
