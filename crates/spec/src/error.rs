//! Error type for specification validation and DSL parsing.

use std::fmt;

/// Error produced while validating or parsing a specification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// The specification failed Tier A analysis. Carries *every*
    /// diagnostic found (warnings and info included), not just the
    /// first error — produced by [`crate::validate::validate`].
    Invalid {
        /// All findings, in tree walk order.
        diagnostics: Vec<crate::diag::Diagnostic>,
    },
    /// A diagram has no blocks.
    EmptyDiagram {
        /// Name of the empty diagram.
        diagram: String,
    },
    /// A numeric parameter is out of its legal range.
    InvalidParameter {
        /// Path to the offending block, e.g. `Data Center/Server Box`.
        block: String,
        /// Parameter name as it appears in the DSL.
        parameter: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Redundancy parameters present on a non-redundant block, or
    /// missing on a redundant block.
    RedundancyMismatch {
        /// Path to the offending block.
        block: String,
        /// Description of the mismatch.
        message: String,
    },
    /// Two blocks in one diagram share a name.
    DuplicateBlock {
        /// Name of the diagram.
        diagram: String,
        /// The duplicated block name.
        block: String,
    },
    /// DSL syntax error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// JSON (de)serialization error.
    Json {
        /// Underlying serde message.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid { diagnostics } => {
                let (errors, warnings, _) = crate::diag::severity_counts(diagnostics);
                write!(f, "specification rejected: {errors} error(s), {warnings} warning(s)")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            SpecError::EmptyDiagram { diagram } => {
                write!(f, "diagram \"{diagram}\" has no blocks")
            }
            SpecError::InvalidParameter { block, parameter, message } => {
                write!(f, "block \"{block}\": parameter {parameter}: {message}")
            }
            SpecError::RedundancyMismatch { block, message } => {
                write!(f, "block \"{block}\": {message}")
            }
            SpecError::DuplicateBlock { diagram, block } => {
                write!(f, "diagram \"{diagram}\" has two blocks named \"{block}\"")
            }
            SpecError::Parse { line, column, message } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            SpecError::Json { message } => write!(f, "json error: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = SpecError::InvalidParameter {
            block: "A/B".into(),
            parameter: "mtbf",
            message: "must be positive".into(),
        };
        let s = e.to_string();
        assert!(s.contains("A/B") && s.contains("mtbf") && s.contains("positive"));
    }

    #[test]
    fn parse_error_has_position() {
        let e = SpecError::Parse { line: 3, column: 7, message: "expected '{'".into() };
        assert!(e.to_string().contains("3:7"));
    }
}
