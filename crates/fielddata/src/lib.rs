//! Field-data analysis for the RAScad reproduction.
//!
//! RAScad's validation compares model predictions to measurements from
//! operational servers. This crate does the measurement half: it takes
//! up/down outage logs (real or synthetic), estimates availability,
//! outage rates, MTBF and MTTR with confidence intervals, and produces
//! model-vs-field comparison verdicts.
//!
//! The crate deliberately has no dependency on the modeling stack; logs
//! are plain `(time, up/down)` sequences, so any log source can feed
//! it.
//!
//! # Example
//!
//! ```
//! use rascad_fielddata::{OutageLog, estimate};
//!
//! let mut log = OutageLog::new(10_000.0);
//! log.record(100.0, 4.0);   // outage at t=100 h lasting 4 h
//! log.record(5_000.0, 2.0);
//! let est = estimate::analyze(&[log]);
//! assert!((est.availability - (1.0 - 6.0 / 10_000.0)).abs() < 1e-12);
//! assert_eq!(est.outages, 2);
//! ```

pub mod compare;
pub mod estimate;
pub mod log;

pub use compare::{compare, Comparison};
pub use estimate::{analyze, FieldEstimate};
pub use log::OutageLog;
