//! Outage logs: the normalized form of field data.

/// One recorded outage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Outage {
    /// Start of the outage, hours since observation start.
    pub start_hours: f64,
    /// Duration of the outage, hours.
    pub duration_hours: f64,
}

/// An outage log for one system over an observation window.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutageLog {
    observation_hours: f64,
    outages: Vec<Outage>,
}

impl OutageLog {
    /// Creates an empty log over the given observation window (hours).
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive and finite.
    #[must_use]
    pub fn new(observation_hours: f64) -> Self {
        assert!(
            observation_hours > 0.0 && observation_hours.is_finite(),
            "observation window must be positive"
        );
        OutageLog { observation_hours, outages: Vec::new() }
    }

    /// Records an outage starting at `start_hours` lasting
    /// `duration_hours`.
    ///
    /// # Panics
    ///
    /// Panics if the outage lies outside the observation window or
    /// overlaps going backwards in time.
    pub fn record(&mut self, start_hours: f64, duration_hours: f64) {
        assert!(start_hours >= 0.0 && duration_hours >= 0.0, "negative time");
        assert!(
            start_hours + duration_hours <= self.observation_hours + 1e-9,
            "outage beyond observation window"
        );
        if let Some(last) = self.outages.last() {
            assert!(start_hours >= last.start_hours + last.duration_hours, "overlapping outage");
        }
        self.outages.push(Outage { start_hours, duration_hours });
    }

    /// Observation window, hours.
    #[must_use]
    pub fn observation_hours(&self) -> f64 {
        self.observation_hours
    }

    /// The recorded outages in time order.
    #[must_use]
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Total downtime, hours.
    #[must_use]
    pub fn downtime_hours(&self) -> f64 {
        self.outages.iter().map(|o| o.duration_hours).sum()
    }

    /// Empirical availability.
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.downtime_hours() / self.observation_hours
    }

    /// Builds a log from an up/down event sequence
    /// (`(time_hours, up)`), assuming the system starts up at time 0.
    #[must_use]
    pub fn from_events(observation_hours: f64, events: &[(f64, bool)]) -> Self {
        let mut log = OutageLog::new(observation_hours);
        let mut down_since: Option<f64> = None;
        for &(t, up) in events {
            match (up, down_since) {
                (false, None) => down_since = Some(t),
                (true, Some(s)) => {
                    log.record(s, t - s);
                    down_since = None;
                }
                _ => {}
            }
        }
        if let Some(s) = down_since {
            log.record(s, observation_hours - s);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_accumulates() {
        let mut log = OutageLog::new(1000.0);
        log.record(10.0, 1.0);
        log.record(500.0, 2.5);
        assert_eq!(log.outages().len(), 2);
        assert!((log.downtime_hours() - 3.5).abs() < 1e-12);
        assert!((log.availability() - 0.9965).abs() < 1e-12);
    }

    #[test]
    fn from_events_matches_manual() {
        let events = [(10.0, false), (11.0, true), (500.0, false), (502.5, true)];
        let log = OutageLog::from_events(1000.0, &events);
        assert_eq!(log.outages().len(), 2);
        assert!((log.downtime_hours() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn open_outage_truncated_at_window() {
        let log = OutageLog::from_events(100.0, &[(95.0, false)]);
        assert!((log.downtime_hours() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut log = OutageLog::new(100.0);
        log.record(10.0, 5.0);
        log.record(12.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "beyond observation window")]
    fn beyond_window_rejected() {
        let mut log = OutageLog::new(100.0);
        log.record(99.0, 5.0);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let mut log = OutageLog::new(100.0);
        log.record(1.0, 0.5);
        let json = serde_json::to_string(&log).unwrap();
        let back: OutageLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
