//! Point estimates and confidence intervals from outage logs.

use crate::log::OutageLog;

/// Aggregate field estimates over one or more monitored systems.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldEstimate {
    /// Total observation time across systems, hours.
    pub observation_hours: f64,
    /// Total downtime across systems, hours.
    pub downtime_hours: f64,
    /// Pooled empirical availability.
    pub availability: f64,
    /// Yearly downtime implied by the pooled availability, minutes.
    pub yearly_downtime_minutes: f64,
    /// Total number of outages observed.
    pub outages: usize,
    /// Empirical MTBF (observation / outages), hours; infinite with no
    /// outages.
    pub mtbf_hours: f64,
    /// Empirical mean outage duration (MTTR), hours; zero with no
    /// outages.
    pub mttr_hours: f64,
    /// 95% CI half-width on the outage *rate* (per hour), from the
    /// Poisson normal approximation `sqrt(k)/T`.
    pub rate_ci_half_width: f64,
    /// 95% CI half-width on availability, propagated from the rate CI
    /// at the observed mean outage duration.
    pub availability_ci_half_width: f64,
}

/// Pools several logs (e.g. the paper's two servers) into one estimate.
///
/// # Panics
///
/// Panics if `logs` is empty.
#[allow(clippy::cast_precision_loss)] // outage counts stay far below 2^52
pub fn analyze(logs: &[OutageLog]) -> FieldEstimate {
    assert!(!logs.is_empty(), "need at least one log");
    let mut span = rascad_obs::span("fielddata.analyze");
    span.record("logs", logs.len());
    let observation: f64 = logs.iter().map(OutageLog::observation_hours).sum();
    let downtime: f64 = logs.iter().map(OutageLog::downtime_hours).sum();
    let outages: usize = logs.iter().map(|l| l.outages().len()).sum();
    let availability = 1.0 - downtime / observation;
    let mtbf = if outages > 0 { observation / outages as f64 } else { f64::INFINITY };
    let mttr = if outages > 0 { downtime / outages as f64 } else { 0.0 };
    // Poisson CI on the outage count: k ± 1.96 sqrt(k).
    let rate_ci = if outages > 0 { 1.96 * (outages as f64).sqrt() / observation } else { 0.0 };
    span.record("outages", outages);
    span.record("observation_hours", observation);
    rascad_obs::counter("fielddata.outages_pooled", outages as u64);
    FieldEstimate {
        observation_hours: observation,
        downtime_hours: downtime,
        availability,
        yearly_downtime_minutes: (1.0 - availability) * 365.0 * 24.0 * 60.0,
        outages,
        mtbf_hours: mtbf,
        mttr_hours: mttr,
        rate_ci_half_width: rate_ci,
        availability_ci_half_width: rate_ci * mttr,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    fn log_with(observation: f64, outages: &[(f64, f64)]) -> OutageLog {
        let mut l = OutageLog::new(observation);
        for &(s, d) in outages {
            l.record(s, d);
        }
        l
    }

    #[test]
    fn single_log_estimates() {
        let l = log_with(10_000.0, &[(100.0, 2.0), (5_000.0, 4.0)]);
        let e = analyze(&[l]);
        assert_eq!(e.outages, 2);
        assert!((e.availability - (1.0 - 6.0 / 10_000.0)).abs() < 1e-12);
        assert!((e.mtbf_hours - 5_000.0).abs() < 1e-9);
        assert!((e.mttr_hours - 3.0).abs() < 1e-12);
        assert!(e.rate_ci_half_width > 0.0);
        assert!(e.availability_ci_half_width > 0.0);
    }

    #[test]
    fn pooling_two_servers() {
        let a = log_with(1_000.0, &[(10.0, 1.0)]);
        let b = log_with(1_000.0, &[(20.0, 3.0)]);
        let e = analyze(&[a, b]);
        assert_eq!(e.outages, 2);
        assert!((e.observation_hours - 2_000.0).abs() < 1e-12);
        assert!((e.downtime_hours - 4.0).abs() < 1e-12);
        assert!((e.mtbf_hours - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn no_outages_degenerate() {
        let e = analyze(&[OutageLog::new(500.0)]);
        assert_eq!(e.availability, 1.0);
        assert_eq!(e.mtbf_hours, f64::INFINITY);
        assert_eq!(e.mttr_hours, 0.0);
        assert_eq!(e.rate_ci_half_width, 0.0);
        assert_eq!(e.yearly_downtime_minutes, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one log")]
    fn empty_input_panics() {
        let _ = analyze(&[]);
    }
}
