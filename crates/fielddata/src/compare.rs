//! Model-vs-field comparison.

use std::fmt;

use crate::estimate::FieldEstimate;

/// Verdict of a model-vs-field comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Model-predicted availability.
    pub predicted_availability: f64,
    /// Field-measured availability.
    pub measured_availability: f64,
    /// Model-predicted yearly downtime, minutes.
    pub predicted_yearly_downtime_minutes: f64,
    /// Field-measured yearly downtime, minutes.
    pub measured_yearly_downtime_minutes: f64,
    /// Relative error of the model's yearly downtime against the
    /// measurement (the statistic the paper reports as < 0.2% for its
    /// tool cross-validation).
    pub downtime_relative_error: f64,
    /// Whether the prediction lies within the measurement's 95%
    /// confidence interval.
    pub within_confidence_interval: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model-vs-field comparison")?;
        writeln!(
            f,
            "  availability : predicted {:.9}, measured {:.9}",
            self.predicted_availability, self.measured_availability
        )?;
        writeln!(
            f,
            "  yearly downtime : predicted {:.1} min, measured {:.1} min ({:+.2}% rel. err.)",
            self.predicted_yearly_downtime_minutes,
            self.measured_yearly_downtime_minutes,
            self.downtime_relative_error * 100.0
        )?;
        write!(
            f,
            "  prediction within 95% CI of the measurement: {}",
            if self.within_confidence_interval { "yes" } else { "no" }
        )
    }
}

/// Compares a model-predicted availability against a field estimate.
#[must_use]
pub fn compare(predicted_availability: f64, field: &FieldEstimate) -> Comparison {
    let predicted_dt = (1.0 - predicted_availability) * 365.0 * 24.0 * 60.0;
    let measured_dt = field.yearly_downtime_minutes;
    let rel = if measured_dt > 0.0 {
        (predicted_dt - measured_dt) / measured_dt
    } else if predicted_dt > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let within =
        (predicted_availability - field.availability).abs() <= field.availability_ci_half_width;
    Comparison {
        predicted_availability,
        measured_availability: field.availability,
        predicted_yearly_downtime_minutes: predicted_dt,
        measured_yearly_downtime_minutes: measured_dt,
        downtime_relative_error: rel,
        within_confidence_interval: within,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use crate::estimate::analyze;
    use crate::log::OutageLog;

    fn field() -> FieldEstimate {
        let mut l = OutageLog::new(10_000.0);
        l.record(100.0, 5.0);
        l.record(4_000.0, 5.0);
        analyze(&[l])
    }

    #[test]
    fn perfect_prediction_has_zero_error() {
        let f = field();
        let c = compare(f.availability, &f);
        assert!(c.downtime_relative_error.abs() < 1e-12);
        assert!(c.within_confidence_interval);
    }

    #[test]
    fn biased_prediction_reports_relative_error() {
        let f = field();
        // Predict half the downtime.
        let predicted = 1.0 - (1.0 - f.availability) / 2.0;
        let c = compare(predicted, &f);
        assert!((c.downtime_relative_error + 0.5).abs() < 1e-9, "{}", c.downtime_relative_error);
    }

    #[test]
    fn zero_measured_downtime_edge() {
        let f = analyze(&[OutageLog::new(100.0)]);
        let c = compare(1.0, &f);
        assert_eq!(c.downtime_relative_error, 0.0);
        let c2 = compare(0.999, &f);
        assert_eq!(c2.downtime_relative_error, f64::INFINITY);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let f = field();
        let c = compare(f.availability, &f);
        let s = c.to_string();
        assert!(s.contains("yearly downtime"));
        assert!(s.contains("95% CI"));
    }
}
