//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for field-data estimation.

use proptest::prelude::*;
use rascad_fielddata::{analyze, compare, OutageLog};

/// Random log: sorted non-overlapping outages inside the window.
fn arb_log() -> impl Strategy<Value = OutageLog> {
    (100.0..10_000.0f64, proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 0..10)).prop_map(
        |(window, raw)| {
            let mut log = OutageLog::new(window);
            let mut cursor = 0.0;
            for (gap_frac, dur_frac) in raw {
                let gap = gap_frac * window / 12.0;
                let dur = dur_frac * window / 50.0;
                let start = cursor + gap;
                if start + dur > window {
                    break;
                }
                log.record(start, dur);
                cursor = start + dur;
            }
            log
        },
    )
}

proptest! {
    /// Estimates are internally consistent for any log set.
    #[test]
    fn estimates_are_consistent(logs in proptest::collection::vec(arb_log(), 1..5)) {
        let e = analyze(&logs);
        prop_assert!((0.0..=1.0).contains(&e.availability));
        prop_assert!(e.downtime_hours >= 0.0);
        prop_assert!(
            (e.observation_hours
                - logs.iter().map(OutageLog::observation_hours).sum::<f64>())
            .abs()
                < 1e-9
        );
        let outages: usize = logs.iter().map(|l| l.outages().len()).sum();
        prop_assert_eq!(e.outages, outages);
        if outages > 0 {
            prop_assert!((e.mtbf_hours - e.observation_hours / outages as f64).abs() < 1e-9);
            prop_assert!((e.mttr_hours - e.downtime_hours / outages as f64).abs() < 1e-9);
        } else {
            prop_assert_eq!(e.availability, 1.0);
        }
        prop_assert!(
            (e.yearly_downtime_minutes - (1.0 - e.availability) * 525_600.0).abs() < 1e-6
        );
    }

    /// Pooling more observation time never widens the rate CI (for a
    /// fixed outage pattern, duplicated logs).
    #[test]
    fn pooling_narrows_rate_ci(log in arb_log()) {
        prop_assume!(!log.outages().is_empty());
        let one = analyze(&[log.clone()]);
        let four = analyze(&[log.clone(), log.clone(), log.clone(), log]);
        prop_assert!(four.rate_ci_half_width <= one.rate_ci_half_width + 1e-12);
    }

    /// A perfect prediction always has zero relative error and sits in
    /// the CI.
    #[test]
    fn self_comparison_is_exact(logs in proptest::collection::vec(arb_log(), 1..4)) {
        let e = analyze(&logs);
        let c = compare(e.availability, &e);
        prop_assert!(c.downtime_relative_error.abs() < 1e-9);
        prop_assert!(c.within_confidence_interval);
    }
}
