//! Tier B: analyses over generated per-block Markov chains.
//!
//! The generator (paper Section 4) emits one CTMC per redundant block.
//! A well-formed availability chain is irreducible: every state is
//! reachable from the initial `Ok` state, no state is absorbing, and
//! the whole chain is one component. Violations make the steady-state
//! solve either fail outright or silently return a degenerate
//! distribution, so they are reported as errors *before* solving.
//!
//! Stiffness is different: a chain whose transition rates span many
//! orders of magnitude (hardware MTBFs of 1e5 h against failover times
//! of minutes give rate ratios near 1e7) is still solvable, but
//! iterative methods converge slowly and accumulate round-off. The
//! stiffness heuristic recommends the GTH direct solver, which is
//! subtraction-free and immune to the problem.

use rascad_markov::dense::DenseMatrix;
use rascad_markov::{Ctmc, MarkovError, SolveOptions, SteadyStateMethod};
use rascad_spec::diag::{Diagnostic, Severity};

/// Exit-rate ratio (max/min over states with a positive exit rate) at
/// or above which a chain is flagged as stiff with warning severity
/// ([`codes::STIFF_CHAIN`]).
///
/// Calibrated above the bundled paper models: the Figures 1–2 data
/// center peaks at a ratio of ~1.1e7 (Interconnect Cable), which is
/// ordinary for hardware availability models and at most earns the
/// info-level note.
pub const STIFFNESS_WARN_RATIO: f64 = 1e9;

/// Rate ratio at or above which a note ([`codes::STIFFNESS_NOTE`]) is
/// emitted with info severity.
pub const STIFFNESS_INFO_RATIO: f64 = 1e6;

/// How many state labels a summary message lists before eliding.
const MAX_LISTED_STATES: usize = 5;

/// Chains above this size skip the measured condition estimate the
/// stiffness hints cite: the Hager estimator needs a dense `O(n³)`
/// factorization. Matches the certification layer's bound.
pub const CONDEST_MAX_STATES: usize = 128;

/// Iteration cap of the measured power-method probe the stiffness
/// hints cite. Generous enough that a well-conditioned chain converges
/// and cheap enough to run inside a lint pass.
pub const PROBE_MAX_ITERATIONS: usize = 512;

/// State count at or above which [`codes::LARGE_STATE_SPACE`]
/// recommends the sparse iterative solver rung. Mirrors
/// `rascad_core::SPARSE_STATE_THRESHOLD` (this crate depends only on
/// the markov layer, so the constant cannot be shared directly); the
/// solver ladder switches to the sparse rung at exactly this size.
pub const SPARSE_STATE_THRESHOLD: usize = 512;

/// Tier B diagnostic codes.
pub mod codes {
    /// A state cannot be reached from the initial state.
    pub const UNREACHABLE_STATE: &str = "RAS101";
    /// A state has no outgoing transitions.
    pub const ABSORBING_STATE: &str = "RAS102";
    /// The chain splits into multiple disconnected components.
    pub const DISCONNECTED_CHAIN: &str = "RAS103";
    /// Transition rates span ≥ [`super::STIFFNESS_WARN_RATIO`].
    pub const STIFF_CHAIN: &str = "RAS104";
    /// Transition rates span ≥ [`super::STIFFNESS_INFO_RATIO`].
    pub const STIFFNESS_NOTE: &str = "RAS105";
    /// State count ≥ [`super::SPARSE_STATE_THRESHOLD`] — the sparse
    /// iterative rung is the right solver.
    pub const LARGE_STATE_SPACE: &str = "RAS106";
}

/// Runs every Tier B analysis on one block's chain. `path` is the
/// block's slash path, used as the diagnostic location.
#[must_use]
pub fn analyze_chain(path: &str, chain: &Ctmc) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    reachability(path, chain, &mut diags);
    absorbing(path, chain, &mut diags);
    connectivity(path, chain, &mut diags);
    stiffness(path, chain, &mut diags);
    large_state_space(path, chain, &mut diags);
    diags
}

/// Joins up to [`MAX_LISTED_STATES`] labels, eliding the rest.
fn list_labels(chain: &Ctmc, ids: &[usize]) -> String {
    let mut out = ids
        .iter()
        .take(MAX_LISTED_STATES)
        .map(|&i| format!("\"{}\"", chain.states()[i].label))
        .collect::<Vec<_>>()
        .join(", ");
    if ids.len() > MAX_LISTED_STATES {
        out.push_str(&format!(", … ({} more)", ids.len() - MAX_LISTED_STATES));
    }
    out
}

/// RAS101: forward reachability from state 0 (the generator's initial
/// `Ok` state).
fn reachability(path: &str, chain: &Ctmc, diags: &mut Vec<Diagnostic>) {
    let n = chain.len();
    if n == 0 {
        return;
    }
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in chain.transitions() {
        succ[t.from].push(t.to);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0];
    seen[0] = true;
    while let Some(s) = stack.pop() {
        for &to in &succ[s] {
            if !seen[to] {
                seen[to] = true;
                stack.push(to);
            }
        }
    }
    let unreachable: Vec<usize> = (0..n).filter(|&i| !seen[i]).collect();
    if !unreachable.is_empty() {
        diags.push(Diagnostic::new(
            codes::UNREACHABLE_STATE,
            Severity::Error,
            path,
            format!(
                "{} of {} states unreachable from initial state \"{}\": {}",
                unreachable.len(),
                n,
                chain.states()[0].label,
                list_labels(chain, &unreachable),
            ),
        ));
    }
}

/// RAS102: absorbing states. In an availability chain every state must
/// eventually return toward `Ok`; an absorbing state makes the
/// long-run availability collapse to that state's reward. A
/// single-state chain (non-redundant block modeled as always-up) is
/// exempt.
fn absorbing(path: &str, chain: &Ctmc, diags: &mut Vec<Diagnostic>) {
    if chain.len() <= 1 {
        return;
    }
    for (i, rate) in chain.exit_rates().iter().enumerate() {
        if *rate == 0.0 {
            diags.push(Diagnostic::new(
                codes::ABSORBING_STATE,
                Severity::Error,
                path,
                format!(
                    "state \"{}\" is absorbing (no outgoing transitions); \
                     steady-state probability mass collects there",
                    chain.states()[i].label,
                ),
            ));
        }
    }
}

/// RAS103: weak connectivity. Transitions are treated as undirected;
/// more than one component means part of the state space is an island
/// and the steady-state distribution is not unique.
fn connectivity(path: &str, chain: &Ctmc, diags: &mut Vec<Diagnostic>) {
    let n = chain.len();
    if n <= 1 {
        return;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in chain.transitions() {
        adj[t.from].push(t.to);
        adj[t.to].push(t.from);
    }
    let mut comp = vec![usize::MAX; n];
    let mut components = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = components;
        while let Some(s) = stack.pop() {
            for &to in &adj[s] {
                if comp[to] == usize::MAX {
                    comp[to] = components;
                    stack.push(to);
                }
            }
        }
        components += 1;
    }
    if components > 1 {
        diags.push(Diagnostic::new(
            codes::DISCONNECTED_CHAIN,
            Severity::Error,
            path,
            format!("chain splits into {components} disconnected components"),
        ));
    }
}

/// RAS104/RAS105: stiffness heuristic over state *exit* rates (the
/// spread that governs uniformization constants and power-method
/// mixing; a slow individual transition out of a fast state does not
/// make a chain stiff). Both thresholds are inclusive, so a ratio of
/// exactly [`STIFFNESS_WARN_RATIO`] warns.
fn stiffness(path: &str, chain: &Ctmc, diags: &mut Vec<Diagnostic>) {
    let rates: Vec<f64> = chain.exit_rates().into_iter().filter(|&r| r > 0.0).collect();
    let Some(max) = rates.iter().copied().reduce(f64::max) else {
        return;
    };
    let min = rates.iter().copied().reduce(f64::min).unwrap_or(max);
    let ratio = max / min;
    if ratio < STIFFNESS_INFO_RATIO {
        return;
    }
    let evidence = measured_evidence(chain);
    if ratio >= STIFFNESS_WARN_RATIO {
        diags.push(Diagnostic::new(
            codes::STIFF_CHAIN,
            Severity::Warning,
            path,
            format!(
                "stiff chain: state exit rates span a ratio of {ratio:.1e} \
                 (fastest {max:.3e}/h, slowest {min:.3e}/h); {evidence}; use the \
                 GTH direct solver — iterative methods converge slowly here",
            ),
        ));
    } else {
        diags.push(Diagnostic::new(
            codes::STIFFNESS_NOTE,
            Severity::Info,
            path,
            format!(
                "state exit rates span a ratio of {ratio:.1e} ({evidence}); \
                 the GTH direct solver is the numerically safest choice",
            ),
        ));
    }
}

/// RAS106: large state space. At or above [`SPARSE_STATE_THRESHOLD`]
/// states the dense direct solvers need an `O(n²)` factorization and
/// `O(n³)` time, while the sparse Gauss–Seidel rung works in `O(nnz)`
/// per sweep. Like RAS104/RAS105, the hint cites measured evidence —
/// a capped sparse probe on *this* chain with its certified-quality
/// scaled residual — rather than the size heuristic alone.
#[allow(clippy::cast_precision_loss)] // state counts stay far below 2^52
fn large_state_space(path: &str, chain: &Ctmc, diags: &mut Vec<Diagnostic>) {
    let n = chain.len();
    if n < SPARSE_STATE_THRESHOLD {
        return;
    }
    // Working set of one dense n×n f64 factorization.
    let dense_mib = (n * n * 8) as f64 / (1024.0 * 1024.0);
    let opts =
        SolveOptions { max_iterations: Some(PROBE_MAX_ITERATIONS), ..SolveOptions::default() };
    let evidence = match chain.steady_state_with(SteadyStateMethod::Sparse, &opts) {
        Ok(pi) => {
            // Cite the certified quantity: the scaled residual of the
            // probe's iterate (deterministic, so golden-stable).
            let residual =
                chain.generator().vec_mul(&pi).iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
            let norm = 2.0 * chain.exit_rates().iter().fold(0.0_f64, |a, &b| a.max(b));
            let scaled = if norm > 0.0 { residual / norm } else { residual };
            format!(
                "sparse probe converged within {PROBE_MAX_ITERATIONS} sweeps, \
                 scaled residual {scaled:.1e}"
            )
        }
        Err(MarkovError::NotConverged { iterations, residual, .. }) => {
            format!("sparse probe gave up after {iterations} sweeps (residual {residual:.1e})")
        }
        Err(e) => format!("sparse probe failed: {e}"),
    };
    diags.push(Diagnostic::new(
        codes::LARGE_STATE_SPACE,
        Severity::Info,
        path,
        format!(
            "large state space: {n} states; a dense factorization needs \
             ~{dense_mib:.0} MiB and O(n³) time, each sparse sweep is \
             O(transitions) ({evidence}); the solver ladder selects the \
             sparse iterative rung automatically at ≥ {SPARSE_STATE_THRESHOLD} states",
        ),
    ));
}

/// Measured numerical evidence the stiffness hints cite, so the solver
/// recommendation rests on what the numerics actually do on *this*
/// chain rather than on the rate ratio alone: a Hager 1-norm condition
/// estimate of the steady-state system (small chains) and a capped
/// power-iteration probe.
fn measured_evidence(chain: &Ctmc) -> String {
    let mut parts = Vec::new();
    let n = chain.len();
    if (2..=CONDEST_MAX_STATES).contains(&n) {
        // The system the direct rungs solve: Qᵀ with the last equation
        // replaced by the normalization row.
        let q = chain.generator().to_dense();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = q[(j, i)];
            }
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        if let Ok(k) = a.condest_1norm() {
            parts.push(format!("measured condition estimate {k:.1e}"));
        }
    }
    let opts =
        SolveOptions { max_iterations: Some(PROBE_MAX_ITERATIONS), ..SolveOptions::default() };
    match chain.steady_state_with(SteadyStateMethod::Power, &opts) {
        Ok(_) => {
            parts.push(format!("power probe converged within {PROBE_MAX_ITERATIONS} iterations"));
        }
        Err(MarkovError::NotConverged { iterations, residual, .. }) => {
            parts.push(format!(
                "power probe gave up after {iterations} iterations (residual {residual:.1e})"
            ));
        }
        Err(e) => parts.push(format!("power probe failed: {e}")),
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_markov::CtmcBuilder;

    fn two_state(up_rate: f64, down_rate: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("Ok", 1.0);
        let down = b.add_state("Down", 0.0);
        b.add_transition(up, down, down_rate);
        b.add_transition(down, up, up_rate);
        b.build().unwrap()
    }

    #[test]
    fn single_state_chain_is_clean() {
        let mut b = CtmcBuilder::new();
        b.add_state("Ok", 1.0);
        let chain = b.build().unwrap();
        assert_eq!(analyze_chain("Sys/A", &chain), Vec::new());
    }

    #[test]
    fn healthy_two_state_chain_is_clean() {
        let chain = two_state(2.0, 1e-4);
        assert_eq!(analyze_chain("Sys/A", &chain), Vec::new());
    }

    #[test]
    fn fully_absorbing_chain_reports_everything() {
        // Three states, no transitions at all.
        let mut b = CtmcBuilder::new();
        b.add_state("Ok", 1.0);
        b.add_state("PF1", 0.0);
        b.add_state("PF2", 0.0);
        let chain = b.build().unwrap();
        let diags = analyze_chain("Sys/A", &chain);
        let codes_found: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes_found,
            vec![
                codes::UNREACHABLE_STATE,
                codes::ABSORBING_STATE,
                codes::ABSORBING_STATE,
                codes::ABSORBING_STATE,
                codes::DISCONNECTED_CHAIN,
            ]
        );
        assert!(diags[0].message.contains("2 of 3 states"));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(diags.iter().all(|d| d.path == "Sys/A"));
    }

    #[test]
    fn unreachable_state_flagged_even_when_connected() {
        // Down -> Ok only: Down is weakly connected but unreachable.
        let mut b = CtmcBuilder::new();
        let ok = b.add_state("Ok", 1.0);
        let down = b.add_state("Down", 0.0);
        b.add_transition(down, ok, 1.0);
        let chain = b.build().unwrap();
        let diags = analyze_chain("Sys/A", &chain);
        let codes_found: Vec<&str> = diags.iter().map(|d| d.code).collect();
        // Ok has no exit, so it is also absorbing.
        assert_eq!(codes_found, vec![codes::UNREACHABLE_STATE, codes::ABSORBING_STATE]);
        assert!(diags[0].message.contains("\"Down\""));
    }

    #[test]
    fn disconnected_components_flagged() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("Ok", 1.0);
        let a2 = b.add_state("Down", 0.0);
        let island = b.add_state("Island", 1.0);
        let island2 = b.add_state("Island2", 0.0);
        b.add_transition(a, a2, 1.0);
        b.add_transition(a2, a, 1.0);
        b.add_transition(island, island2, 1.0);
        b.add_transition(island2, island, 1.0);
        let chain = b.build().unwrap();
        let diags = analyze_chain("Sys/A", &chain);
        assert!(diags.iter().any(|d| d.code == codes::DISCONNECTED_CHAIN
            && d.message.contains("2 disconnected components")));
    }

    #[test]
    fn ratio_exactly_at_warn_threshold_warns() {
        let chain = two_state(STIFFNESS_WARN_RATIO, 1.0);
        let diags = analyze_chain("Sys/A", &chain);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::STIFF_CHAIN);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("GTH"));
        // The hint cites measured numerics, not just the rate ratio.
        assert!(diags[0].message.contains("measured condition estimate"), "{}", diags[0].message);
        assert!(diags[0].message.contains("power probe"), "{}", diags[0].message);
    }

    #[test]
    fn warn_hint_cites_a_condition_estimate_of_the_right_magnitude() {
        // Steady-state system of the 1e9-stiff two-state chain:
        // A = [[-1, 1e9], [1, 1]] — condition number on the order of
        // the rate ratio. The cited estimate must reflect that, not be
        // a canned figure.
        let chain = two_state(STIFFNESS_WARN_RATIO, 1.0);
        let diags = analyze_chain("Sys/A", &chain);
        let msg = &diags[0].message;
        let est = msg
            .split("measured condition estimate ")
            .nth(1)
            .and_then(|rest| rest.split([',', ';']).next())
            .and_then(|tok| tok.trim().parse::<f64>().ok())
            .unwrap_or_else(|| panic!("no parsable estimate in: {msg}"));
        assert!(est > 1e7, "estimate {est} too small for a 1e9-stiff chain");
    }

    #[test]
    fn ratio_at_info_threshold_is_info_only() {
        let chain = two_state(STIFFNESS_INFO_RATIO, 1.0);
        let diags = analyze_chain("Sys/A", &chain);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::STIFFNESS_NOTE);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("measured condition estimate"), "{}", diags[0].message);
    }

    #[test]
    fn ratio_below_info_threshold_is_clean() {
        let chain = two_state(STIFFNESS_INFO_RATIO / 2.0, 1.0);
        assert!(analyze_chain("Sys/A", &chain).is_empty());
    }

    /// Birth–death chain with `levels + 1` states and a benign (< 1e6)
    /// exit-rate spread, so only the size-based analysis can fire.
    #[allow(clippy::cast_precision_loss)]
    fn birth_death(levels: usize) -> Ctmc {
        let mut b = CtmcBuilder::new();
        for j in 0..=levels {
            b.add_state(format!("L{j}"), if j == 0 { 1.0 } else { 0.0 });
        }
        for j in 0..levels {
            b.add_transition(j, j + 1, (levels - j) as f64 * 1e-4);
            b.add_transition(j + 1, j, (j + 1) as f64 * 0.1);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_below_sparse_threshold_has_no_size_note() {
        let chain = birth_death(SPARSE_STATE_THRESHOLD - 2); // n-1 states
        assert!(analyze_chain("Sys/A", &chain).iter().all(|d| d.code != codes::LARGE_STATE_SPACE));
    }

    #[test]
    fn chain_at_sparse_threshold_recommends_the_sparse_rung() {
        let chain = birth_death(SPARSE_STATE_THRESHOLD - 1); // exactly n states
        let diags = analyze_chain("Sys/A", &chain);
        let d = diags
            .iter()
            .find(|d| d.code == codes::LARGE_STATE_SPACE)
            .unwrap_or_else(|| panic!("RAS106 missing: {diags:?}"));
        assert_eq!(d.severity, Severity::Info);
        // The hint cites measured probe evidence, not just the size.
        assert!(d.message.contains("sparse probe"), "{}", d.message);
        assert!(d.message.contains("scaled residual"), "{}", d.message);
        assert!(d.message.contains("512 states"), "{}", d.message);
    }

    #[test]
    fn generated_bundled_models_are_clean() {
        // Chains the generator emits for the library models must pass
        // Tier B with at most info-level notes.
        for (name, spec) in [
            ("datacenter", rascad_library::datacenter::data_center()),
            ("e10000", rascad_library::e10000::e10000()),
            (
                "cluster",
                rascad_library::cluster::two_node_cluster(
                    rascad_library::cluster::ClusterConfig::default(),
                ),
            ),
            ("workgroup", rascad_library::workgroup::workgroup()),
        ] {
            spec.root.walk(&mut |_, path, block| {
                let m = rascad_core::generate_block(&block.params, &spec.globals).unwrap();
                for d in analyze_chain(path, &m.chain) {
                    assert!(d.severity < Severity::Warning, "{name}: unexpected {d}");
                }
            });
        }
    }
}
