//! The diagnostic catalog: one entry per `RASxxx` code.
//!
//! Every code the engine can emit is documented here with its default
//! severity, a one-line title, a minimal example that triggers it, and
//! the remedy. `rascad lint --explain RASxxx` prints an entry; the
//! README's catalog table is generated from the same wording.

use rascad_spec::diag::Severity;
use rascad_spec::validate::codes as tier_a;

use crate::tier_b::codes as tier_b;
use crate::tier_c::codes as tier_c;

/// Documentation for one diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Stable code, e.g. `"RAS006"`.
    pub code: &'static str,
    /// Severity the engine emits this code with.
    pub severity: Severity,
    /// One-line title.
    pub title: &'static str,
    /// A minimal way to trigger the finding.
    pub example: &'static str,
    /// How to fix it.
    pub remedy: &'static str,
}

/// Every diagnostic code, ordered by code. Tier A (`RAS001`–`RAS099`)
/// covers spec-level analyses; Tier B (`RAS101`–`RAS198`) covers
/// generated-model analyses; `RAS199` is the cross-tier skip note;
/// Tier C (`RAS201`–`RAS299`) covers structural analyses over the
/// compiled structure function.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        code: tier_a::EMPTY_DIAGRAM,
        severity: Severity::Error,
        title: "diagram has no blocks",
        example: "diagram \"Sys\" { }",
        remedy: "add at least one block, or remove the empty subdiagram",
    },
    CatalogEntry {
        code: tier_a::DUPLICATE_BLOCK,
        severity: Severity::Error,
        title: "two blocks in one diagram share a name",
        example: "two `block \"CPU\"` entries in the same diagram",
        remedy: "rename one block; paths must be unambiguous",
    },
    CatalogEntry {
        code: tier_a::BLANK_NAME,
        severity: Severity::Error,
        title: "block or diagram name is blank",
        example: "block \"\" { … }",
        remedy: "give every block and diagram a non-empty name",
    },
    CatalogEntry {
        code: tier_a::ZERO_QUANTITY,
        severity: Severity::Error,
        title: "quantity is zero",
        example: "quantity = 0",
        remedy: "set quantity to the number of installed units (≥ 1)",
    },
    CatalogEntry {
        code: tier_a::ZERO_MIN_QUANTITY,
        severity: Severity::Error,
        title: "minimum quantity required is zero",
        example: "min_quantity = 0",
        remedy: "set min_quantity to the units needed for service (≥ 1)",
    },
    CatalogEntry {
        code: tier_a::MIN_EXCEEDS_QUANTITY,
        severity: Severity::Error,
        title: "minimum quantity exceeds quantity (N < K)",
        example: "quantity = 1 with min_quantity = 2",
        remedy: "install at least min_quantity units, or lower the requirement",
    },
    CatalogEntry {
        code: tier_a::NONPOSITIVE_MTBF,
        severity: Severity::Error,
        title: "MTBF is zero or negative",
        example: "mtbf = 0 h",
        remedy: "set a positive MTBF; permanent failures need a rate",
    },
    CatalogEntry {
        code: tier_a::NEGATIVE_FIT,
        severity: Severity::Error,
        title: "transient failure rate (FIT) is negative",
        example: "transient_fit = -10 fit",
        remedy: "use 0 for no transient failures, a positive FIT otherwise",
    },
    CatalogEntry {
        code: tier_a::NEGATIVE_MTTR,
        severity: Severity::Error,
        title: "an MTTR part is negative",
        example: "mttr_diagnosis = -5 min",
        remedy: "all MTTR parts (diagnosis/correction/verification) must be ≥ 0",
    },
    CatalogEntry {
        code: tier_a::ZERO_TOTAL_MTTR,
        severity: Severity::Error,
        title: "the MTTR parts sum to zero",
        example: "all three mttr_* parts set to 0 min",
        remedy: "repairs take time; give at least one MTTR part a positive value",
    },
    CatalogEntry {
        code: tier_a::NEGATIVE_SERVICE_RESPONSE,
        severity: Severity::Error,
        title: "service response time is negative",
        example: "service_response = -4 h",
        remedy: "use 0 for on-site staff, a positive duration otherwise",
    },
    CatalogEntry {
        code: tier_a::PROBABILITY_RANGE,
        severity: Severity::Error,
        title: "a probability parameter is outside [0, 1]",
        example: "p_correct_diagnosis = 1.5",
        remedy: "probabilities (pcd, p_latent_fault, p_spf) must be within [0, 1]",
    },
    CatalogEntry {
        code: tier_a::REDUNDANCY_ON_NONREDUNDANT,
        severity: Severity::Error,
        title: "redundancy section on a non-redundant block",
        example: "quantity = 1, min_quantity = 1, plus a redundancy { … } section",
        remedy: "drop the redundancy section, or make the block redundant (N > K)",
    },
    CatalogEntry {
        code: tier_a::REDUNDANCY_MISSING,
        severity: Severity::Error,
        title: "redundant block lacks redundancy parameters",
        example: "BlockParams with quantity 2, min 1 and redundancy = None (API only)",
        remedy: "attach RedundancyParams; the DSL parser provisions defaults",
    },
    CatalogEntry {
        code: tier_a::GLOBAL_PARAM,
        severity: Severity::Error,
        title: "a global parameter is out of range",
        example: "global { mttm = -24 h }",
        remedy: "fix the offending global; the message names it",
    },
    CatalogEntry {
        code: tier_a::REDUNDANCY_DURATION,
        severity: Severity::Error,
        title: "a redundancy duration is negative",
        example: "failover_time = -5 min",
        remedy: "failover/SPF-recovery/reintegration times and MTTDLF must be ≥ 0",
    },
    CatalogEntry {
        code: tier_a::MTTR_GE_MTBF,
        severity: Severity::Warning,
        title: "MTTR is not smaller than MTBF",
        example: "mtbf = 1 h with MTTR parts summing to 2 h",
        remedy: "check the units; a unit in repair longer than in service is implausible",
    },
    CatalogEntry {
        code: tier_a::IMPLAUSIBLE_UNITS,
        severity: Severity::Warning,
        title: "a duration looks like a unit mix-up",
        example: "mtbf = 0.5 h (likely meant 0.5 years), or an MTTR part over a week",
        remedy: "re-check the h/min suffix on the named parameter",
    },
    CatalogEntry {
        code: tier_a::IGNORED_SCENARIO_DURATION,
        severity: Severity::Warning,
        title: "duration configured for a transparent scenario",
        example: "recovery = transparent with failover_time = 5 min",
        remedy: "transparent events have no downtime: zero the duration or make \
                 the scenario nontransparent",
    },
    CatalogEntry {
        code: tier_a::HIERARCHY_RECURSION,
        severity: Severity::Warning,
        title: "block name repeats along its ancestor chain",
        example: "block \"Node\" containing a subdiagram with another block \"Node\"",
        remedy: "rename the inner block; repeated names suggest an unintended paste",
    },
    CatalogEntry {
        code: tier_a::LOW_PCD,
        severity: Severity::Info,
        title: "probability of correct diagnosis is low",
        example: "p_correct_diagnosis = 0.4",
        remedy: "values below 0.5 dominate the availability via repeat repairs; \
                 confirm the figure is intentional",
    },
    CatalogEntry {
        code: tier_b::UNREACHABLE_STATE,
        severity: Severity::Error,
        title: "chain state unreachable from the initial state",
        example: "a hand-built CTMC whose \"Down\" state has no inbound transition",
        remedy: "generated chains are always reachable; for hand-built chains, \
                 add the missing failure transition",
    },
    CatalogEntry {
        code: tier_b::ABSORBING_STATE,
        severity: Severity::Error,
        title: "chain state has no outgoing transitions",
        example: "a CTMC whose \"SPF\" state lacks a repair transition",
        remedy: "availability chains must return toward Ok from every state; \
                 add the repair/recovery transition",
    },
    CatalogEntry {
        code: tier_b::DISCONNECTED_CHAIN,
        severity: Severity::Error,
        title: "chain splits into disconnected components",
        example: "two independent up/down cycles in one CTMC",
        remedy: "a block's chain must be one component; split the model into \
                 separate blocks instead",
    },
    CatalogEntry {
        code: tier_b::STIFF_CHAIN,
        severity: Severity::Warning,
        title: "state exit rates span ≥ 1e9 (stiff chain)",
        example: "mtbf = 1e9 h next to failover_time = 1 min",
        remedy: "solve with the GTH direct method; iterative solvers converge \
                 slowly and lose precision on stiff chains",
    },
    CatalogEntry {
        code: tier_b::STIFFNESS_NOTE,
        severity: Severity::Info,
        title: "state exit rates span ≥ 1e6",
        example: "typical hardware MTBFs next to minute-scale repairs",
        remedy: "no action needed; GTH is the numerically safest solver choice",
    },
    CatalogEntry {
        code: tier_b::LARGE_STATE_SPACE,
        severity: Severity::Info,
        title: "large state space — sparse iterative rung recommended",
        example: "a redundant block with hundreds of units (≥ 512 chain states)",
        remedy: "no action needed; the solver ladder routes chains of this size \
                 to the sparse Gauss–Seidel rung automatically, and the hint \
                 cites a measured probe of its convergence",
    },
    CatalogEntry {
        code: crate::codes::TIERS_SKIPPED,
        severity: Severity::Info,
        title: "Tier B/C skipped: model not generated",
        example: "lint --tier-b (or --tier-c) on a spec with Tier A errors",
        remedy: "fix the spec-level errors first; later tiers need a generated \
                 model, so their absence here means \"not analyzed\", not \"clean\"",
    },
    CatalogEntry {
        code: tier_c::SINGLE_POINT_OF_FAILURE,
        severity: Severity::Info,
        title: "single point of failure (order-1 minimal cut set)",
        example: "quantity = 1 with min_quantity = 1 anywhere in the hierarchy",
        remedy: "add redundancy (quantity > min_quantity) if the availability \
                 target demands it; in a serial RBD every margin-free block is \
                 expected to appear here",
    },
    CatalogEntry {
        code: tier_c::IDLE_REDUNDANCY,
        severity: Severity::Info,
        title: "redundancy absent from every analyzed minimal cut set",
        example: "quantity = 8 with min_quantity = 2 under --max-cut-order 4",
        remedy: "the margin exceeds the analysis depth: raise --max-cut-order to \
                 see the block's cuts, or trim sparing the structure never needs",
    },
    CatalogEntry {
        code: tier_c::STRUCTURAL_IMPORTANCE,
        severity: Severity::Info,
        title: "top-k structural importance (Birnbaum at p = 1/2)",
        example: "any structure; the least-redundant blocks rank first",
        remedy: "no action needed; spend redundancy on the top-ranked blocks \
                 first when searching the design space",
    },
    CatalogEntry {
        code: tier_c::SYMMETRY_CLASS,
        severity: Severity::Info,
        title: "symmetry class of interchangeable components",
        example: "quantity = 3 identical units, or two sibling blocks equal up \
                 to naming",
        remedy: "no action needed; the class is exactly lumpable, so a \
                 symmetry-aware solver can collapse its state space",
    },
    CatalogEntry {
        code: tier_c::CUT_SET_BOUND,
        severity: Severity::Info,
        title: "cut-set unavailability upper bound vs the exact solve",
        example: "lint --tier-c on any spec the exact solver accepts",
        remedy: "no action needed; if the exact unavailability ever exceeded the \
                 union bound, the generator and solver would disagree — report it",
    },
];

/// Looks up a code (e.g. `"RAS006"`), case-sensitively.
#[must_use]
pub fn lookup(code: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.code == code)
}

/// Renders one entry as the multi-line `--explain` text.
#[must_use]
pub fn explain(entry: &CatalogEntry) -> String {
    format!(
        "{code} ({severity}): {title}\n  example: {example}\n  remedy:  {remedy}\n",
        code = entry.code,
        severity = entry.severity,
        title = entry.title,
        example = entry.example,
        remedy = entry.remedy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].code < pair[1].code, "{} !< {}", pair[0].code, pair[1].code);
        }
    }

    #[test]
    fn lookup_finds_known_codes() {
        assert_eq!(lookup("RAS006").unwrap().severity, Severity::Error);
        assert_eq!(lookup("RAS104").unwrap().severity, Severity::Warning);
        assert!(lookup("RAS999").is_none());
    }

    #[test]
    fn every_tier_a_code_is_cataloged() {
        use rascad_spec::validate::codes::*;
        for code in [
            EMPTY_DIAGRAM,
            DUPLICATE_BLOCK,
            BLANK_NAME,
            ZERO_QUANTITY,
            ZERO_MIN_QUANTITY,
            MIN_EXCEEDS_QUANTITY,
            NONPOSITIVE_MTBF,
            NEGATIVE_FIT,
            NEGATIVE_MTTR,
            ZERO_TOTAL_MTTR,
            NEGATIVE_SERVICE_RESPONSE,
            PROBABILITY_RANGE,
            REDUNDANCY_ON_NONREDUNDANT,
            REDUNDANCY_MISSING,
            GLOBAL_PARAM,
            REDUNDANCY_DURATION,
            MTTR_GE_MTBF,
            IMPLAUSIBLE_UNITS,
            IGNORED_SCENARIO_DURATION,
            HIERARCHY_RECURSION,
            LOW_PCD,
        ] {
            assert!(lookup(code).is_some(), "{code} missing from catalog");
        }
    }

    #[test]
    fn explain_mentions_code_and_remedy() {
        let text = explain(lookup("RAS104").unwrap());
        assert!(text.contains("RAS104") && text.contains("GTH"));
    }

    /// Catalog integrity: every code registered anywhere in this crate
    /// (Tier A, B, C, and the driver's own codes) has an entry with a
    /// non-empty example and remedy, and `explain` round-trips all of
    /// the entry's documentation fields.
    #[test]
    fn every_registered_code_is_cataloged_with_example_and_remedy() {
        let tier_a: &[&str] = &{
            use rascad_spec::validate::codes::*;
            [
                EMPTY_DIAGRAM,
                DUPLICATE_BLOCK,
                BLANK_NAME,
                ZERO_QUANTITY,
                ZERO_MIN_QUANTITY,
                MIN_EXCEEDS_QUANTITY,
                NONPOSITIVE_MTBF,
                NEGATIVE_FIT,
                NEGATIVE_MTTR,
                ZERO_TOTAL_MTTR,
                NEGATIVE_SERVICE_RESPONSE,
                PROBABILITY_RANGE,
                REDUNDANCY_ON_NONREDUNDANT,
                REDUNDANCY_MISSING,
                GLOBAL_PARAM,
                REDUNDANCY_DURATION,
                MTTR_GE_MTBF,
                IMPLAUSIBLE_UNITS,
                IGNORED_SCENARIO_DURATION,
                HIERARCHY_RECURSION,
                LOW_PCD,
            ]
        };
        let tier_b: &[&str] = &{
            use crate::tier_b::codes::*;
            [
                UNREACHABLE_STATE,
                ABSORBING_STATE,
                DISCONNECTED_CHAIN,
                STIFF_CHAIN,
                STIFFNESS_NOTE,
                LARGE_STATE_SPACE,
            ]
        };
        let tier_c: &[&str] = &{
            use crate::tier_c::codes::*;
            [
                SINGLE_POINT_OF_FAILURE,
                IDLE_REDUNDANCY,
                STRUCTURAL_IMPORTANCE,
                SYMMETRY_CLASS,
                CUT_SET_BOUND,
            ]
        };
        let driver: &[&str] = &[crate::codes::TIERS_SKIPPED];

        let registered: Vec<&str> = [tier_a, tier_b, tier_c, driver].concat();
        // Every registered code is documented, non-trivially.
        for code in &registered {
            let entry = lookup(code).unwrap_or_else(|| panic!("{code} missing from catalog"));
            assert!(!entry.title.trim().is_empty(), "{code}: empty title");
            assert!(!entry.example.trim().is_empty(), "{code}: empty example");
            assert!(!entry.remedy.trim().is_empty(), "{code}: empty remedy");
            let text = explain(entry);
            for field in [entry.code, entry.title, entry.example, entry.remedy] {
                assert!(text.contains(field), "{code}: explain drops {field:?}");
            }
        }
        // And nothing is documented that the engine never emits.
        for entry in CATALOG {
            assert!(
                registered.contains(&entry.code),
                "{} cataloged but registered nowhere in crates/lint",
                entry.code
            );
        }
    }
}
