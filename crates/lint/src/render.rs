//! Report rendering: a human-readable table and JSON lines.
//!
//! The JSON form mirrors the `rascad-obs` sink style: one compact
//! object per line, a `type` discriminator first, and a trailing
//! summary record — so `rascad lint --format json` output can be
//! concatenated with observability streams and filtered with the same
//! tooling. Both forms are deterministic (no timestamps) so they can
//! be golden-tested.

use rascad_obs::json::Value;

use crate::LintReport;

/// Renders the human-readable table: one aligned row per finding plus
/// a summary line.
pub fn render_human(report: &LintReport) -> String {
    if report.is_clean() {
        return "no findings\n".to_string();
    }
    let rows: Vec<(String, String, String, &str)> = report
        .diagnostics
        .iter()
        .map(|d| {
            (
                format!("{}[{}]", d.severity, d.code),
                d.location(),
                d.message.clone(),
                d.severity.as_str(),
            )
        })
        .collect();
    let head_width = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let loc_width = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (head, loc, message, _) in &rows {
        out.push_str(&format!("{head:<head_width$}  {loc:<loc_width$}  {message}\n"));
    }
    let (errors, warnings, infos) = report.counts();
    out.push_str(&format!("{errors} error(s), {warnings} warning(s), {infos} info(s)\n"));
    out
}

/// Renders JSON lines: one `{"type":"diagnostic",…}` object per
/// finding, then a `{"type":"summary",…}` record.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let obj = Value::Obj(vec![
            ("type".into(), Value::from("diagnostic")),
            ("code".into(), Value::from(d.code)),
            ("severity".into(), Value::from(d.severity.as_str())),
            ("path".into(), Value::from(d.path.as_str())),
            ("parameter".into(), d.parameter.map_or(Value::Null, Value::from)),
            ("line".into(), d.line.map_or(Value::Null, Value::from)),
            ("column".into(), d.column.map_or(Value::Null, Value::from)),
            ("message".into(), Value::from(d.message.as_str())),
        ]);
        out.push_str(&obj.to_string_compact());
        out.push('\n');
    }
    let (errors, warnings, infos) = report.counts();
    let summary = Value::Obj(vec![
        ("type".into(), Value::from("summary")),
        ("errors".into(), Value::from(errors)),
        ("warnings".into(), Value::from(warnings)),
        ("infos".into(), Value::from(infos)),
    ]);
    out.push_str(&summary.to_string_compact());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::diag::{Diagnostic, Severity};

    fn report() -> LintReport {
        let mut r = LintReport::new();
        r.extend(vec![
            Diagnostic::new("RAS006", Severity::Error, "Sys/A", "minimum quantity 2 exceeds 1")
                .with_parameter("min_quantity")
                .with_position(3, 11),
            Diagnostic::new("RAS017", Severity::Warning, "Sys/B", "MTTR not below MTBF"),
        ]);
        r
    }

    #[test]
    fn human_table_aligns_and_summarizes() {
        let text = render_human(&report());
        assert!(text.contains("error[RAS006]    Sys/A.min_quantity:3:11"));
        assert!(text.contains("warning[RAS017]"));
        assert!(text.ends_with("1 error(s), 1 warning(s), 0 info(s)\n"));
    }

    #[test]
    fn empty_report_renders_no_findings() {
        assert_eq!(render_human(&LintReport::new()), "no findings\n");
    }

    #[test]
    fn json_lines_have_discriminator_and_summary() {
        let text = render_json(&report());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"diagnostic\",\"code\":\"RAS006\""));
        assert!(lines[0].contains("\"parameter\":\"min_quantity\""));
        assert!(lines[0].contains("\"line\":3"));
        assert!(lines[1].contains("\"parameter\":null"));
        assert_eq!(lines[2], "{\"type\":\"summary\",\"errors\":1,\"warnings\":1,\"infos\":0}");
    }

    #[test]
    fn json_parses_back() {
        for line in render_json(&report()).lines() {
            assert!(rascad_obs::json::parse(line).is_ok());
        }
    }
}
