//! Report rendering: a human-readable table, JSON lines, and SARIF.
//!
//! The JSON form mirrors the `rascad-obs` sink style: one compact
//! object per line, a `type` discriminator first, and a trailing
//! summary record — so `rascad lint --format json` output can be
//! concatenated with observability streams and filtered with the same
//! tooling. The SARIF form targets code-scanning uploaders
//! (SARIF 2.1.0, one run, rules drawn from the [`crate::catalog`]).
//! All forms are deterministic (no timestamps) so they can be
//! golden-tested.

use rascad_obs::json::Value;
use rascad_spec::diag::Severity;

use crate::LintReport;

/// Renders the human-readable table: one aligned row per finding plus
/// a summary line.
#[must_use]
pub fn render_human(report: &LintReport) -> String {
    if report.is_clean() {
        return "no findings\n".to_string();
    }
    let rows: Vec<(String, String, String, &str)> = report
        .diagnostics
        .iter()
        .map(|d| {
            (
                format!("{}[{}]", d.severity, d.code),
                d.location(),
                d.message.clone(),
                d.severity.as_str(),
            )
        })
        .collect();
    let head_width = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let loc_width = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (head, loc, message, _) in &rows {
        out.push_str(&format!("{head:<head_width$}  {loc:<loc_width$}  {message}\n"));
    }
    let (errors, warnings, infos) = report.counts();
    out.push_str(&format!("{errors} error(s), {warnings} warning(s), {infos} info(s)\n"));
    out
}

/// Renders JSON lines: one `{"type":"diagnostic",…}` object per
/// finding, then a `{"type":"summary",…}` record.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let obj = Value::Obj(vec![
            ("type".into(), Value::from("diagnostic")),
            ("code".into(), Value::from(d.code)),
            ("severity".into(), Value::from(d.severity.as_str())),
            ("path".into(), Value::from(d.path.as_str())),
            ("parameter".into(), d.parameter.map_or(Value::Null, Value::from)),
            ("line".into(), d.line.map_or(Value::Null, Value::from)),
            ("column".into(), d.column.map_or(Value::Null, Value::from)),
            ("message".into(), Value::from(d.message.as_str())),
        ]);
        out.push_str(&obj.to_string_compact());
        out.push('\n');
    }
    let (errors, warnings, infos) = report.counts();
    let summary = Value::Obj(vec![
        ("type".into(), Value::from("summary")),
        ("errors".into(), Value::from(errors)),
        ("warnings".into(), Value::from(warnings)),
        ("infos".into(), Value::from(infos)),
    ]);
    out.push_str(&summary.to_string_compact());
    out.push('\n');
    out
}

/// Renders a SARIF 2.1.0 document with one run. Rules are the catalog
/// entries of the codes present in the report; `artifact` is the
/// lint target's URI (the spec file path), attached to every result's
/// physical location when given.
#[must_use]
pub fn render_sarif(report: &LintReport, artifact: Option<&str>) -> String {
    let mut rule_codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    rule_codes.sort_unstable();
    rule_codes.dedup();
    let rules: Vec<Value> = rule_codes
        .iter()
        .map(|code| {
            let mut fields = vec![("id".into(), Value::from(*code))];
            if let Some(entry) = crate::catalog::lookup(code) {
                fields.push((
                    "shortDescription".into(),
                    Value::Obj(vec![("text".into(), Value::from(entry.title))]),
                ));
                fields.push((
                    "help".into(),
                    Value::Obj(vec![("text".into(), Value::from(crate::catalog::explain(entry)))]),
                ));
            }
            Value::Obj(fields)
        })
        .collect();

    let results: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Info => "note",
            };
            let mut location = Vec::new();
            if let Some(uri) = artifact {
                let mut physical = vec![(
                    "artifactLocation".into(),
                    Value::Obj(vec![("uri".into(), Value::from(uri))]),
                )];
                if let (Some(line), Some(column)) = (d.line, d.column) {
                    physical.push((
                        "region".into(),
                        Value::Obj(vec![
                            ("startLine".into(), Value::from(line)),
                            ("startColumn".into(), Value::from(column)),
                        ]),
                    ));
                }
                location.push(("physicalLocation".into(), Value::Obj(physical)));
            }
            location.push((
                "logicalLocations".into(),
                Value::Arr(vec![Value::Obj(vec![(
                    "fullyQualifiedName".into(),
                    Value::from(d.location()),
                )])]),
            ));
            Value::Obj(vec![
                ("ruleId".into(), Value::from(d.code)),
                ("level".into(), Value::from(level)),
                (
                    "message".into(),
                    Value::Obj(vec![("text".into(), Value::from(d.message.as_str()))]),
                ),
                ("locations".into(), Value::Arr(vec![Value::Obj(location)])),
            ])
        })
        .collect();

    let doc = Value::Obj(vec![
        ("$schema".into(), Value::from("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version".into(), Value::from("2.1.0")),
        (
            "runs".into(),
            Value::Arr(vec![Value::Obj(vec![
                (
                    "tool".into(),
                    Value::Obj(vec![(
                        "driver".into(),
                        Value::Obj(vec![
                            ("name".into(), Value::from("rascad-lint")),
                            (
                                "informationUri".into(),
                                Value::from("https://example.invalid/rascad"),
                            ),
                            ("rules".into(), Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), Value::Arr(results)),
            ])]),
        ),
    ]);
    let mut out = doc.to_string_compact();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::diag::{Diagnostic, Severity};

    fn report() -> LintReport {
        let mut r = LintReport::new();
        r.extend(vec![
            Diagnostic::new("RAS006", Severity::Error, "Sys/A", "minimum quantity 2 exceeds 1")
                .with_parameter("min_quantity")
                .with_position(3, 11),
            Diagnostic::new("RAS017", Severity::Warning, "Sys/B", "MTTR not below MTBF"),
        ]);
        r
    }

    #[test]
    fn human_table_aligns_and_summarizes() {
        let text = render_human(&report());
        assert!(text.contains("error[RAS006]    Sys/A.min_quantity:3:11"));
        assert!(text.contains("warning[RAS017]"));
        assert!(text.ends_with("1 error(s), 1 warning(s), 0 info(s)\n"));
    }

    #[test]
    fn empty_report_renders_no_findings() {
        assert_eq!(render_human(&LintReport::new()), "no findings\n");
    }

    #[test]
    fn json_lines_have_discriminator_and_summary() {
        let text = render_json(&report());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"diagnostic\",\"code\":\"RAS006\""));
        assert!(lines[0].contains("\"parameter\":\"min_quantity\""));
        assert!(lines[0].contains("\"line\":3"));
        assert!(lines[1].contains("\"parameter\":null"));
        assert_eq!(lines[2], "{\"type\":\"summary\",\"errors\":1,\"warnings\":1,\"infos\":0}");
    }

    #[test]
    fn json_parses_back() {
        for line in render_json(&report()).lines() {
            assert!(rascad_obs::json::parse(line).is_ok());
        }
    }

    #[test]
    fn sarif_carries_rules_results_and_locations() {
        let text = render_sarif(&report(), Some("specs/sys.rascad"));
        let doc = rascad_obs::json::parse(text.trim()).unwrap();
        let run = &doc.get("runs").unwrap().as_array().unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str().unwrap(), "rascad-lint");
        // Both codes present, deduplicated and documented from the catalog.
        let rules = driver.get("rules").unwrap().as_array().unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().any(|r| r.get("id").unwrap().as_str() == Some("RAS006")));
        let results = run.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("level").unwrap().as_str().unwrap(), "error");
        let loc = &results[0].get("locations").unwrap().as_array().unwrap()[0];
        let region = loc.get("physicalLocation").unwrap().get("region").unwrap();
        assert_eq!(region.get("startLine").unwrap().as_f64().unwrap() as usize, 3);
        assert_eq!(region.get("startColumn").unwrap().as_f64().unwrap() as usize, 11);
        // Without an artifact, physical locations are omitted entirely.
        let bare = render_sarif(&report(), None);
        assert!(!bare.contains("physicalLocation"));
        assert!(bare.contains("logicalLocations"));
    }
}
